"""Public constants of the Scap API (Table 1 and §2.3)."""

from __future__ import annotations

__all__ = [
    "SCAP_TCP_STRICT",
    "SCAP_TCP_FAST",
    "SCAP_DEFAULT",
    "SCAP_UNLIMITED_CUTOFF",
    "ReassemblyPolicy",
    "StreamStatus",
    "StreamError",
    "Parameter",
]

# Reassembly modes (§2.3).
SCAP_TCP_STRICT = 1
SCAP_TCP_FAST = 2

# Default memory size sentinel for scap_create().
SCAP_DEFAULT = 0

# "No cutoff": deliver the entire stream.
SCAP_UNLIMITED_CUTOFF = -1


class ReassemblyPolicy:
    """Target-based reassembly policies (§2.3, after Shankar & Paxson).

    When two buffered segments cover the same sequence range with
    *different* bytes, which copy a stack keeps depends on the OS — and
    for several stacks it depends on *where the new segment begins*
    relative to the old one (the Novak–Sturges target-based model that
    Stream5, and Scap, implement):

    * ``FIRST`` / ``WINDOWS`` / ``SOLARIS`` — the original data always
      wins.
    * ``LAST`` — the newest copy always wins.
    * ``BSD`` — the new segment wins only where it begins *before* the
      existing one; elsewhere the original is kept.
    * ``LINUX`` — like BSD, but the new segment also wins when it
      begins at the same sequence number as the existing one.
    """

    FIRST = "first"
    LAST = "last"
    LINUX = "linux"
    WINDOWS = "windows"
    BSD = "bsd"
    SOLARIS = "solaris"

    _KNOWN = frozenset({FIRST, LAST, LINUX, WINDOWS, BSD, SOLARIS})

    @classmethod
    def validate(cls, policy: str) -> str:
        """Return ``policy`` if known; raise ValueError otherwise."""
        if policy not in cls._KNOWN:
            raise ValueError(f"unknown reassembly policy: {policy!r}")
        return policy

    @classmethod
    def winner(cls, policy: str) -> str:
        """Backward-compatible coarse mapping (old-wins vs new-wins)."""
        cls.validate(policy)
        return cls.LAST if policy == cls.LAST else cls.FIRST

    @classmethod
    def new_segment_wins(cls, policy: str, old_start: int, new_start: int) -> bool:
        """Does the new segment's copy win the conflicting overlap?

        ``old_start`` / ``new_start`` are the stream offsets at which
        the buffered and the arriving segment begin.
        """
        if policy in (cls.FIRST, cls.WINDOWS, cls.SOLARIS):
            return False
        if policy == cls.LAST:
            return True
        if policy == cls.BSD:
            return new_start < old_start
        if policy == cls.LINUX:
            return new_start <= old_start
        raise ValueError(f"unknown reassembly policy: {policy!r}")


class StreamStatus:
    """Values of ``sd.status``."""

    ACTIVE = "active"
    CLOSED = "closed"  # FIN handshake completed
    RESET = "reset"  # RST observed
    TIMED_OUT = "timed_out"  # inactivity timeout
    CUTOFF = "cutoff"  # stream cutoff exceeded, monitoring continues


class StreamError:
    """Bit flags of ``sd.error`` (§3.2)."""

    NONE = 0
    INCOMPLETE_HANDSHAKE = 1 << 0
    INVALID_SEQUENCE = 1 << 1
    REASSEMBLY_HOLE = 1 << 2  # FAST mode wrote past a lost segment
    IP_FRAGMENT_TIMEOUT = 1 << 3


class Parameter:
    """Keys accepted by scap_set_parameter / scap_set_stream_parameter."""

    INACTIVITY_TIMEOUT = "inactivity_timeout"
    CHUNK_SIZE = "chunk_size"
    OVERLAP_SIZE = "overlap_size"
    FLUSH_TIMEOUT = "flush_timeout"
    BASE_THRESHOLD = "base_threshold"
    OVERLOAD_CUTOFF = "overload_cutoff"
    REASSEMBLY_MODE = "reassembly_mode"
    REASSEMBLY_POLICY = "reassembly_policy"

    GLOBAL_KEYS = frozenset(
        {
            INACTIVITY_TIMEOUT,
            CHUNK_SIZE,
            OVERLAP_SIZE,
            FLUSH_TIMEOUT,
            BASE_THRESHOLD,
            OVERLOAD_CUTOFF,
        }
    )
    STREAM_KEYS = frozenset(
        {
            INACTIVITY_TIMEOUT,
            CHUNK_SIZE,
            OVERLAP_SIZE,
            FLUSH_TIMEOUT,
            REASSEMBLY_MODE,
            REASSEMBLY_POLICY,
        }
    )
