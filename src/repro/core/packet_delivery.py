"""Per-packet delivery alongside streams (§3.2, §5.7, §6.5.3).

When a socket is created with ``need_pkts``, the kernel module keeps a
record per captured packet — header metadata plus a reference into the
stream data — so ``scap_next_stream_packet`` can hand the application
the original packets *in captured order* (including duplicates and
reordered segments), grouped by stream thanks to chunk-based delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .stream import StreamDescriptor

__all__ = ["PacketRecord", "ScapPacketHeader", "next_stream_packet"]


@dataclass
class PacketRecord:
    """Metadata for one captured packet of a stream."""

    timestamp: float
    caplen: int
    wire_len: int
    seq: int
    tcp_flags: int
    payload: bytes  # reference into stream memory (no copy)
    #: Byte offset of this packet's payload within the reassembled stream.
    stream_offset: int = 0


@dataclass
class ScapPacketHeader:
    """The ``struct scap_pkthdr`` filled in by scap_next_stream_packet."""

    timestamp: float = 0.0
    caplen: int = 0
    wire_len: int = 0


def next_stream_packet(
    stream: StreamDescriptor, header: Optional[ScapPacketHeader] = None
) -> Optional[bytes]:
    """Return the next packet payload of ``stream``, or None when done.

    Iterates the stream's packet records in capture order.  The cursor
    lives on the descriptor (``user`` is untouched), so applications can
    interleave calls across streams.
    """
    cursor = getattr(stream, "_packet_cursor", 0)
    if cursor >= len(stream.packet_records):
        return None
    record = stream.packet_records[cursor]
    stream._packet_cursor = cursor + 1  # type: ignore[attr-defined]
    if header is not None:
        header.timestamp = record.timestamp
        header.caplen = record.caplen
        header.wire_len = record.wire_len
    return record.payload
