"""Worker threads: per-core user-level stream processing (§2.4, §4.2).

The stub creates one worker thread per configured core; each polls the
event queue its kernel counterpart fills and invokes the application's
callbacks.  Here each worker is a :class:`QueueServer` whose service
time per event is the stub dispatch cost plus whatever the registered
application charges; the functional callback runs when the event is
dispatched, and chunk memory is scheduled for release at the worker's
virtual completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import CostModel
from ..kernelsim.server import QueueServer
from ..observability import (
    HOOK_EVENT_DROPPED,
    NULL_OBSERVABILITY,
    STAGE_EVENT_DEQUEUE,
    STAGE_WORKER_CALLBACK,
    Observability,
)
from .events import Event, EventType
from .memory import StreamMemory

__all__ = ["Callbacks", "WorkerPool"]


@dataclass
class Callbacks:
    """Application callbacks + cost hooks registered on a socket.

    The ``*_cost`` hooks return the application's own processing cycles
    for an event (the stub's fixed costs are added on top); they let
    example applications and benchmarks express how expensive their
    per-event work is in the simulated cost domain, while the plain
    callbacks do the *functional* work (real pattern matching, real
    statistics) whose results the experiments score.
    """

    on_creation: Optional[Callable] = None
    on_data: Optional[Callable] = None
    on_termination: Optional[Callable] = None
    creation_cost: Optional[Callable[[Event], float]] = None
    data_cost: Optional[Callable[[Event], float]] = None
    termination_cost: Optional[Callable[[Event], float]] = None


class _WorkerBatch:
    """Per-batch observability samples for :class:`WorkerPool`.

    Samples are kept in dispatch order and replayed through the
    profiler's ``record_seq``/``record_wait_seq`` at flush, so every
    accumulator (stage totals, per-worker totals, histogram sums, the
    busy counters) sees the same per-sample adds in the same order as
    the per-event path — bit-identical, not merely equal in total.
    Only the depth gauge is final-value-granular: it lands on the
    occupancy at each worker's last dispatch, the same value the
    per-event path leaves behind.
    """

    __slots__ = (
        "service_samples",
        "workers",
        "dispatch_vals",
        "callback_vals",
        "wait_vals",
        "depth_last",
    )

    def __init__(self, worker_count: int):
        self.service_samples: List[float] = []
        self.workers: List[int] = []
        self.dispatch_vals: List[float] = []
        self.callback_vals: List[float] = []
        self.wait_vals: List[float] = []
        self.depth_last: List[Optional[float]] = [None] * worker_count

    def reset(self) -> None:
        self.service_samples.clear()
        self.workers.clear()
        self.dispatch_vals.clear()
        self.callback_vals.clear()
        self.wait_vals.clear()
        self.depth_last = [None] * len(self.depth_last)


class WorkerPool:  # scapcheck: single-owner
    """The user-level worker threads of one Scap socket.

    Single-owner: the runtime drives dispatch from the replay loop;
    worker "threads" are virtual-time servers, never OS threads, so
    the pool's counters need no lock.
    """

    def __init__(
        self,
        worker_count: int,
        cost_model: CostModel,
        locality: LocalityProfile,
        event_queue_capacity: int,
        memory: StreamMemory,
        callbacks: Callbacks,
        observability: Optional[Observability] = None,
        fault_injector: Optional[object] = None,
    ):
        if worker_count < 1:
            raise ValueError("need at least one worker thread")
        self.cost = cost_model
        self.locality = locality
        self.memory = memory
        self.callbacks = callbacks
        self._fault = fault_injector
        self.servers: List[QueueServer] = [
            QueueServer(event_queue_capacity, name=f"worker-{index}")
            for index in range(worker_count)
        ]
        self.events_processed = 0
        self.events_dropped = 0
        self.events_dropped_injected = 0
        self.bytes_delivered = 0
        self.obs = observability or NULL_OBSERVABILITY
        registry = self.obs.registry
        self._m_service = registry.histogram(
            "scap_worker_service_seconds",
            "per-event worker service time (stub dispatch + callback)",
        )
        self._m_depth_family = registry.gauge(
            "scap_worker_queue_depth",
            "event-queue occupancy per worker at dispatch time",
            labels=("worker",),
        )
        self._m_depth = [
            self._m_depth_family.labels(index) for index in range(worker_count)
        ]
        self._m_dropped = registry.counter(
            "scap_worker_events_dropped_total",
            "events rejected because a worker queue was full",
        )
        #: Set while a data callback runs, so API calls made from inside
        #: the callback (keep_stream_chunk, discard_stream) can find it.
        self.current_event: Optional[Event] = None
        self._batch: Optional[_WorkerBatch] = None
        self._batch_ctx: Optional[_WorkerBatch] = None

    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Start accumulating dispatch observability for one batch."""
        if not self.obs.enabled:
            return
        ctx = self._batch_ctx
        if ctx is None:
            ctx = _WorkerBatch(len(self.servers))
            self._batch_ctx = ctx
        else:
            ctx.reset()
        self._batch = ctx

    def end_batch(self) -> None:
        """Flush accumulated dispatch observability for the batch."""
        batch = self._batch
        if batch is None:
            return
        self._batch = None
        if self.obs.enabled:
            self._m_service.observe_many(batch.service_samples)
            profiler = self.obs.profiler
            profiler.record_seq(
                STAGE_EVENT_DEQUEUE, batch.workers, batch.dispatch_vals
            )
            profiler.record_seq(
                STAGE_WORKER_CALLBACK, batch.workers, batch.callback_vals
            )
            profiler.record_wait_seq(STAGE_EVENT_DEQUEUE, batch.wait_vals)
            for worker, last_now in enumerate(batch.depth_last):
                if last_now is not None:
                    self._m_depth[worker].set(
                        self.servers[worker].occupancy(last_now)
                    )

    @property
    def worker_count(self) -> int:
        return len(self.servers)

    def worker_for_event(self, core: int, event: Event) -> int:
        """Pick the worker that owns this event's connection.

        With one worker per core (the normal configuration) this is the
        kernel thread's own core, preserving the paper's same-core
        affinity.  With fewer workers than cores, connections are
        spread round-robin so no worker inherits two cores' load while
        another sits idle.
        """
        worker_count = len(self.servers)
        if worker_count == 1:
            return 0
        stream = event.stream
        connection_id = (
            stream.opposite.stream_id
            if stream.direction and stream.opposite is not None
            else stream.stream_id
        )
        # Descriptors are created in pairs, so client ids share parity;
        # halve before the modulo to get a true round-robin.
        return (connection_id >> 1) % worker_count

    # ------------------------------------------------------------------
    def dispatch(self, core: int, event: Event, ready_time: float) -> None:
        """Queue ``event`` (made ready by the kernel at ``ready_time``)."""
        worker = self.worker_for_event(core, event)
        server = self.servers[worker]
        injected = self._fault is not None and self._fault.sched_backpressure(
            ready_time, worker
        )
        if injected or not server.would_accept(ready_time, 1):
            # An injected backpressure fault takes the exact organic
            # reject path, so chunk memory is reclaimed identically.
            server.reject()
            self.events_dropped += 1
            if injected:
                self.events_dropped_injected += 1
            if self.obs.enabled:
                self._m_dropped.inc()
                self.obs.trace.emit(
                    ready_time, HOOK_EVENT_DROPPED, worker=worker,
                    event_type=event.event_type,
                    five_tuple=str(event.stream.five_tuple),
                )
            if event.chunk is not None:
                # The data will never be consumed; reclaim immediately.
                self.memory.release_now(ready_time, event.chunk.accounted_bytes)
            return
        dispatch_cycles, app_cycles = self._service_cycles(event)
        service = self.cost.seconds(dispatch_cycles + app_cycles)
        if self._fault is not None:
            service += self._fault.sched_stall(ready_time, worker)
        finish = server.push(ready_time, 1, service)
        if self.obs.enabled:
            batch = self._batch
            if batch is not None:
                batch.service_samples.append(service)
                batch.workers.append(worker)
                batch.dispatch_vals.append(self.cost.seconds(dispatch_cycles))
                batch.callback_vals.append(self.cost.seconds(app_cycles))
                batch.depth_last[worker] = ready_time
                wait = finish - service - ready_time
                # record_wait would discard negatives; pre-filter here.
                if wait >= 0.0:
                    batch.wait_vals.append(wait)
            else:
                self._m_service.observe(service)
                self._m_depth[worker].set(server.occupancy(ready_time))
                profiler = self.obs.profiler
                profiler.record(
                    STAGE_EVENT_DEQUEUE, worker, self.cost.seconds(dispatch_cycles)
                )
                profiler.record(
                    STAGE_WORKER_CALLBACK, worker, self.cost.seconds(app_cycles)
                )
                # Time the event sat in the queue before its service began.
                profiler.record_wait(
                    STAGE_EVENT_DEQUEUE, worker, finish - service - ready_time
                )
        self._run_callback(event, service)
        if event.chunk is not None and not event.chunk.keep:
            self.memory.schedule_release(finish, event.chunk.accounted_bytes)
        self.events_processed += 1

    def _service_cycles(self, event: Event) -> Tuple[float, float]:
        """(stub dispatch cycles, application/callback cycles) for one event.

        The split feeds the stage profiler: queue pop + wakeup is the
        ``event_dequeue`` stage, everything the event's payload costs
        (byte touches, cache misses, the app's own cost hooks) is the
        ``worker_callback`` stage.
        """
        dispatch = self.cost.scap_event_dispatch + self.cost.user_wakeup_cost()
        app = 0.0
        callbacks = self.callbacks
        if event.event_type == EventType.STREAM_DATA:
            length = event.data_len
            app += self.cost.scap_per_byte_touch * length
            app += self.cost.miss_cost(self.locality.scap_user_misses(length))
            if callbacks.data_cost is not None:
                app += callbacks.data_cost(event)
        elif event.event_type == EventType.STREAM_CREATED:
            if callbacks.creation_cost is not None:
                app += callbacks.creation_cost(event)
        else:
            if callbacks.termination_cost is not None:
                app += callbacks.termination_cost(event)
        return dispatch, app

    def _run_callback(self, event: Event, service: float) -> None:
        stream = event.stream
        stream.processing_time += service
        callbacks = self.callbacks
        self.current_event = event
        try:
            if event.event_type == EventType.STREAM_DATA:
                chunk = event.chunk
                assert chunk is not None
                stream.data = chunk.data
                stream.data_len = chunk.length
                stream.data_offset = chunk.stream_offset
                stream.data_had_hole = chunk.had_hole
                self.bytes_delivered += chunk.length
                if callbacks.on_data is not None:
                    callbacks.on_data(stream)
                stream.data = b""
                stream.data_len = 0
                stream.data_had_hole = False
            elif event.event_type == EventType.STREAM_CREATED:
                if callbacks.on_creation is not None:
                    callbacks.on_creation(stream)
            else:
                if callbacks.on_termination is not None:
                    callbacks.on_termination(stream)
        finally:
            self.current_event = None

    # ------------------------------------------------------------------
    def busy_seconds(self) -> float:
        """Total busy time across all worker threads."""
        return sum(server.busy_seconds for server in self.servers)

    def utilization(self, duration: float) -> float:
        """Mean busy fraction across workers."""
        if duration <= 0 or not self.servers:
            return 0.0
        return min(
            1.0, self.busy_seconds() / (duration * len(self.servers))
        )
