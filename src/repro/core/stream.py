"""The ``stream_t`` descriptor exposed to applications (§3.2).

One :class:`StreamDescriptor` exists per stream *direction*; the two
directions of a TCP connection point at each other through
``opposite``.  The descriptor carries identity (five-tuple, direction),
status and error flags, statistics counters, per-stream parameters
(cutoff, priority, chunk size, …), and — during a data-event callback —
the current chunk via ``data`` / ``data_len``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional

from ..netstack.flows import FiveTuple
from .constants import SCAP_UNLIMITED_CUTOFF, StreamError, StreamStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .packet_delivery import PacketRecord

__all__ = ["StreamStats", "StreamDescriptor"]

_stream_ids = itertools.count()


@dataclass
class StreamStats:
    """Per-stream counters (all/captured/dropped/discarded, timestamps).

    ``bytes``/``pkts`` count everything that belonged to the stream on
    the wire (including packets never brought to memory — when the NIC
    dropped them via FDIR these are *estimated* from FIN/RST sequence
    numbers, see §5.5).  ``captured`` is what reached stream memory,
    ``discarded`` what the cutoff intentionally skipped, ``dropped``
    what was lost to overload.
    """

    bytes: int = 0
    pkts: int = 0
    captured_bytes: int = 0
    captured_pkts: int = 0
    discarded_bytes: int = 0
    discarded_pkts: int = 0
    dropped_bytes: int = 0
    dropped_pkts: int = 0
    start: float = 0.0
    end: float = 0.0


@dataclass
class StreamDescriptor:
    """A ``stream_t``: everything the application can see about a stream."""

    five_tuple: FiveTuple
    direction: int
    protocol: int
    stream_id: int = field(default_factory=lambda: next(_stream_ids))

    status: str = StreamStatus.ACTIVE
    error: int = StreamError.NONE
    stats: StreamStats = field(default_factory=StreamStats)

    # Per-stream parameters (None means "inherit the socket default").
    cutoff: int = SCAP_UNLIMITED_CUTOFF
    priority: int = 0
    chunk_size: Optional[int] = None
    overlap_size: Optional[int] = None
    flush_timeout: Optional[float] = None
    inactivity_timeout: Optional[float] = None
    reassembly_mode: Optional[int] = None
    reassembly_policy: Optional[str] = None

    #: The opposite direction of the same connection, if any.
    opposite: "StreamDescriptor | None" = None

    # Set for the duration of a data-event callback.
    data: bytes = b""
    data_len: int = 0
    #: Stream byte offset of ``data[0]`` (chunk position in the stream).
    data_offset: int = 0
    #: True if reassembly skipped a hole somewhere in ``data``.
    data_had_hole: bool = False

    # Monitoring introspection (§3.2: slow-stream detection).
    processing_time: float = 0.0
    chunks: int = 0

    #: True once the application called scap_discard_stream().
    discarded_by_app: bool = False
    #: True while the stream's data is being cut off (status may still be
    #: ACTIVE because monitoring continues for statistics).
    cutoff_exceeded: bool = False

    #: Application scratch space (like pcap user data).
    user: Any = None

    #: Per-packet records when the socket was created with need_pkts.
    packet_records: "List[PacketRecord]" = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def hdr(self) -> "StreamDescriptor":
        """The paper's ``sd->hdr`` accessor (addresses/ports/protocol).

        The C struct nests identity fields under ``hdr``; here they
        live on the descriptor itself, so ``sd.hdr.src_ip`` and
        ``sd.src_ip`` are the same thing — both spellings work, and the
        §3.3.1 listing translates verbatim.
        """
        return self

    @property
    def src_ip(self) -> int:
        return self.five_tuple.src_ip

    @property
    def dst_ip(self) -> int:
        return self.five_tuple.dst_ip

    @property
    def src_port(self) -> int:
        return self.five_tuple.src_port

    @property
    def dst_port(self) -> int:
        return self.five_tuple.dst_port

    @property
    def is_active(self) -> bool:
        return self.status in (StreamStatus.ACTIVE, StreamStatus.CUTOFF)

    @property
    def duration(self) -> float:
        return max(0.0, self.stats.end - self.stats.start)

    def set_error(self, flag: int) -> None:
        """Set a StreamError bit on ``sd.error``."""
        self.error |= flag

    def has_error(self, flag: int) -> bool:
        """True if the StreamError bit ``flag`` is set."""
        return bool(self.error & flag)

    def __str__(self) -> str:
        return (
            f"stream#{self.stream_id} {self.five_tuple} dir={self.direction} "
            f"status={self.status} bytes={self.stats.bytes}"
        )
