"""Stream cutoff resolution (§2.1, §3.1).

A cutoff truncates a stream to its first N bytes; everything past it is
*discarded* (not "dropped" — discarding is intentional and costs almost
nothing because it happens in the kernel or at the NIC).  Cutoffs can
be set at four scopes, resolved most-specific-first:

1. per-stream (``scap_set_stream_cutoff``),
2. per traffic class (``scap_add_cutoff_class`` with a BPF filter),
3. per direction (``scap_add_cutoff_direction``),
4. socket-wide default (``scap_set_cutoff``).

``SCAP_UNLIMITED_CUTOFF`` (−1) means "no cutoff"; 0 means "statistics
only, discard all data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..filters.bpf import BPFFilter
from .constants import SCAP_UNLIMITED_CUTOFF
from .stream import StreamDescriptor

__all__ = ["CutoffPolicy"]


@dataclass
class _ClassCutoff:
    bpf: BPFFilter
    cutoff: int


class CutoffPolicy:
    """Resolves the effective cutoff for a stream."""

    def __init__(self, default: int = SCAP_UNLIMITED_CUTOFF):
        self.default = default
        self._per_direction: dict = {}
        self._classes: List[_ClassCutoff] = []

    def set_default(self, cutoff: int) -> None:
        """Set the socket-wide default cutoff."""
        self._validate(cutoff)
        self.default = cutoff

    def add_direction_cutoff(self, cutoff: int, direction: int) -> None:
        """Set a cutoff for one stream direction."""
        self._validate(cutoff)
        if direction not in (0, 1):
            raise ValueError(f"invalid direction: {direction}")
        self._per_direction[direction] = cutoff

    def add_class_cutoff(self, cutoff: int, bpf: BPFFilter) -> None:
        """Set a cutoff for a BPF-defined traffic class."""
        self._validate(cutoff)
        self._classes.append(_ClassCutoff(bpf, cutoff))

    @staticmethod
    def _validate(cutoff: int) -> None:
        if cutoff < SCAP_UNLIMITED_CUTOFF:
            raise ValueError(f"invalid cutoff: {cutoff}")

    @property
    def is_trivial(self) -> bool:
        """True when no scope can impose a cutoff except per-stream.

        The batched hot path uses this to skip cutoff resolution for
        streams whose own cutoff is unlimited: with no class, direction,
        or default cutoff configured, ``remaining()`` is None for them
        by construction.
        """
        return (
            self.default == SCAP_UNLIMITED_CUTOFF
            and not self._classes
            and not self._per_direction
        )

    # ------------------------------------------------------------------
    def effective_cutoff(self, stream: StreamDescriptor) -> int:
        """The cutoff that applies to ``stream`` right now."""
        if stream.cutoff != SCAP_UNLIMITED_CUTOFF:
            return stream.cutoff
        for class_cutoff in self._classes:
            if class_cutoff.bpf.matches_five_tuple(stream.five_tuple):
                return class_cutoff.cutoff
        if stream.direction in self._per_direction:
            return self._per_direction[stream.direction]
        return self.default

    def is_exceeded(self, stream: StreamDescriptor, next_offset: int) -> bool:
        """True once a stream's delivered bytes reach its cutoff."""
        cutoff = self.effective_cutoff(stream)
        if cutoff == SCAP_UNLIMITED_CUTOFF:
            return False
        return next_offset >= cutoff

    def remaining(self, stream: StreamDescriptor, next_offset: int) -> Optional[int]:
        """Bytes still capturable before the cutoff; None if unlimited."""
        cutoff = self.effective_cutoff(stream)
        if cutoff == SCAP_UNLIMITED_CUTOFF:
            return None
        return max(0, cutoff - next_offset)
