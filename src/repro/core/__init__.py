"""Scap: the stream-capture framework (the paper's contribution)."""

from .api import (
    ScapSocket,
    ScapStats,
    register_device,
    scap_add_cutoff_class,
    scap_add_cutoff_direction,
    scap_close,
    scap_create,
    scap_discard_stream,
    scap_dispatch_creation,
    scap_dispatch_data,
    scap_dispatch_termination,
    scap_get_stats,
    scap_keep_stream_chunk,
    scap_next_stream_packet,
    scap_set_cutoff,
    scap_set_filter,
    scap_set_parameter,
    scap_set_store,
    scap_set_stream_cutoff,
    scap_set_stream_parameter,
    scap_set_stream_priority,
    scap_set_worker_threads,
    scap_start_capture,
    scap_store_stats,
)
from .config import DEFAULT_MEMORY_SIZE, ScapConfig
from .constants import (
    SCAP_DEFAULT,
    SCAP_TCP_FAST,
    SCAP_TCP_STRICT,
    SCAP_UNLIMITED_CUTOFF,
    Parameter,
    ReassemblyPolicy,
    StreamError,
    StreamStatus,
)
from .cutoff import CutoffPolicy
from .events import DataReason, Event, EventType
from .flowtable import FlowTable, StreamPair
from .kernel_module import KernelCounters, ScapKernelModule
from .loadbalance import LoadBalancer
from .memory import Chunk, ChunkAssembler, StreamMemory
from .packet_delivery import PacketRecord, ScapPacketHeader, next_stream_packet
from .ppl import PPLDecision, PrioritizedPacketLoss
from .reassembly import DeliveredData, ReassemblyCounters, TCPDirectionReassembler
from .runtime import AggregateStats, ScapRuntime
from .sharing import SharedApplication, SharedCaptureRuntime, merge_configs
from .stream import StreamDescriptor, StreamStats
from .workers import Callbacks, WorkerPool

__all__ = [
    "ScapSocket",
    "ScapStats",
    "register_device",
    "scap_create",
    "scap_set_filter",
    "scap_set_cutoff",
    "scap_add_cutoff_direction",
    "scap_add_cutoff_class",
    "scap_set_worker_threads",
    "scap_set_parameter",
    "scap_dispatch_creation",
    "scap_dispatch_data",
    "scap_dispatch_termination",
    "scap_start_capture",
    "scap_discard_stream",
    "scap_set_stream_cutoff",
    "scap_set_stream_priority",
    "scap_set_stream_parameter",
    "scap_keep_stream_chunk",
    "scap_next_stream_packet",
    "scap_get_stats",
    "scap_set_store",
    "scap_store_stats",
    "scap_close",
    "ScapConfig",
    "DEFAULT_MEMORY_SIZE",
    "SCAP_DEFAULT",
    "SCAP_TCP_FAST",
    "SCAP_TCP_STRICT",
    "SCAP_UNLIMITED_CUTOFF",
    "Parameter",
    "ReassemblyPolicy",
    "StreamError",
    "StreamStatus",
    "CutoffPolicy",
    "DataReason",
    "Event",
    "EventType",
    "FlowTable",
    "StreamPair",
    "KernelCounters",
    "ScapKernelModule",
    "LoadBalancer",
    "Chunk",
    "ChunkAssembler",
    "StreamMemory",
    "PacketRecord",
    "ScapPacketHeader",
    "next_stream_packet",
    "PPLDecision",
    "PrioritizedPacketLoss",
    "DeliveredData",
    "ReassemblyCounters",
    "TCPDirectionReassembler",
    "ScapRuntime",
    "AggregateStats",
    "SharedApplication",
    "SharedCaptureRuntime",
    "merge_configs",
    "StreamDescriptor",
    "StreamStats",
    "Callbacks",
    "WorkerPool",
]
