"""The Scap runtime: NIC + kernel module + workers, driven by a replay.

This composes the whole monitoring sensor for one Scap socket:

* the :class:`~repro.nic.nic.SimulatedNIC` classifies each packet
  (FDIR drop/steer first, then RSS) at zero host cost;
* the per-core softirq :class:`~repro.kernelsim.server.QueueServer`
  charges the kernel module's cycles and bounds the RX ring;
* events created by the kernel become work for the
  :class:`~repro.core.workers.WorkerPool`;
* optional dynamic load balancing redirects streams from overloaded
  cores via FDIR steering filters.

``run(workload, rate)`` replays a workload at a target bit-rate and
reduces everything to a :class:`~repro.bench.results.RunResult`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, List, Optional, Tuple

from ..results import RunResult
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..kernelsim.host import Host
from ..netstack.packet import Packet
from ..nic.batch import (
    PacketBatch,
    VERDICT_DROP_FCS,
    VERDICT_DROP_FDIR,
    VERDICT_STEERED,
)
from ..nic.fdir import FdirFilter
from ..nic.nic import SimulatedNIC
from ..nic.rss import SYMMETRIC_RSS_KEY
from ..observability import (
    KERNEL_STAGES,
    NULL_OBSERVABILITY,
    STAGE_PACKET_RECEIVE,
    Observability,
    ProfileReport,
    TelemetryRing,
)
from ..sanitizers import SanitizerContext, sanitizers_from_env
from .config import ScapConfig
from .events import Event, EventType
from .kernel_module import ScapKernelModule
from .loadbalance import LoadBalancer
from .workers import Callbacks, WorkerPool

__all__ = ["ScapRuntime", "AggregateStats", "DEFAULT_BATCH_SIZE", "resolve_batch_size"]

#: Packets per batch on the batched hot path when ``SCAP_BATCH`` does
#: not say otherwise.
DEFAULT_BATCH_SIZE = 64


def resolve_batch_size(explicit: Optional[int] = None) -> int:
    """The effective batch size: explicit argument, else ``SCAP_BATCH``.

    ``SCAP_BATCH=0`` (or 1) selects the per-packet path — the escape
    hatch for differential testing; ``SCAP_BATCH=N`` for N >= 2 sets the
    batch size; unset/invalid values select :data:`DEFAULT_BATCH_SIZE`.
    Returns 0 for "per-packet".
    """
    if explicit is None:
        raw = os.environ.get("SCAP_BATCH")
        if raw is None or not raw.strip():
            return DEFAULT_BATCH_SIZE
        try:
            explicit = int(raw.strip())
        except ValueError:
            return DEFAULT_BATCH_SIZE
    if explicit < 2:
        return 0
    return explicit


@dataclass
class AggregateStats:
    """One run's totals, reduced along the single aggregation path.

    Both :meth:`ScapRuntime.result` and ``scap_get_stats`` read these
    numbers from :meth:`ScapRuntime.aggregate` — callers never re-sum
    :class:`~repro.core.kernel_module.KernelCounters` fields themselves,
    so the drop/discard breakdown is identical everywhere it appears.
    """

    pkts_received: int = 0
    pkts_dropped: int = 0
    pkts_discarded: int = 0
    bytes_received: int = 0
    bytes_delivered: int = 0
    streams_seen: int = 0
    events_processed: int = 0
    ring_drops: int = 0
    nic_filter_drops: int = 0
    #: Frames dropped by the NIC MAC for a bad checksum (wire-plane
    #: fault injection is currently the only source).
    nic_fcs_errors: int = 0
    #: Per-core breakdowns from the metrics registry (empty unless
    #: observability was enabled for the run).
    per_core_packets: Dict[int, int] = field(default_factory=dict)
    per_core_bytes: Dict[int, int] = field(default_factory=dict)
    per_core_drops: Dict[int, int] = field(default_factory=dict)


class ScapRuntime:
    """One Scap socket's full capture pipeline on the simulated host."""

    def __init__(
        self,
        config: Optional[ScapConfig] = None,
        core_count: int = 8,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        rss_key: bytes = SYMMETRIC_RSS_KEY,
        fdir_capacity: int = 8192,
        max_streams: Optional[int] = None,
        enable_load_balancing: bool = False,
        observability: Optional[Observability] = None,
        sanitizers: Optional["SanitizerContext"] = None,
        fault_injector: Optional[object] = None,
        batch_size: Optional[int] = None,
        telemetry: Optional[TelemetryRing] = None,
    ):
        self.config = config or ScapConfig()
        self.config.validate()
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.locality = locality or LocalityProfile()
        self.obs = observability or NULL_OBSERVABILITY
        # Opt-in runtime invariant checkers: explicit argument wins,
        # otherwise SCAP_SANITIZE=1 turns them on for every runtime.
        self.sanitizers = (
            sanitizers if sanitizers is not None else sanitizers_from_env(self.obs)
        )
        self.fault_injector = fault_injector
        self.host = Host(core_count, self.cost)
        self.nic = SimulatedNIC(
            queue_count=core_count, rss_key=rss_key, fdir_capacity=fdir_capacity,
            observability=self.obs, sanitizers=self.sanitizers,
        )
        self.callbacks = Callbacks()
        self.kernel = ScapKernelModule(
            self.config,
            self.nic,
            self.cost,
            locality=self.locality,
            emit_event=self._collect_event,
            max_streams=max_streams,
            observability=self.obs,
            sanitizers=self.sanitizers,
            fault_injector=fault_injector,
        )
        self.workers = WorkerPool(
            worker_count=self.config.worker_threads,
            cost_model=self.cost,
            locality=self.locality,
            event_queue_capacity=self.config.event_queue_capacity,
            memory=self.kernel.memory,
            callbacks=self.callbacks,
            observability=self.obs,
            fault_injector=fault_injector,
        )
        registry = self.obs.registry
        self._m_softirq_service = registry.histogram(
            "scap_softirq_service_seconds",
            "softirq service time per packet, in simulated seconds",
        )
        self._m_softirq_depth_family = registry.gauge(
            "scap_softirq_queue_depth",
            "RX-ring occupancy per core at packet arrival",
            labels=("core",),
        )
        self._m_softirq_depth = [
            self._m_softirq_depth_family.labels(core) for core in range(core_count)
        ]
        self._m_ring_drops = registry.counter(
            "scap_ring_drops_total", "packets rejected by a full RX ring"
        )
        self.balancer = (
            LoadBalancer(core_count) if enable_load_balancing else None
        )
        self._pending_events: List[Tuple[int, Event]] = []
        self.ring_drops = 0
        self.packets_offered = 0
        self.bytes_offered = 0
        #: 0 = per-packet path (``SCAP_BATCH=0``); >= 2 = batched path.
        self.batch_size = resolve_batch_size(batch_size)
        #: Optional cadenced registry snapshots, clocked on *simulated*
        #: packet time (never the wall clock — SC001 discipline).  Only
        #: library runs use this; the daemon runs its own wall-clock
        #: ticker thread.
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def _collect_event(self, core: int, event: Event) -> None:
        self._pending_events.append((core, event))
        if self.balancer is not None:
            if event.event_type == EventType.STREAM_CREATED:
                target = self.balancer.on_stream_created(core)
                if target is not None:
                    self._redirect_stream(event, core, target)
            elif event.event_type == EventType.STREAM_TERMINATED:
                # Termination fires once per direction; balance on client.
                if event.stream.direction == 0:
                    self.balancer.on_stream_terminated(core)

    def _redirect_stream(self, event: Event, source: int, target: int) -> None:
        """Install FDIR steering filters moving a new stream to ``target``."""
        five_tuple = event.stream.five_tuple
        for directional in (five_tuple, five_tuple.reversed()):
            self.nic.fdir.add(
                FdirFilter(
                    five_tuple=directional,
                    action_queue=target,
                    timeout_at=event.created_at + self.config.inactivity_timeout,
                )
            )
        pair = self.kernel.flows.get(five_tuple)
        if pair is not None:
            pair.core = target
        self.balancer.moved(source, target)

    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        """Run one packet through NIC → softirq → kernel → workers."""
        self.packets_offered += 1
        self.bytes_offered += packet.wire_len
        queue = self.nic.classify(packet)
        if queue is None:
            return  # dropped in hardware: subzero copy
        server = self.host.softirq[queue]
        now = packet.timestamp
        if not server.would_accept(now, 1):
            server.reject()
            self.ring_drops += 1
            if self.obs.enabled:
                self._m_ring_drops.inc()
            return
        self._pending_events.clear()
        cycles = self.kernel.handle_packet(packet, queue)
        service = self.cost.seconds(cycles)
        if self.obs.enabled:
            self._m_softirq_service.observe(service)
            self._m_softirq_depth[queue].set(server.occupancy(now))
        kernel_finish = server.push(now, 1, service)
        if self.obs.enabled:
            profiler = self.obs.profiler
            stage_cycles = self.kernel.stage_cycles
            for index, stage in enumerate(KERNEL_STAGES):
                if stage_cycles[index]:
                    profiler.record(
                        stage, queue, self.cost.seconds(stage_cycles[index])
                    )
            # The packet's wait in the RX ring before its softirq ran.
            profiler.record_wait(
                STAGE_PACKET_RECEIVE, queue, kernel_finish - service - now
            )
        for core, event in self._pending_events:
            self.workers.dispatch(core, event, kernel_finish)
        self._pending_events.clear()

    def process_batch(self, batch: PacketBatch) -> None:
        """Run one batch through offload → softirq → kernel → workers.

        The offload stage fills the batch's verdict vectors up front; the
        loop then consumes packets in exact arrival order, so every
        simulated effect (admission, cycles, events, hooks) is identical
        to :meth:`process_packet` per packet.  If the FDIR table mutates
        mid-batch (cutoff filter install, load-balance steer, timeout
        removal), the unconsumed tail is re-classified, which reproduces
        per-packet classify-then-handle interleaving exactly.  NIC
        counters and profiler attributions are accumulated locally and
        flushed once per batch.
        """
        packets = batch.packets
        count = len(packets)
        if not count:
            return
        nic = self.nic
        fdir = nic.fdir
        version = nic.classify_batch(batch)
        kernel = self.kernel
        ctx = kernel.begin_batch()
        workers = self.workers
        workers.begin_batch()
        handle = kernel.handle_batch_packet
        stage_cycles = kernel.stage_cycles
        servers = self.host.softirq
        queue_count = nic.queue_count
        # Same operation as ``cost.seconds`` — division, not a cached
        # reciprocal, so service times are bit-identical per packet.
        core_hz = self.cost.core_hz
        enabled = self.obs.enabled
        queues = batch.queues
        verdicts = batch.verdicts
        tuples = batch.five_tuples
        pending = self._pending_events
        pending.clear()
        dispatch = self.workers.dispatch
        # Local NIC/runtime accounting, flushed once per batch.
        fcs_errors = 0
        fdir_drops = 0
        steered = 0
        ring_drops = 0
        bytes_offered = batch.total_wire_bytes()
        per_queue = [0] * queue_count
        # Profiler samples, one (queue, cycles) sequence per kernel
        # stage in packet order.  The flush replays them through
        # ``record_seq`` so every accumulator sees the same per-sample
        # adds in the same order as the per-packet path — integer
        # cycles divide to seconds at flush, which is the identical
        # pure operation the per-packet path performs at record time.
        stage_q = ([], [], [], [])
        stage_v = ([], [], [], [])
        sq0, sq1, sq2, sq3 = stage_q
        sv0, sv1, sv2, sv3 = stage_v
        wait_samples: List[float] = []
        depth_last: List[Optional[float]] = [None] * queue_count
        service_samples: List[float] = []
        observe_service = service_samples.append
        # zip iterates the live verdict/queue lists, so a mid-batch
        # reclassification of the tail is seen by later iterations.
        for index, (packet, verdict, queue, five_tuple) in enumerate(
            zip(packets, verdicts, queues, tuples)
        ):
            if verdict == VERDICT_DROP_FCS:
                fcs_errors += 1
                continue
            if verdict == VERDICT_DROP_FDIR:
                fdir_drops += 1
                continue
            if verdict == VERDICT_STEERED:
                steered += 1
            per_queue[queue] += 1
            server = servers[queue]
            now = packet.timestamp
            if not server.would_accept(now, 1):
                server.reject()
                ring_drops += 1
                continue
            cycles = handle(packet, queue, five_tuple, ctx)
            service = cycles / core_hz
            kernel_finish = server.push(now, 1, service)
            if enabled:
                observe_service(service)
                depth_last[queue] = now
                # Unrolled per-stage sample capture (hot loop); zero
                # cycles are skipped exactly as the per-packet path
                # skips them.
                cyc = stage_cycles[0]
                if cyc:
                    sq0.append(queue)
                    sv0.append(cyc)
                cyc = stage_cycles[1]
                if cyc:
                    sq1.append(queue)
                    sv1.append(cyc)
                cyc = stage_cycles[2]
                if cyc:
                    sq2.append(queue)
                    sv2.append(cyc)
                cyc = stage_cycles[3]
                if cyc:
                    sq3.append(queue)
                    sv3.append(cyc)
                wait = kernel_finish - service - now
                # record_wait would discard negatives; pre-filter here.
                if wait >= 0.0:
                    wait_samples.append(wait)
            if pending:
                for core, event in pending:
                    dispatch(core, event, kernel_finish)
                pending.clear()
            if fdir.version != version:
                # The kernel (or load balancer) changed the filter table
                # mid-batch: hardware verdicts for the unconsumed tail
                # may have changed.
                version = nic.classify_batch(batch, index + 1)
        kernel.end_batch(ctx)
        workers.end_batch()
        self.packets_offered += count
        self.bytes_offered += bytes_offered
        self.ring_drops += ring_drops
        nic.apply_batch_stats(
            received=count,
            fcs_errors=fcs_errors,
            fdir_drops=fdir_drops,
            steered=steered,
            matched=fdir_drops + steered,
            per_queue=per_queue,
        )
        if enabled:
            if ring_drops:
                self._m_ring_drops.inc(ring_drops)
            self._m_softirq_service.observe_many(service_samples)
            profiler = self.obs.profiler
            for stage_index in range(4):
                cycles_seq = stage_v[stage_index]
                if cycles_seq:
                    profiler.record_seq(
                        KERNEL_STAGES[stage_index],
                        stage_q[stage_index],
                        [cycles / core_hz for cycles in cycles_seq],
                    )
            profiler.record_wait_seq(STAGE_PACKET_RECEIVE, wait_samples)
            depth_gauges = self._m_softirq_depth
            for queue, last_now in enumerate(depth_last):
                if last_now is not None:
                    depth_gauges[queue].set(servers[queue].occupancy(last_now))

    def finalize(self, end_time: float) -> None:
        """Drain remaining flows at end of capture."""
        self._pending_events.clear()
        self.kernel.expire_and_drain(end_time)
        for core, event in self._pending_events:
            self.workers.dispatch(core, event, end_time)
        self._pending_events.clear()
        if self.sanitizers is not None:
            # Teardown invariant: every byte charged to stream memory
            # must have been returned by now (§5.3 accounting).
            self.sanitizers.memory.check_teardown(self.kernel.memory.pool)

    # ------------------------------------------------------------------
    def run(self, workload, rate_bps: float, name: str = "scap") -> RunResult:
        """Replay ``workload`` at ``rate_bps`` through this runtime."""
        if self.fault_injector is not None:
            workload = self.fault_injector.wrap_workload(workload)
        last_time = 0.0
        # Pre-resolved guard: the cadence check runs once per batch (or
        # packet), so the disabled path must stay a single None test.
        telemetry = self.telemetry
        if self.batch_size >= 2:
            size = self.batch_size
            replay_batches = getattr(workload, "replay_batches", None)
            if replay_batches is not None:
                batches = replay_batches(rate_bps, size)
            else:
                # Workloads without a native batched replay: regroup
                # the per-packet generator.
                replay = workload.replay(rate_bps)
                batches = iter(lambda: list(islice(replay, size)), [])
            for packets in batches:
                self.process_batch(PacketBatch(packets))
                last_time = packets[-1].timestamp
                if telemetry is not None:
                    telemetry.maybe_sample(last_time)
        else:
            for packet in workload.replay(rate_bps):
                self.process_packet(packet)
                last_time = packet.timestamp
                if telemetry is not None:
                    telemetry.maybe_sample(last_time)
        if telemetry is not None:
            # Close the run with one unconditional sample so short runs
            # (shorter than the cadence) still yield a final snapshot.
            telemetry.sample(last_time)
        self.finalize(last_time + self.config.inactivity_timeout + 1.0)
        return self.result(rate_bps, name=name)

    def busy_seconds(self) -> float:
        """Total simulated busy time across softirq cores and workers."""
        return (
            sum(server.busy_seconds for server in self.host.softirq)
            + self.workers.busy_seconds()
        )

    def profile(self) -> ProfileReport:
        """The per-stage critical-path breakdown of this run.

        Coverage is scored against the busy time measured at the
        virtual-time servers; with observability enabled for the whole
        run the stage attributions reconstruct it (nearly) exactly.
        """
        return self.obs.profiler.report(busy_seconds=self.busy_seconds())

    def aggregate(self) -> AggregateStats:
        """Reduce all counters to totals — the single aggregation path.

        ``pkts_dropped``/``pkts_discarded`` are derived from
        :meth:`KernelCounters.unintentional_drops` /
        :meth:`KernelCounters.early_discards` plus the runtime-level
        contributions (RX-ring rejections, NIC hardware drops); every
        consumer of totals goes through here.
        """
        counters = self.kernel.counters
        agg = AggregateStats(
            pkts_received=counters.packets_seen,
            pkts_dropped=(
                self.ring_drops
                + self.nic.stats.fcs_errors
                + counters.unintentional_drops()
            ),
            pkts_discarded=self.nic.stats.dropped_at_nic + counters.early_discards(),
            bytes_received=counters.bytes_seen,
            bytes_delivered=self.workers.bytes_delivered,
            streams_seen=self.kernel.flows.created_total,
            events_processed=self.workers.events_processed,
            ring_drops=self.ring_drops,
            nic_filter_drops=self.nic.stats.dropped_at_nic,
            nic_fcs_errors=self.nic.stats.fcs_errors,
        )
        packets_family = self.obs.registry.get("scap_core_packets_total")
        bytes_family = self.obs.registry.get("scap_core_bytes_total")
        drops_family = self.obs.registry.get("scap_core_drops_total")
        if self.obs.enabled and packets_family is not None:
            for (core,), child in packets_family.samples():
                agg.per_core_packets[int(core)] = int(child.value)
            for (core,), child in bytes_family.samples():
                agg.per_core_bytes[int(core)] = int(child.value)
            for (core, _reason), child in drops_family.samples():
                agg.per_core_drops[int(core)] = (
                    agg.per_core_drops.get(int(core), 0) + int(child.value)
                )
        return agg

    def result(self, rate_bps: float, name: str = "scap") -> RunResult:
        """Reduce all counters to a RunResult for this run."""
        duration = (
            self.bytes_offered * 8 / rate_bps if rate_bps > 0 else 0.0
        )
        counters = self.kernel.counters
        agg = self.aggregate()
        result = RunResult(
            system=name,
            rate_bps=rate_bps,
            duration=duration,
            offered_packets=self.packets_offered,
            offered_bytes=self.bytes_offered,
            dropped_packets=agg.pkts_dropped,
            discarded_packets=agg.pkts_discarded,
            nic_filter_drops=agg.nic_filter_drops,
            delivered_bytes=agg.bytes_delivered,
            delivered_events=agg.events_processed,
            user_utilization=self.workers.utilization(duration),
            softirq_load=self.host.softirq_load(duration),
            streams_created=self.kernel.flows.created_total,
            packets_by_priority=dict(counters.packets_by_priority),
            drops_by_priority=dict(counters.ppl_drops_by_priority),
            memory_peak_fraction=self.kernel.memory.pool.peak_used
            / self.kernel.memory.pool.capacity,
        )
        result.extra["events_dropped"] = float(
            self.workers.events_dropped + counters.events_dropped
        )
        result.extra["fdir_installs"] = float(counters.fdir_installs)
        result.extra["stored_bytes"] = float(counters.stored_bytes)
        result.extra["packets_to_memory"] = float(counters.packets_seen)
        return result
