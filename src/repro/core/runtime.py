"""The Scap runtime: NIC + kernel module + workers, driven by a replay.

This composes the whole monitoring sensor for one Scap socket:

* the :class:`~repro.nic.nic.SimulatedNIC` classifies each packet
  (FDIR drop/steer first, then RSS) at zero host cost;
* the per-core softirq :class:`~repro.kernelsim.server.QueueServer`
  charges the kernel module's cycles and bounds the RX ring;
* events created by the kernel become work for the
  :class:`~repro.core.workers.WorkerPool`;
* optional dynamic load balancing redirects streams from overloaded
  cores via FDIR steering filters.

``run(workload, rate)`` replays a workload at a target bit-rate and
reduces everything to a :class:`~repro.bench.results.RunResult`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..results import RunResult
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..kernelsim.host import Host
from ..netstack.packet import Packet
from ..nic.fdir import FdirFilter
from ..nic.nic import SimulatedNIC
from ..nic.rss import SYMMETRIC_RSS_KEY
from .config import ScapConfig
from .events import Event, EventType
from .kernel_module import ScapKernelModule
from .loadbalance import LoadBalancer
from .workers import Callbacks, WorkerPool

__all__ = ["ScapRuntime"]


class ScapRuntime:
    """One Scap socket's full capture pipeline on the simulated host."""

    def __init__(
        self,
        config: Optional[ScapConfig] = None,
        core_count: int = 8,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        rss_key: bytes = SYMMETRIC_RSS_KEY,
        fdir_capacity: int = 8192,
        max_streams: Optional[int] = None,
        enable_load_balancing: bool = False,
    ):
        self.config = config or ScapConfig()
        self.config.validate()
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.locality = locality or LocalityProfile()
        self.host = Host(core_count, self.cost)
        self.nic = SimulatedNIC(
            queue_count=core_count, rss_key=rss_key, fdir_capacity=fdir_capacity
        )
        self.callbacks = Callbacks()
        self.kernel = ScapKernelModule(
            self.config,
            self.nic,
            self.cost,
            locality=self.locality,
            emit_event=self._collect_event,
            max_streams=max_streams,
        )
        self.workers = WorkerPool(
            worker_count=self.config.worker_threads,
            cost_model=self.cost,
            locality=self.locality,
            event_queue_capacity=self.config.event_queue_capacity,
            memory=self.kernel.memory,
            callbacks=self.callbacks,
        )
        self.balancer = (
            LoadBalancer(core_count) if enable_load_balancing else None
        )
        self._pending_events: List[Tuple[int, Event]] = []
        self.ring_drops = 0
        self.packets_offered = 0
        self.bytes_offered = 0

    # ------------------------------------------------------------------
    def _collect_event(self, core: int, event: Event) -> None:
        self._pending_events.append((core, event))
        if self.balancer is not None:
            if event.event_type == EventType.STREAM_CREATED:
                target = self.balancer.on_stream_created(core)
                if target is not None:
                    self._redirect_stream(event, core, target)
            elif event.event_type == EventType.STREAM_TERMINATED:
                # Termination fires once per direction; balance on client.
                if event.stream.direction == 0:
                    self.balancer.on_stream_terminated(core)

    def _redirect_stream(self, event: Event, source: int, target: int) -> None:
        """Install FDIR steering filters moving a new stream to ``target``."""
        five_tuple = event.stream.five_tuple
        for directional in (five_tuple, five_tuple.reversed()):
            self.nic.fdir.add(
                FdirFilter(
                    five_tuple=directional,
                    action_queue=target,
                    timeout_at=event.created_at + self.config.inactivity_timeout,
                )
            )
        pair = self.kernel.flows.get(five_tuple)
        if pair is not None:
            pair.core = target
        self.balancer.moved(source, target)

    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        """Run one packet through NIC → softirq → kernel → workers."""
        self.packets_offered += 1
        self.bytes_offered += packet.wire_len
        queue = self.nic.classify(packet)
        if queue is None:
            return  # dropped in hardware: subzero copy
        server = self.host.softirq[queue]
        now = packet.timestamp
        if not server.would_accept(now, 1):
            server.reject()
            self.ring_drops += 1
            return
        self._pending_events.clear()
        cycles = self.kernel.handle_packet(packet, queue)
        kernel_finish = server.push(now, 1, self.cost.seconds(cycles))
        for core, event in self._pending_events:
            self.workers.dispatch(core, event, kernel_finish)
        self._pending_events.clear()

    def finalize(self, end_time: float) -> None:
        """Drain remaining flows at end of capture."""
        self._pending_events.clear()
        self.kernel.expire_and_drain(end_time)
        for core, event in self._pending_events:
            self.workers.dispatch(core, event, end_time)
        self._pending_events.clear()

    # ------------------------------------------------------------------
    def run(self, workload, rate_bps: float, name: str = "scap") -> RunResult:
        """Replay ``workload`` at ``rate_bps`` through this runtime."""
        last_time = 0.0
        for packet in workload.replay(rate_bps):
            self.process_packet(packet)
            last_time = packet.timestamp
        self.finalize(last_time + self.config.inactivity_timeout + 1.0)
        return self.result(rate_bps, name=name)

    def result(self, rate_bps: float, name: str = "scap") -> RunResult:
        """Reduce all counters to a RunResult for this run."""
        duration = (
            self.bytes_offered * 8 / rate_bps if rate_bps > 0 else 0.0
        )
        counters = self.kernel.counters
        dropped = self.ring_drops + counters.dropped_ppl + counters.dropped_memory
        discarded = (
            self.nic.stats.dropped_at_nic
            + counters.discarded_cutoff_packets
            + counters.filtered_out
            + counters.discarded_non_established
        )
        result = RunResult(
            system=name,
            rate_bps=rate_bps,
            duration=duration,
            offered_packets=self.packets_offered,
            offered_bytes=self.bytes_offered,
            dropped_packets=dropped,
            discarded_packets=discarded,
            nic_filter_drops=self.nic.stats.dropped_at_nic,
            delivered_bytes=self.workers.bytes_delivered,
            delivered_events=self.workers.events_processed,
            user_utilization=self.workers.utilization(duration),
            softirq_load=self.host.softirq_load(duration),
            streams_created=self.kernel.flows.created_total,
            packets_by_priority=dict(counters.packets_by_priority),
            drops_by_priority=dict(counters.ppl_drops_by_priority),
            memory_peak_fraction=self.kernel.memory.pool.peak_used
            / self.kernel.memory.pool.capacity,
        )
        result.extra["events_dropped"] = float(
            self.workers.events_dropped + counters.events_dropped
        )
        result.extra["fdir_installs"] = float(counters.fdir_installs)
        result.extra["stored_bytes"] = float(counters.stored_bytes)
        result.extra["packets_to_memory"] = float(counters.packets_seen)
        return result
