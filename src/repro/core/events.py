"""Scap events: creation, data availability, termination (§5.4).

The kernel module enqueues events on per-core queues; the worker
thread of the same core pops them and invokes the application's
registered callbacks.  A data event names the reason it fired — chunk
full, flush timeout, cutoff reached, or stream termination — because
the memory manager and the statistics care about the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .memory import Chunk
    from .stream import StreamDescriptor

__all__ = ["EventType", "DataReason", "Event"]


class EventType:
    """Event kind tags (creation / data / termination)."""
    STREAM_CREATED = "created"
    STREAM_DATA = "data"
    STREAM_TERMINATED = "terminated"


class DataReason:
    """Why a data event fired (chunk full, flush, cutoff, end)."""
    CHUNK_FULL = "chunk_full"
    FLUSH_TIMEOUT = "flush_timeout"
    CUTOFF = "cutoff"
    TERMINATION = "termination"


@dataclass
class Event:
    """One queued event, bound to the stream that triggered it."""

    event_type: str
    stream: "StreamDescriptor"
    created_at: float
    chunk: "Chunk | None" = None
    reason: Optional[str] = None

    @property
    def data_len(self) -> int:
        return self.chunk.length if self.chunk is not None else 0
