"""Stream memory management (§5.3).

Reassembled stream data lives in a large buffer shared between the
kernel module and the user-level stub.  Per stream, data is written
into contiguous *chunk blocks*; when a block fills up (or a flush
fires) the chunk is delivered as a data event and a fresh block is
allocated.  This module provides:

* :class:`Chunk` — one delivered unit of contiguous stream data, with a
  simulated base address (for the cache-locality experiments) and a
  lazy ``data`` view (segments are joined only when the application
  actually reads them).
* :class:`ChunkAssembler` — per-direction chunking with overlap,
  flush-timeout, and ``scap_keep_stream_chunk`` support.
* :class:`StreamMemory` — the shared region: a
  :class:`~repro.kernelsim.server.MemoryPool` for occupancy/time plus a
  bump allocator handing out simulated addresses for chunk blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..kernelsim.server import MemoryPool
from ..sanitizers.race import race_detector_from_env
from ..observability import (
    DEFAULT_FRACTION_BUCKETS,
    HOOK_MEMORY_EXHAUSTED,
    NULL_OBSERVABILITY,
    Observability,
)

__all__ = ["Chunk", "ChunkAssembler", "StreamMemory"]


class Chunk:
    """A contiguous piece of one stream direction, ready for delivery."""

    __slots__ = (
        "segments",
        "length",
        "stream_offset",
        "base_address",
        "had_hole",
        "accounted_bytes",
        "keep",
        "_joined",
    )

    def __init__(self, stream_offset: int, base_address: int):
        self.segments: List[bytes] = []
        self.length = 0
        self.stream_offset = stream_offset
        self.base_address = base_address
        self.had_hole = False
        self.accounted_bytes = 0
        self.keep = False
        self._joined: Optional[bytes] = None

    def append(self, data: bytes) -> None:
        """Add one reassembled segment to the chunk."""
        self.segments.append(data)
        self.length += len(data)
        self._joined = None

    @property
    def data(self) -> bytes:
        """The chunk contents as one contiguous byte string (lazy join)."""
        if self._joined is None:
            self._joined = b"".join(self.segments)
        return self._joined

    @property
    def end_offset(self) -> int:
        return self.stream_offset + self.length

    def __len__(self) -> int:
        return self.length


class StreamMemory:
    """The shared stream-data region.

    ``pool`` answers "how full are we" (PPL consults it); the bump
    allocator provides *simulated addresses* so the cache model can
    distinguish Scap's contiguous per-stream blocks from a PF_PACKET
    ring's interleaved slots.  Addresses are never reused — physical
    reuse patterns matter to the cache only through set indices, which
    a bump allocator distributes uniformly, like a real allocator under
    churn.
    """

    def __init__(
        self,
        capacity_bytes: int,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
        fault_injector: Optional[object] = None,
    ):
        self.pool = MemoryPool(capacity_bytes, name="scap-stream-memory")
        self._next_address = 0
        self.allocation_failures = 0
        self.injected_failures = 0
        self._obs = observability or NULL_OBSERVABILITY
        self._san = sanitizers
        self._fault = fault_injector
        # SCAP_RACE=1: the ledger is single-owner — the shard's capture
        # loop — so every charge/release must come from one thread.
        self._race = race_detector_from_env()
        self._race_token = (
            self._race.register("StreamMemory.ledger")
            if self._race is not None
            else 0
        )
        registry = self._obs.registry
        self._m_occupancy = registry.histogram(
            "scap_memory_pool_occupancy",
            "stream-memory pool occupancy fraction, sampled per store",
            bounds=DEFAULT_FRACTION_BUCKETS,
        )
        self._m_failures = registry.counter(
            "scap_memory_allocation_failures_total",
            "stores rejected because the pool was exhausted",
        )
        self._m_stored = registry.counter(
            "scap_memory_stored_bytes_total", "bytes accepted into the pool"
        )
        # When batching, per-store metric updates are deferred: the
        # occupancy samples queue up here (success and failure samples
        # in store order) and flush in one pass at end_batch.
        self._batch_fractions: Optional[List[float]] = None
        self._batch_stored = 0

    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Defer per-store metrics until :meth:`end_batch`."""
        if self._obs.enabled:
            self._batch_fractions = []
            self._batch_stored = 0

    def end_batch(self) -> None:
        """Flush deferred store metrics; bit-identical to per-store.

        The occupancy histogram replays the exact per-store samples in
        order; the stored-bytes counter advances by the batch's integer
        byte total, which sums exactly in a double, so one ``inc`` is
        bit-identical to per-store incs.
        """
        fractions = self._batch_fractions
        self._batch_fractions = None
        if fractions is None:
            return
        if self._obs.enabled:
            if self._batch_stored:
                self._m_stored.inc(self._batch_stored)
            if fractions:
                self._m_occupancy.observe_many(fractions)
        self._batch_stored = 0

    def allocate_block(self, size: int) -> int:
        """Reserve an address range for a chunk block; return its base."""
        base = self._next_address
        self._next_address += size
        return base

    def try_store(
        self, now: float, nbytes: int, stream_label: Optional[str] = None
    ) -> bool:
        """Account ``nbytes`` of stream data; False if memory is exhausted.

        ``stream_label`` is the owning stream's five-tuple string, used
        only to attribute the exhaustion trace event to its stream.
        """
        if self._race is not None:
            self._race.check(self._race_token, op="try_store")
        if self._fault is not None and self._fault.memory_alloc_fails(
            now, nbytes, stream_label or ""
        ):
            # Injected failure: the ledger never sees the store, so the
            # pool's accounting stays balanced; callers observe the
            # exact same refusal an exhausted pool produces.
            self.allocation_failures += 1
            self.injected_failures += 1
            if self._obs.enabled:
                self._m_failures.inc()
                self._obs.trace.emit(
                    now, HOOK_MEMORY_EXHAUSTED, five_tuple=stream_label, bytes=nbytes
                )
            return False
        if self.pool.try_allocate(now, nbytes):
            fractions = self._batch_fractions
            if fractions is not None:
                self._batch_stored += nbytes
                fractions.append(self.pool.used / self.pool.capacity)
            elif self._obs.enabled:
                self._m_stored.inc(nbytes)
                self._m_occupancy.observe(self.pool.used / self.pool.capacity)
            if self._san is not None:
                self._san.memory.on_store(nbytes)
            return True
        self.allocation_failures += 1
        if self._obs.enabled:
            self._m_failures.inc()
            fractions = self._batch_fractions
            if fractions is not None:
                # Keep the failure sample in store order with the
                # deferred success samples: histogram sums accumulate
                # per sample, so order is part of bit-identity.
                fractions.append(self.pool.used / self.pool.capacity)
            else:
                self._m_occupancy.observe(self.pool.used / self.pool.capacity)
            self._obs.trace.emit(
                now, HOOK_MEMORY_EXHAUSTED, five_tuple=stream_label, bytes=nbytes
            )
        return False

    def fraction_used(self, now: float) -> float:
        """Occupied fraction of the pool at time ``now``.

        When a fault plan applies memory pressure, the fraction PPL
        sees is boosted here — the pool's real accounting is untouched.
        """
        fraction = self.pool.fraction_used(now)
        if self._fault is not None:
            fraction = self._fault.memory_pressure(now, fraction)
        return fraction

    def schedule_release(self, release_time: float, nbytes: int) -> None:
        """Return ``nbytes`` to the pool at ``release_time``."""
        if self._race is not None:
            self._race.check(self._race_token, op="schedule_release")
        if self._san is not None:
            self._san.memory.on_release(nbytes, origin="schedule_release")
        self.pool.schedule_release(release_time, nbytes)

    def release_now(self, now: float, nbytes: int) -> None:
        """Immediately return ``nbytes`` (data discarded unprocessed)."""
        if self._race is not None:
            self._race.check(self._race_token, op="release_now")
        if self._san is not None:
            self._san.memory.on_release(nbytes, origin="release_now")
        self.pool.release_now(now, nbytes)


@dataclass
class _AssemblerState:
    chunk: Optional[Chunk] = None
    stream_offset: int = 0  # next byte offset in the reassembled stream
    last_delivery: float = 0.0
    kept: Optional[Chunk] = None  # chunk retained via scap_keep_stream_chunk


class ChunkAssembler:
    """Chunks one stream direction's reassembled bytes for delivery.

    ``overlap`` repeats the last N bytes of the previous chunk at the
    start of the next one (for patterns spanning chunk boundaries,
    §3.1); overlapped bytes do not advance the stream offset and are
    not re-charged to the memory pool.
    """

    def __init__(self, memory: StreamMemory, chunk_size: int, overlap: int = 0):
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        if overlap < 0 or overlap >= chunk_size:
            raise ValueError("overlap must be in [0, chunk_size)")
        self._memory = memory
        self.chunk_size = chunk_size
        self.overlap = overlap
        self._state = _AssemblerState()
        self._pending_overlap: bytes = b""
        # The chunk the pending overlap tail was cut from: if that very
        # chunk is then kept (scap_keep_stream_chunk), its whole body is
        # merged into the next chunk and repeating its tail would
        # duplicate bytes mid-stream.
        self._overlap_source: Optional[Chunk] = None
        # Capacity of the chunk being filled: chunk_size of *new* bytes
        # plus whatever was carried over (kept chunk, overlap tail).
        self._current_capacity = chunk_size

    # ------------------------------------------------------------------
    def _new_chunk(self) -> Chunk:
        state = self._state
        base = self._memory.allocate_block(self.chunk_size)
        chunk = Chunk(stream_offset=state.stream_offset, base_address=base)
        kept_length = 0
        if state.kept is not None and state.kept is self._overlap_source:
            self._pending_overlap = b""
        self._overlap_source = None
        if self._pending_overlap:
            # The overlap tail is copied into the new block, so it
            # consumes part of the block's chunk_size capacity.
            chunk.append(self._pending_overlap)
            chunk.stream_offset -= len(self._pending_overlap)
            self._pending_overlap = b""
        if state.kept is not None:
            kept = state.kept
            state.kept = None
            # Prepend the kept chunk's data.  Its pool charge moves to
            # the merged chunk: the worker skips the release for kept
            # chunks, so without this transfer the bytes leak forever.
            chunk.segments = list(kept.segments) + chunk.segments
            chunk.length += kept.length
            chunk.stream_offset = kept.stream_offset
            chunk.accounted_bytes += kept.accounted_bytes
            chunk._joined = None
            kept_length = kept.length
        # A kept chunk's bytes extend the capacity: the next delivery is
        # one *larger* chunk of previous + new data (§3.2).
        self._current_capacity = self.chunk_size + kept_length
        return chunk

    def _finish_chunk(self, now: float) -> Chunk:
        state = self._state
        chunk = state.chunk
        assert chunk is not None
        state.chunk = None
        state.last_delivery = now
        if self.overlap:
            tail = chunk.data[-self.overlap :]
            self._pending_overlap = tail
            self._overlap_source = chunk
        return chunk

    def append(self, data: bytes, now: float, had_hole: bool = False) -> List[Chunk]:
        """Add reassembled bytes; return chunks that became full."""
        completed: List[Chunk] = []
        state = self._state
        offset = 0
        while offset < len(data):
            if state.chunk is None:
                state.chunk = self._new_chunk()
            chunk = state.chunk
            room = self._current_capacity - chunk.length
            piece = data[offset : offset + room]
            chunk.append(piece)
            chunk.accounted_bytes += len(piece)
            if had_hole:
                chunk.had_hole = True
            state.stream_offset += len(piece)
            offset += len(piece)
            if chunk.length >= self._current_capacity:
                completed.append(self._finish_chunk(now))
        return completed

    def append_many(
        self,
        segments: Sequence[bytes],
        now: float,
        had_holes: Optional[Sequence[bool]] = None,
    ) -> List[Chunk]:
        """Add several reassembled segments in one call.

        ``had_holes``, when given, is a parallel sequence flagging the
        segments that follow a reassembly hole.  Completed chunks are
        returned in delivery order; the result is exactly the
        concatenation of per-segment :meth:`append` results — the
        batched hot path relies on this equivalence when it stores a
        multi-piece reassembly delivery with one call.
        """
        completed: List[Chunk] = []
        if had_holes is None:
            for segment in segments:
                completed.extend(self.append(segment, now))
        else:
            for segment, had_hole in zip(segments, had_holes):
                completed.extend(self.append(segment, now, had_hole=had_hole))
        return completed

    def flush(self, now: float, final: bool = False) -> Optional[Chunk]:
        """Deliver the partial chunk, if any (flush timeout / termination).

        With ``final=True`` (stream termination) a still-pending kept
        chunk can never merge into a future delivery, so its pool
        charge is returned here instead of leaking.
        """
        state = self._state
        if final and state.kept is not None:
            kept = state.kept
            state.kept = None
            if kept.accounted_bytes:
                self._memory.release_now(now, kept.accounted_bytes)
        if state.chunk is None or state.chunk.length == 0:
            return None
        return self._finish_chunk(now)

    def keep(self, chunk: Chunk) -> None:
        """Retain ``chunk`` so the next delivery includes its data."""
        chunk.keep = True
        self._state.kept = chunk

    @property
    def pending_bytes(self) -> int:
        return self._state.chunk.length if self._state.chunk is not None else 0

    @property
    def stream_offset(self) -> int:
        return self._state.stream_offset

    @property
    def last_delivery(self) -> float:
        return self._state.last_delivery
