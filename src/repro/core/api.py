"""The public Scap API (Table 1).

Two styles are provided over the same machinery:

* a Pythonic class, :class:`ScapSocket`, with methods
  (``sc.set_filter(...)``, ``sc.dispatch_data(...)``, …);
* paper-faithful module-level functions (``scap_create``,
  ``scap_set_filter``, ``scap_start_capture``, …) that mirror the C API
  one-to-one, so the paper's listings in §3.3 translate line by line.

A *device* names a packet source.  In the real system it is a NIC
("eth0"); here it is a replayable workload — pass a
:class:`~repro.traffic.trace.Trace` (or any object with ``replay``)
directly, or register it under a name with :func:`register_device` and
pass the name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..apps.recorder import StreamRecorder
    from ..faultinject import FaultPlan
    from ..store.store import StoreStats

from ..observability import (
    ProfileReport,
    SpanRecord,
    StreamTimeline,
    TelemetryRing,
    TimelineReconstructor,
    span_records,
)

from ..results import RunResult
from ..filters.bpf import BPFFilter
from .config import DEFAULT_MEMORY_SIZE, ScapConfig
from .constants import SCAP_DEFAULT, SCAP_TCP_FAST, Parameter
from .packet_delivery import ScapPacketHeader, next_stream_packet
from .runtime import ScapRuntime
from .stream import StreamDescriptor

__all__ = [
    "ScapSocket",
    "ScapStats",
    "register_device",
    "scap_create",
    "scap_set_filter",
    "scap_set_cutoff",
    "scap_add_cutoff_direction",
    "scap_add_cutoff_class",
    "scap_set_worker_threads",
    "scap_set_parameter",
    "scap_dispatch_creation",
    "scap_dispatch_data",
    "scap_dispatch_termination",
    "scap_start_capture",
    "scap_discard_stream",
    "scap_set_stream_cutoff",
    "scap_set_stream_priority",
    "scap_set_stream_parameter",
    "scap_keep_stream_chunk",
    "scap_next_stream_packet",
    "scap_get_stats",
    "scap_profile",
    "scap_spans",
    "scap_telemetry",
    "scap_stream_timeline",
    "scap_set_store",
    "scap_store_stats",
    "scap_close",
]

_DEVICE_REGISTRY: Dict[str, Tuple[Any, float]] = {}


def register_device(name: str, workload: Any, rate_bps: float) -> None:
    """Bind a workload + replay rate to a device name for scap_create."""
    _DEVICE_REGISTRY[name] = (workload, rate_bps)


@dataclass
class ScapStats:
    """Overall statistics, as returned by scap_get_stats (Table 1).

    The original seven fields mirror the paper; the extension fields
    below them surface the observability layer (per-core breakdowns,
    PPL per-priority drops, FDIR filter state — see
    ``docs/OBSERVABILITY.md``).  Per-core dicts are filled only when
    the run had an enabled :class:`~repro.observability.Observability`
    attached; the aggregate fields are always populated.
    """

    pkts_received: int = 0
    pkts_dropped: int = 0
    pkts_discarded: int = 0
    bytes_received: int = 0
    bytes_delivered: int = 0
    streams_seen: int = 0
    events_processed: int = 0
    # --- observability extensions -------------------------------------
    per_core_packets: Dict[int, int] = field(default_factory=dict)
    per_core_bytes: Dict[int, int] = field(default_factory=dict)
    per_core_drops: Dict[int, int] = field(default_factory=dict)
    ppl_drops_by_priority: Dict[int, int] = field(default_factory=dict)
    fdir_filters_installed: int = 0
    fdir_filters_evicted: int = 0
    fdir_filters_active: int = 0
    # --- stream-store extensions (zero unless a store is attached) ----
    stored_bytes: int = 0
    evicted_bytes: int = 0
    writer_queue_drops: int = 0
    # --- fault-injection extensions (zero unless a fault plan ran) ----
    faults_injected_total: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: Frames the NIC dropped for a bad checksum (part of pkts_dropped).
    nic_fcs_errors: int = 0


class ScapSocket:
    """An Scap socket: configuration, callbacks, and the capture run."""

    def __init__(
        self,
        device: Any,
        memory_size: int = SCAP_DEFAULT,
        reassembly_mode: int = SCAP_TCP_FAST,
        need_pkts: int = 0,
        rate_bps: Optional[float] = None,
        core_count: int = 8,
        fault_plan: Optional["FaultPlan"] = None,
        **runtime_kwargs: Any,
    ):
        if isinstance(device, str):
            try:
                workload, registered_rate = _DEVICE_REGISTRY[device]
            except KeyError:
                raise ValueError(
                    f"unknown device {device!r}; register_device() it first"
                ) from None
            self._workload = workload
            self._rate = rate_bps or registered_rate
        else:
            self._workload = device
            if rate_bps is None:
                native = getattr(device, "native_rate_bps", None)
                if native is None or native in (0.0, float("inf")):
                    raise ValueError("rate_bps is required for this device")
                rate_bps = native
            self._rate = rate_bps
        self.config = ScapConfig(
            memory_size=memory_size if memory_size != SCAP_DEFAULT else DEFAULT_MEMORY_SIZE,
            reassembly_mode=reassembly_mode,
            need_pkts=bool(need_pkts),
        )
        self._core_count = core_count
        self._runtime_kwargs = runtime_kwargs
        self._runtime: Optional[ScapRuntime] = None
        self._callbacks: Dict[str, Optional[Callable]] = {
            "creation": None,
            "data": None,
            "termination": None,
        }
        self._cost_hooks: Dict[str, Optional[Callable]] = {
            "creation": None,
            "data": None,
            "termination": None,
        }
        self._closed = False
        self._recorder: Optional["StreamRecorder"] = None
        self._fault_plan = fault_plan
        #: The run's FaultInjector, built when the capture starts (None
        #: without a fault plan); exposes schedule/counts/digest.
        self.fault_injector: Optional[Any] = None
        self.last_result: Optional[RunResult] = None

    # ------------------------------------------------------------------
    # Socket-wide configuration
    # ------------------------------------------------------------------
    def _require_not_started(self) -> None:
        if self._runtime is not None:
            raise RuntimeError("capture already started")
        if self._closed:
            raise RuntimeError("socket is closed")

    def set_filter(self, bpf_expression: str) -> None:
        """scap_set_filter: keep only traffic matching a BPF expression."""
        self._require_not_started()
        self.config.bpf = BPFFilter(bpf_expression)

    def set_cutoff(self, cutoff: int) -> None:
        """scap_set_cutoff: default per-stream byte cutoff (0 = stats only)."""
        self._require_not_started()
        self.config.cutoffs.set_default(cutoff)

    def add_cutoff_direction(self, cutoff: int, direction: int) -> None:
        """scap_add_cutoff_direction: direction-specific cutoff."""
        self._require_not_started()
        self.config.cutoffs.add_direction_cutoff(cutoff, direction)

    def add_cutoff_class(self, cutoff: int, bpf_expression: str) -> None:
        """scap_add_cutoff_class: cutoff for a BPF-defined traffic class."""
        self._require_not_started()
        self.config.cutoffs.add_class_cutoff(cutoff, BPFFilter(bpf_expression))

    def set_worker_threads(self, thread_count: int) -> None:
        """scap_set_worker_threads: parallel stream-processing threads."""
        self._require_not_started()
        if thread_count < 1:
            raise ValueError("need at least one worker thread")
        self.config.worker_threads = thread_count

    def set_parameter(self, parameter: str, value: Any) -> None:
        """scap_set_parameter: change a socket-wide default (Table 1)."""
        self._require_not_started()
        if parameter not in Parameter.GLOBAL_KEYS:
            raise ValueError(f"unknown socket parameter: {parameter!r}")
        if parameter == Parameter.INACTIVITY_TIMEOUT:
            self.config.inactivity_timeout = float(value)
        elif parameter == Parameter.CHUNK_SIZE:
            self.config.chunk_size = int(value)
        elif parameter == Parameter.OVERLAP_SIZE:
            self.config.overlap_size = int(value)
        elif parameter == Parameter.FLUSH_TIMEOUT:
            self.config.flush_timeout = None if value is None else float(value)
        elif parameter == Parameter.BASE_THRESHOLD:
            self.config.base_threshold = float(value)
        elif parameter == Parameter.OVERLOAD_CUTOFF:
            self.config.overload_cutoff = None if value is None else int(value)
        self.config.validate()

    # ------------------------------------------------------------------
    # Stream store (time-machine recording, §6.6)
    # ------------------------------------------------------------------
    def set_store(self, recorder: "StreamRecorder") -> None:
        """scap_set_store: record delivered streams through ``recorder``.

        The recorder interposes on the data callback when the capture
        starts (composing with any attached application) and its store
        is flushed when the run finishes.  With no store attached the
        capture path is untouched.
        """
        self._require_not_started()
        self._recorder = recorder

    def store_stats(self) -> "StoreStats":
        """scap_store_stats: the attached store's accounting snapshot."""
        if self._recorder is None:
            raise RuntimeError("no store attached; call set_store() first")
        return self._recorder.store.stats()

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def dispatch_creation(
        self, handler: Callable, cost: Optional[Callable] = None
    ) -> None:
        """scap_dispatch_creation: register the stream-creation callback."""
        self._callbacks["creation"] = handler
        self._cost_hooks["creation"] = cost

    def dispatch_data(self, handler: Callable, cost: Optional[Callable] = None) -> None:
        """scap_dispatch_data: register the new-data callback."""
        self._callbacks["data"] = handler
        self._cost_hooks["data"] = cost

    def dispatch_termination(
        self, handler: Callable, cost: Optional[Callable] = None
    ) -> None:
        """scap_dispatch_termination: register the termination callback."""
        self._callbacks["termination"] = handler
        self._cost_hooks["termination"] = cost

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def _build_runtime(self) -> ScapRuntime:
        if self._fault_plan is not None:
            from ..faultinject import FaultInjector

            self.fault_injector = FaultInjector(
                self._fault_plan,
                observability=self._runtime_kwargs.get("observability"),
            )
        runtime = ScapRuntime(
            config=self.config,
            core_count=self._core_count,
            fault_injector=self.fault_injector,
            **self._runtime_kwargs,
        )
        runtime.callbacks.on_creation = self._callbacks["creation"]
        runtime.callbacks.on_data = self._callbacks["data"]
        runtime.callbacks.on_termination = self._callbacks["termination"]
        runtime.callbacks.creation_cost = self._cost_hooks["creation"]
        runtime.callbacks.data_cost = self._cost_hooks["data"]
        runtime.callbacks.termination_cost = self._cost_hooks["termination"]
        if self._recorder is not None:
            self._recorder.bind(runtime)
            if self.fault_injector is not None:
                self._recorder.store.attach_fault_injector(self.fault_injector)
        return runtime

    def start_capture(self, name: str = "scap") -> RunResult:
        """scap_start_capture: replay the device through the pipeline.

        Blocks (like the real call) until the source is exhausted and
        all flows have drained, then returns the run's measurements.
        """
        self._require_not_started()
        self._runtime = self._build_runtime()
        self.last_result = self._runtime.run(self._workload, self._rate, name=name)
        if self._recorder is not None:
            self._recorder.finish()
        return self.last_result

    @property
    def runtime(self) -> ScapRuntime:
        if self._runtime is None:
            raise RuntimeError("capture has not started")
        return self._runtime

    # ------------------------------------------------------------------
    # Per-stream operations (callable from inside callbacks)
    # ------------------------------------------------------------------
    def discard_stream(self, stream: StreamDescriptor) -> None:
        """scap_discard_stream: stop collecting this stream's data."""
        stream.discarded_by_app = True
        stream.cutoff_exceeded = True

    def set_stream_cutoff(self, stream: StreamDescriptor, cutoff: int) -> None:
        """scap_set_stream_cutoff: per-stream cutoff override."""
        if cutoff < -1:
            raise ValueError(f"invalid cutoff: {cutoff}")
        stream.cutoff = cutoff
        if cutoff != -1 and stream.stats.captured_bytes >= cutoff:
            stream.cutoff_exceeded = True

    def set_stream_priority(self, stream: StreamDescriptor, priority: int) -> None:
        """scap_set_stream_priority: PPL priority (higher = keep longer)."""
        if priority < 0:
            raise ValueError("priority must be non-negative")
        stream.priority = priority
        if stream.opposite is not None:
            stream.opposite.priority = priority
        if self._runtime is not None:
            self._runtime.kernel.ppl.ensure_level(priority)

    def set_stream_parameter(
        self, stream: StreamDescriptor, parameter: str, value: Any
    ) -> None:
        """scap_set_stream_parameter: per-stream override (Table 1)."""
        if parameter not in Parameter.STREAM_KEYS:
            raise ValueError(f"unknown stream parameter: {parameter!r}")
        if parameter == Parameter.INACTIVITY_TIMEOUT:
            stream.inactivity_timeout = float(value)
        elif parameter == Parameter.CHUNK_SIZE:
            stream.chunk_size = int(value)
        elif parameter == Parameter.OVERLAP_SIZE:
            stream.overlap_size = int(value)
        elif parameter == Parameter.FLUSH_TIMEOUT:
            stream.flush_timeout = None if value is None else float(value)
        elif parameter == Parameter.REASSEMBLY_MODE:
            stream.reassembly_mode = int(value)
        elif parameter == Parameter.REASSEMBLY_POLICY:
            stream.reassembly_policy = str(value)

    def keep_stream_chunk(self, stream: StreamDescriptor) -> None:
        """scap_keep_stream_chunk: merge this chunk into the next one."""
        runtime = self.runtime
        event = runtime.workers.current_event
        if event is None or event.chunk is None:
            raise RuntimeError("keep_stream_chunk is only valid in a data callback")
        pair = runtime.kernel.flows.get(stream.five_tuple)
        if pair is None:
            return  # stream already terminated; nothing to merge into
        assembler = pair.assemblers.get(stream.direction)
        if assembler is not None:
            assembler.keep(event.chunk)

    # ------------------------------------------------------------------
    def get_stats(self) -> ScapStats:
        """scap_get_stats: overall statistics for all streams so far.

        Totals come from the runtime's single aggregation path
        (:meth:`~repro.core.runtime.ScapRuntime.aggregate`), so they
        always agree with the :class:`~repro.results.RunResult` of the
        same run; the extension fields surface the observability layer
        (``docs/OBSERVABILITY.md``).
        """
        if self._runtime is None:
            return ScapStats()
        agg = self._runtime.aggregate()
        counters = self._runtime.kernel.counters
        fdir = self._runtime.nic.fdir
        store = self._recorder.store.stats() if self._recorder is not None else None
        return ScapStats(
            pkts_received=agg.pkts_received,
            pkts_dropped=agg.pkts_dropped,
            pkts_discarded=agg.pkts_discarded,
            bytes_received=agg.bytes_received,
            bytes_delivered=agg.bytes_delivered,
            streams_seen=agg.streams_seen,
            events_processed=agg.events_processed,
            per_core_packets=dict(agg.per_core_packets),
            per_core_bytes=dict(agg.per_core_bytes),
            per_core_drops=dict(agg.per_core_drops),
            ppl_drops_by_priority=dict(counters.ppl_drops_by_priority),
            fdir_filters_installed=fdir.installed_total,
            fdir_filters_evicted=fdir.evicted_total,
            fdir_filters_active=len(fdir),
            stored_bytes=store.stored_bytes if store is not None else 0,
            evicted_bytes=store.evicted_bytes if store is not None else 0,
            writer_queue_drops=store.writer_queue_drops if store is not None else 0,
            faults_injected_total=(
                self.fault_injector.total_injected
                if self.fault_injector is not None
                else 0
            ),
            faults_injected=(
                self.fault_injector.counts_by_key()
                if self.fault_injector is not None
                else {}
            ),
            nic_fcs_errors=agg.nic_fcs_errors,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def observability(self):
        """The run's :class:`~repro.observability.Observability` context."""
        return self.runtime.obs

    def profile(self) -> ProfileReport:
        """The run's per-stage breakdown of simulated busy time.

        Requires an enabled observability context for the capture; with
        observability off, the report is empty (coverage 0).
        """
        return self.runtime.profile()

    def stream_timeline(self, five_tuple: Any) -> Optional[StreamTimeline]:
        """One connection's reconstructed lifecycle from the trace ring.

        ``five_tuple`` is a :class:`~repro.netstack.flows.FiveTuple`
        (either direction) or its string form; returns None when the
        ring retained no events for that connection.
        """
        reconstructor = TimelineReconstructor(self.runtime.obs.trace)
        return reconstructor.for_stream(five_tuple)

    def spans(self, trace_id: Optional[str] = None) -> "list[SpanRecord]":
        """Span records retained in the run's trace ring.

        Any :class:`~repro.observability.SpanRecorder` writing into this
        run's observability context (for instance a traced
        :class:`~repro.service.ScapClient` sharing the context) lands
        here.  ``trace_id`` filters to one causal trace; with
        observability off the list is empty.
        """
        records = span_records(self.runtime.obs.trace.events())
        if trace_id is not None:
            records = [r for r in records if r.trace_id == trace_id]
        return records

    def telemetry(self) -> Optional[TelemetryRing]:
        """The run's :class:`~repro.observability.TelemetryRing`, if any.

        Present when the socket was created with a ``telemetry=`` ring
        (forwarded to :class:`~repro.core.runtime.ScapRuntime`, which
        samples it on *simulated* packet time during the run).
        """
        return self.runtime.telemetry

    def export_metrics(self, fmt: str = "prometheus", indent: Optional[int] = None) -> str:
        """Serialize the run's metrics registry.

        ``fmt`` is ``"prometheus"`` (text exposition format) or
        ``"json"`` (snapshot with the run's simulated end time).
        """
        obs = self.runtime.obs
        if fmt == "prometheus":
            return obs.export_prometheus()
        if fmt == "json":
            now = self.last_result.duration if self.last_result is not None else None
            return obs.export_json(now=now, indent=indent)
        raise ValueError(f"unknown metrics format: {fmt!r}")

    def close(self) -> None:
        """scap_close: release the socket (and seal an attached store)."""
        if self._recorder is not None:
            self._recorder.close()
        self._closed = True
        self._runtime = None


# ----------------------------------------------------------------------
# Paper-style function wrappers (§3.3 listings translate 1:1)
# ----------------------------------------------------------------------
def scap_create(
    device: Any,
    memory_size: int = SCAP_DEFAULT,
    reassembly_mode: int = SCAP_TCP_FAST,
    need_pkts: int = 0,
    fault_plan: Optional["FaultPlan"] = None,
    **kwargs: Any,
) -> ScapSocket:
    """Create an Scap socket bound to a device/workload (Table 1).

    ``fault_plan`` attaches a deterministic
    :class:`~repro.faultinject.FaultPlan`; the run then injects the
    plan's faults and exposes them through ``sc.fault_injector`` and
    the ``faults_injected*`` fields of :func:`scap_get_stats`.
    """
    return ScapSocket(
        device, memory_size, reassembly_mode, need_pkts,
        fault_plan=fault_plan, **kwargs,
    )


def scap_set_filter(sc: ScapSocket, bpf_filter: str) -> int:
    """Apply a BPF filter to the socket."""
    sc.set_filter(bpf_filter)
    return 0


def scap_set_cutoff(sc: ScapSocket, cutoff: int) -> int:
    """Change the default stream cutoff value."""
    sc.set_cutoff(cutoff)
    return 0


def scap_add_cutoff_direction(sc: ScapSocket, cutoff: int, direction: int) -> int:
    """Set a different cutoff for one stream direction."""
    sc.add_cutoff_direction(cutoff, direction)
    return 0


def scap_add_cutoff_class(sc: ScapSocket, cutoff: int, bpf_filter: str) -> int:
    """Set a different cutoff for a BPF-defined traffic class."""
    sc.add_cutoff_class(cutoff, bpf_filter)
    return 0


def scap_set_worker_threads(sc: ScapSocket, thread_num: int) -> int:
    """Set the number of stream-processing worker threads."""
    sc.set_worker_threads(thread_num)
    return 0


def scap_set_parameter(sc: ScapSocket, parameter: str, value: Any) -> int:
    """Change a socket-wide default parameter."""
    sc.set_parameter(parameter, value)
    return 0


def scap_dispatch_creation(sc: ScapSocket, handler: Callable) -> int:
    """Register the stream-creation callback."""
    sc.dispatch_creation(handler)
    return 0


def scap_dispatch_data(sc: ScapSocket, handler: Callable) -> int:
    """Register the new-stream-data callback."""
    sc.dispatch_data(handler)
    return 0


def scap_dispatch_termination(sc: ScapSocket, handler: Callable) -> int:
    """Register the stream-termination callback."""
    sc.dispatch_termination(handler)
    return 0


def scap_start_capture(sc: ScapSocket) -> RunResult:
    """Begin stream processing; blocks until the source drains."""
    return sc.start_capture()


def scap_discard_stream(sc: ScapSocket, sd: StreamDescriptor) -> None:
    """Discard the rest of a stream's traffic."""
    sc.discard_stream(sd)


def scap_set_stream_cutoff(sc: ScapSocket, sd: StreamDescriptor, cutoff: int) -> int:
    """Set the cutoff value of one stream."""
    sc.set_stream_cutoff(sd, cutoff)
    return 0


def scap_set_stream_priority(sc: ScapSocket, sd: StreamDescriptor, priority: int) -> int:
    """Set the PPL priority of one stream (and its peer)."""
    sc.set_stream_priority(sd, priority)
    return 0


def scap_set_stream_parameter(
    sc: ScapSocket, sd: StreamDescriptor, parameter: str, value: Any
) -> int:
    """Set a per-stream parameter override."""
    sc.set_stream_parameter(sd, parameter, value)
    return 0


def scap_keep_stream_chunk(sc: ScapSocket, sd: StreamDescriptor) -> int:
    """Keep the current chunk to merge into the next delivery."""
    sc.keep_stream_chunk(sd)
    return 0


def scap_next_stream_packet(
    sd: StreamDescriptor, header: Optional[ScapPacketHeader] = None
) -> Optional[bytes]:
    """Return the next captured packet of a stream, or None."""
    return next_stream_packet(sd, header)


def scap_get_stats(sc: ScapSocket) -> ScapStats:
    """Read overall statistics for all streams seen so far."""
    return sc.get_stats()


def scap_profile(sc: ScapSocket) -> ProfileReport:
    """Read the per-stage breakdown of the run's simulated busy time."""
    return sc.profile()


def scap_spans(sc: ScapSocket, trace_id: Optional[str] = None) -> "list[SpanRecord]":
    """Read the request spans retained in the run's trace ring."""
    return sc.spans(trace_id=trace_id)


def scap_telemetry(sc: ScapSocket) -> Optional[TelemetryRing]:
    """Read the run's telemetry ring (None unless one was attached)."""
    return sc.telemetry()


def scap_stream_timeline(sc: ScapSocket, five_tuple: Any) -> Optional[StreamTimeline]:
    """Reconstruct one connection's lifecycle from the trace ring."""
    return sc.stream_timeline(five_tuple)


def scap_set_store(sc: ScapSocket, recorder: "StreamRecorder") -> int:
    """Attach a stream-store recorder: deliveries are persisted (§6.6)."""
    sc.set_store(recorder)
    return 0


def scap_store_stats(sc: ScapSocket) -> "StoreStats":
    """Read the attached stream store's accounting snapshot."""
    return sc.store_stats()


def scap_close(sc: ScapSocket) -> None:
    """Close an Scap socket."""
    sc.close()
