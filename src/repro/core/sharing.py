"""Multiple applications sharing one capture (§5.6).

When several monitoring applications run on the same host, Scap
performs flow tracking and stream reassembly *once* in the kernel and
gives every application a shared read-only view of each stream.  The
kernel-level configuration is the best-effort union of all application
requirements:

* the effective cutoff is the **largest** requested cutoff;
* a stream is kept if it matches **at least one** application's BPF
  filter; each event is then delivered only to the applications whose
  filter matches;
* chunking uses the smallest chunk size so no application sees chunks
  larger than it asked for;
* PPL uses the most conservative (lowest) base threshold and the
  largest overload cutoff.

Each application still runs its own callbacks on its own worker pool
(its own process in the real system), so user-level costs multiply —
but the kernel work does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..filters.bpf import BPFFilter
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..results import RunResult
from .config import ScapConfig
from .constants import SCAP_UNLIMITED_CUTOFF
from .cutoff import CutoffPolicy
from .events import Event, EventType
from .runtime import ScapRuntime
from .workers import Callbacks, WorkerPool

__all__ = ["SharedApplication", "SharedCaptureRuntime", "merge_configs"]


def merge_configs(configs: Sequence[ScapConfig]) -> ScapConfig:
    """Combine per-application configs into one kernel-level config."""
    if not configs:
        raise ValueError("need at least one application config")
    for config in configs:
        config.validate()
    merged = ScapConfig(
        memory_size=max(config.memory_size for config in configs),
        reassembly_mode=min(config.reassembly_mode for config in configs),
        need_pkts=any(config.need_pkts for config in configs),
        chunk_size=min(config.chunk_size for config in configs),
        overlap_size=max(config.overlap_size for config in configs),
        inactivity_timeout=max(config.inactivity_timeout for config in configs),
        base_threshold=min(config.base_threshold for config in configs),
        use_fdir=all(config.use_fdir for config in configs),
    )
    merged.overlap_size = min(merged.overlap_size, merged.chunk_size - 1)
    # Flush timeout: the smallest requested (most eager) one, if any.
    timeouts = [c.flush_timeout for c in configs if c.flush_timeout is not None]
    if timeouts:
        merged.flush_timeout = min(timeouts)
    overloads = [c.overload_cutoff for c in configs if c.overload_cutoff is not None]
    if overloads:
        merged.overload_cutoff = max(overloads)

    # Cutoff: keep the largest default across applications; if any app
    # wants everything, the kernel captures everything.
    cutoffs = [config.cutoffs.default for config in configs]
    if any(cutoff == SCAP_UNLIMITED_CUTOFF for cutoff in cutoffs):
        merged.cutoffs = CutoffPolicy(SCAP_UNLIMITED_CUTOFF)
    else:
        merged.cutoffs = CutoffPolicy(max(cutoffs))

    # BPF: capture the union; per-application filtering happens at
    # delivery.  (An explicit OR-combined expression would need filter
    # source recomposition; evaluating the disjunction is equivalent.)
    filters = [config.bpf for config in configs]

    class _Union(BPFFilter):
        def __init__(self, parts: List[BPFFilter]):
            self.expression = " or ".join(
                f"({part.expression})" if part.expression else "" for part in parts
            )
            self._parts = parts

        @property
        def is_match_all(self) -> bool:  # type: ignore[override]
            # The disjunction accepts everything iff any part does.
            return any(part.is_match_all for part in self._parts)

        def matches(self, packet) -> bool:  # type: ignore[override]
            return any(part.matches(packet) for part in self._parts)

        def matches_five_tuple(self, five_tuple) -> bool:  # type: ignore[override]
            return any(part.matches_five_tuple(five_tuple) for part in self._parts)

    merged.bpf = _Union(filters)
    return merged


@dataclass
class SharedApplication:
    """One application sharing the capture: its config, callbacks, and
    (after the run) its own worker-pool statistics."""

    name: str
    config: ScapConfig = field(default_factory=ScapConfig)
    callbacks: Callbacks = field(default_factory=Callbacks)
    workers: Optional[WorkerPool] = None

    def wants(self, event: Event) -> bool:
        """Should this application receive ``event``?"""
        if not self.config.bpf.matches_five_tuple(event.stream.five_tuple):
            return False
        if event.event_type != EventType.STREAM_DATA:
            return True
        cutoff = self.config.cutoffs.effective_cutoff(event.stream)
        if cutoff == SCAP_UNLIMITED_CUTOFF:
            return True
        # Deliver only chunks that start below this app's own cutoff —
        # the kernel captured up to the *largest* cutoff of all apps.
        assert event.chunk is not None
        return event.chunk.stream_offset < cutoff


class SharedCaptureRuntime:
    """One kernel capture fanned out to several applications."""

    def __init__(
        self,
        applications: Sequence[SharedApplication],
        core_count: int = 8,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        **runtime_kwargs: Any,
    ):
        if not applications:
            raise ValueError("need at least one application")
        self.applications = list(applications)
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.locality = locality or LocalityProfile()
        self.merged_config = merge_configs([app.config for app in self.applications])
        self.runtime = ScapRuntime(
            config=self.merged_config,
            core_count=core_count,
            cost_model=self.cost,
            locality=self.locality,
            **runtime_kwargs,
        )
        for app in self.applications:
            app.workers = WorkerPool(
                worker_count=app.config.worker_threads,
                cost_model=self.cost,
                locality=self.locality,
                event_queue_capacity=app.config.event_queue_capacity,
                memory=self.runtime.kernel.memory,
                callbacks=app.callbacks,
            )
        # Replace the single-app dispatch with the fan-out.
        self.runtime.workers.dispatch = self._fan_out  # type: ignore[assignment]
        self._shared_release_guard = set()

    # ------------------------------------------------------------------
    def _fan_out(self, core: int, event: Event, ready_time: float) -> None:
        """Deliver one kernel event to every interested application.

        The chunk's memory is released when the *slowest* interested
        application finishes with it (shared read-only mapping).
        """
        interested = [app for app in self.applications if app.wants(event)]
        chunk = event.chunk
        latest_finish = ready_time
        for app in interested:
            workers = app.workers
            assert workers is not None
            server = workers.servers[workers.worker_for_event(core, event)]
            if not server.would_accept(ready_time, 1):
                server.reject()
                workers.events_dropped += 1
                continue
            dispatch_cycles, app_cycles = workers._service_cycles(event)
            service = self.cost.seconds(dispatch_cycles + app_cycles)
            finish = server.push(ready_time, 1, service)
            latest_finish = max(latest_finish, finish)
            workers._run_callback(event, service)  # also counts bytes
            workers.events_processed += 1
        if chunk is not None and not chunk.keep:
            self.runtime.kernel.memory.schedule_release(
                latest_finish, chunk.accounted_bytes
            )

    # ------------------------------------------------------------------
    def run(self, workload, rate_bps: float) -> List[RunResult]:
        """Replay once; return one result per application."""
        base = self.runtime.run(workload, rate_bps, name="shared-kernel")
        results = []
        for app in self.applications:
            workers = app.workers
            assert workers is not None
            result = RunResult(
                system=app.name,
                rate_bps=rate_bps,
                duration=base.duration,
                offered_packets=base.offered_packets,
                offered_bytes=base.offered_bytes,
                dropped_packets=base.dropped_packets,
                discarded_packets=base.discarded_packets,
                nic_filter_drops=base.nic_filter_drops,
                delivered_bytes=workers.bytes_delivered,
                delivered_events=workers.events_processed,
                user_utilization=workers.utilization(base.duration),
                softirq_load=base.softirq_load,
                streams_created=base.streams_created,
            )
            results.append(result)
        return results
