"""The Scap kernel module (§4, §5).

This is the in-kernel half of Scap, run per packet inside the simulated
software-interrupt handler of the core the NIC steered the packet to:

* locate/create the ``stream_t`` pair in the flow table;
* track the TCP state machine (handshake, FIN/RST, inactivity);
* normalize IP fragments and reassemble TCP in the configured mode and
  per-stream target policy;
* enforce the stream cutoff (and install NIC FDIR drop filters when a
  stream passes it — the subzero-copy path);
* apply Prioritized Packet Loss against the shared memory pool;
* write accepted payload into per-stream chunk blocks and emit
  creation/data/termination events to the per-core queues.

Every operation charges cycles from the cost model; the caller (the
runtime) turns the accumulated cycles into softirq service time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import CostModel
from ..netstack.fragments import IPFragmentReassembler
from ..netstack.packet import Packet
from ..netstack.tcp import TCPFlags, seq_diff
from ..nic.fdir import FDIR_DROP, FLEX_OFFSET_TCP_FLAGS, FdirFilter
from ..nic.nic import SimulatedNIC
from ..observability import (
    HOOK_CUTOFF_REACHED,
    HOOK_FDIR_INSTALL,
    HOOK_FDIR_TIMEOUT,
    HOOK_PPL_DROP,
    HOOK_STREAM_CREATED,
    HOOK_STREAM_TERMINATED,
    NULL_OBSERVABILITY,
    Observability,
)
from .config import ScapConfig
from .constants import (
    SCAP_TCP_STRICT,
    SCAP_UNLIMITED_CUTOFF,
    StreamError,
    StreamStatus,
)
from .events import DataReason, Event, EventType
from .flowtable import FlowTable, StreamPair
from .memory import Chunk, ChunkAssembler, StreamMemory
from .packet_delivery import PacketRecord
from .ppl import PrioritizedPacketLoss
from .reassembly import TCPDirectionReassembler
from .stream import StreamDescriptor

__all__ = ["ScapKernelModule", "KernelCounters"]

# Indices into ``ScapKernelModule.stage_cycles`` — same order as
# ``repro.observability.profiler.KERNEL_STAGES``.
_ST_RECV = 0      # packet_receive: softirq base, BPF, FDIR management
_ST_LOOKUP = 1    # flow_lookup: flow-table hashing + stream-state updates
_ST_REASM = 2     # reassembly: defrag, segment ordering, payload copy
_ST_ENQ = 3       # event_enqueue: event construction


@dataclass
class KernelCounters:
    """Aggregate counters across all cores (experiment bookkeeping)."""

    packets_seen: int = 0  # reached the softirq handler
    bytes_seen: int = 0
    filtered_out: int = 0  # failed the socket BPF filter
    dropped_ppl: int = 0
    dropped_memory: int = 0  # pool completely full
    discarded_cutoff_packets: int = 0
    discarded_cutoff_bytes: int = 0
    discarded_non_established: int = 0
    stored_bytes: int = 0
    events_emitted: int = 0
    events_dropped: int = 0
    stray_acks: int = 0
    fdir_installs: int = 0
    fdir_removals: int = 0
    fragment_packets: int = 0
    # Per-priority accounting for the PPL experiments.
    packets_by_priority: Dict[int, int] = field(default_factory=dict)
    ppl_drops_by_priority: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # The single aggregation path.  Every consumer (RunResult reduction,
    # scap_get_stats, exporters) derives its drop/discard totals from
    # these two methods instead of re-summing fields ad hoc, so the
    # breakdown cannot diverge between callers or cores.
    def unintentional_drops(self) -> int:
        """Packets lost to overload inside the kernel (PPL + pool full)."""
        return self.dropped_ppl + self.dropped_memory

    def early_discards(self) -> int:
        """Packets discarded on purpose inside the kernel (filter,
        cutoff, strict-mode normalization)."""
        return (
            self.filtered_out
            + self.discarded_cutoff_packets
            + self.discarded_non_established
        )


class _FlowEntry:
    """One directional five-tuple's cache line for the batched hot path.

    Caches everything the per-packet path re-derives on every packet of
    an established flow: the pair, the directional stream descriptor,
    the direction index, the stream's string label (``str(five_tuple)``
    is the single most expensive per-store operation), and — once
    created — the direction's reassembler and chunk assembler.  Entries
    are invalidated wholesale whenever any stream terminates (the
    kernel's ``_flow_epoch`` moves), so a cached pair can never outlive
    its flow-table record.
    """

    __slots__ = ("pair", "stream", "direction", "label", "reassembler", "assembler")

    def __init__(self, pair: StreamPair, stream: StreamDescriptor, direction: int,
                 label: str):
        self.pair = pair
        self.stream = stream
        self.direction = direction
        self.label = label
        self.reassembler: Optional[TCPDirectionReassembler] = None
        self.assembler: Optional[ChunkAssembler] = None


class _BatchContext:
    """Mutable state carried across the packets of one (or more) batches.

    The flow cache persists across batches; the per-core packet/byte
    accumulators are flushed into the metrics registry by
    :meth:`ScapKernelModule.end_batch` so the registry totals stay
    identical to the per-packet path at every batch boundary.
    """

    __slots__ = (
        "epoch",
        "flows",
        "bpf_match_all",
        "core_packets",
        "core_bytes",
        "enabled",
        "base_cycles",
        "lookup_hit_cycles",
    )

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.flows: Dict = {}
        self.bpf_match_all = False
        self.core_packets: Dict[int, int] = {}
        self.core_bytes: Dict[int, int] = {}
        self.enabled = False
        self.base_cycles = 0.0
        self.lookup_hit_cycles = 0.0


class ScapKernelModule:
    """Functional + cost model of the kernel half of Scap.

    ``emit_event(core, event, cycles_charged_so_far)`` is provided by
    the runtime; it is called while still "inside" the softirq so the
    runtime can deliver the event to the right worker queue once the
    softirq service completes.
    """

    def __init__(
        self,
        config: ScapConfig,
        nic: SimulatedNIC,
        cost_model: CostModel,
        locality: Optional[LocalityProfile] = None,
        emit_event: Optional[Callable[[int, Event], None]] = None,
        max_streams: Optional[int] = None,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
        fault_injector: Optional[object] = None,
    ):
        config.validate()
        self.config = config
        self.nic = nic
        self.cost = cost_model
        self.locality = locality or LocalityProfile()
        self.emit_event = emit_event or (lambda core, event: None)
        self.obs = observability or NULL_OBSERVABILITY
        self._san = sanitizers
        self.flows = FlowTable(max_streams=max_streams)
        self.memory = StreamMemory(
            config.memory_size,
            observability=self.obs,
            sanitizers=sanitizers,
            fault_injector=fault_injector,
        )
        self.ppl = PrioritizedPacketLoss(
            base_threshold=config.base_threshold,
            overload_cutoff=config.overload_cutoff,
            observability=self.obs,
            sanitizers=sanitizers,
        )
        self.counters = KernelCounters()
        registry = self.obs.registry
        self._m_core_packets = registry.counter(
            "scap_core_packets_total", "packets handled by each core's softirq",
            labels=("core",),
        )
        self._m_core_bytes = registry.counter(
            "scap_core_bytes_total", "wire bytes handled by each core's softirq",
            labels=("core",),
        )
        self._m_core_drops = registry.counter(
            "scap_core_drops_total",
            "packets dropped per core, by reason (ppl | memory)",
            labels=("core", "reason"),
        )
        self._m_fdir_doublings = registry.counter(
            "scap_fdir_timeout_doublings_total",
            "FDIR filter re-installs with a doubled timeout interval",
        )
        # Pre-resolved per-core children: one dict hit on first use,
        # then the enabled path is a bare Counter.inc.
        self._core_metrics: Dict[int, Tuple] = {}
        self._fragments = IPFragmentReassembler()
        self._filter_timeouts: List[Tuple[float, int, FdirFilter, StreamPair]] = []
        self._filter_seq = 0
        self._last_sweep = 0.0
        # Charged cycles for the packet currently being processed, with
        # a per-stage breakdown (indices above) read by the runtime to
        # feed the stage profiler.  Both are maintained unconditionally:
        # the split costs one list index per charge whether or not
        # observability is on, keeping the two paths identical.
        self._cycles = 0.0
        self.stage_cycles: List[float] = [0.0, 0.0, 0.0, 0.0]
        # Batched hot path state: the flow-entry cache is invalidated
        # whenever the epoch moves (any stream termination), and the
        # context persists across batches of one run.
        self._flow_epoch = 0
        self._batch_ctx: Optional[_BatchContext] = None
        self._cutoff_trivial = False

    # ------------------------------------------------------------------
    # Per-core metric handles
    # ------------------------------------------------------------------
    def _core(self, core: int) -> Tuple:
        """(packets, bytes, ppl_drops, memory_drops) counters for ``core``."""
        handles = self._core_metrics.get(core)
        if handles is None:
            handles = (
                self._m_core_packets.labels(core),
                self._m_core_bytes.labels(core),
                self._m_core_drops.labels(core, "ppl"),
                self._m_core_drops.labels(core, "memory"),
            )
            self._core_metrics[core] = handles
        return handles

    # ------------------------------------------------------------------
    # Cycle charging
    # ------------------------------------------------------------------
    def _charge(self, stage: int, cycles: float) -> None:
        """Charge softirq cycles, attributed to one kernel stage."""
        self._cycles += cycles
        self.stage_cycles[stage] += cycles

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, core: int) -> float:
        """Process one packet on ``core``; return softirq cycles charged."""
        now = packet.timestamp
        self._cycles = 0.0
        stages = self.stage_cycles
        stages[0] = stages[1] = stages[2] = stages[3] = 0.0
        self._charge(_ST_RECV, self.cost.softirq_per_packet)
        self.counters.packets_seen += 1
        self.counters.bytes_seen += packet.wire_len
        if self.obs.enabled:
            packets, nbytes, _, _ = self._core(core)
            packets.inc()
            nbytes.inc(packet.wire_len)
        self._sweep(now, core)

        if not self.config.bpf.matches(packet):
            # Early in-kernel discard: headers touched, nothing copied.
            self.counters.filtered_out += 1
            self._charge(_ST_RECV, 40.0)
            return self._cycles

        if packet.ip is not None and packet.ip.is_fragment:
            self.counters.fragment_packets += 1
            self._charge(_ST_REASM, self.cost.reassembly_per_segment)
            whole = self._fragments.push(packet)
            if whole is None:
                return self._cycles
            packet = whole

        five_tuple = packet.five_tuple
        if five_tuple is None:
            return self._cycles  # non-IP frames are ignored by Scap

        self._charge(_ST_LOOKUP, self.cost.hash_lookup)
        if (
            packet.tcp is not None
            and not packet.payload
            and not packet.tcp.syn
            and not packet.tcp.fin
            and not packet.tcp.rst
            and self.flows.get(five_tuple) is None
        ):
            # A bare ACK for a flow we are not tracking (e.g. the final
            # ACK of a connection just torn down): no stream state.
            self.counters.stray_acks += 1
            return self._cycles
        pair, created, evicted = self.flows.lookup_or_create(five_tuple, now)
        for victim in evicted:
            self._terminate(victim, now, victim.core, StreamStatus.TIMED_OUT)
        if created:
            pair.core = core
            self._charge(_ST_LOOKUP, self.cost.stream_update)
            self._emit(core, Event(EventType.STREAM_CREATED, pair.client, now))
            if self.obs.enabled:
                self.obs.trace.emit(
                    now, HOOK_STREAM_CREATED, core=core,
                    five_tuple=str(pair.client.five_tuple),
                )
        direction = pair.direction_of(five_tuple)
        stream = pair.descriptor(direction)
        self._charge(_ST_LOOKUP, self.cost.stream_update)
        self._update_stats(stream, packet, now)
        self.counters.packets_by_priority[stream.priority] = (
            self.counters.packets_by_priority.get(stream.priority, 0) + 1
        )

        if packet.tcp is not None:
            self._handle_tcp(pair, stream, direction, packet, now, core)
        elif packet.udp is not None:
            self._handle_payload(pair, stream, direction, packet.payload, now, core)
            self._maybe_flush_timeout(pair, stream, direction, now, core)
        else:
            # Other IP protocols: no reassembly, each packet delivered
            # for processing on its own (§2.3).
            self._handle_payload(pair, stream, direction, packet.payload, now, core)
            assembler = pair.assemblers.get(direction)
            if assembler is not None and assembler.pending_bytes:
                chunk = assembler.flush(now)
                if chunk is not None:
                    self._emit_data(core, stream, chunk, DataReason.CHUNK_FULL, now)
        return self._cycles

    # ------------------------------------------------------------------
    # Batched entry point
    # ------------------------------------------------------------------
    def begin_batch(self) -> _BatchContext:
        """Prepare (and return) the batch context for a batch of packets.

        Refreshes the per-batch constants (match-all BPF, trivial cutoff
        policy) and drops the flow cache if any stream terminated since
        the cache was filled.
        """
        ctx = self._batch_ctx
        if ctx is None:
            ctx = _BatchContext(self._flow_epoch)
            self._batch_ctx = ctx
        ctx.bpf_match_all = self.config.bpf.is_match_all
        self._cutoff_trivial = self.config.cutoffs.is_trivial
        ctx.enabled = self.obs.enabled
        cost = self.cost
        ctx.base_cycles = cost.softirq_per_packet
        # The hit path folds hash_lookup + stream_update into one add;
        # cost constants are small exactly-representable floats, so the
        # grouping cannot change the accumulated total.
        ctx.lookup_hit_cycles = cost.hash_lookup + cost.stream_update
        if ctx.epoch != self._flow_epoch:
            ctx.flows.clear()
            ctx.epoch = self._flow_epoch
        self.ppl.begin_batch()
        self.memory.begin_batch()
        return ctx

    def end_batch(self, ctx: _BatchContext) -> None:
        """Flush the batch's accumulated per-core metric increments."""
        self.ppl.end_batch()
        self.memory.end_batch()
        if self.obs.enabled:
            for core, count in ctx.core_packets.items():
                self._core(core)[0].inc(count)
            for core, nbytes in ctx.core_bytes.items():
                self._core(core)[1].inc(nbytes)
        ctx.core_packets.clear()
        ctx.core_bytes.clear()

    def handle_batch_packet(
        self, packet: Packet, core: int, five_tuple, ctx: _BatchContext
    ) -> float:
        """Batched twin of :meth:`handle_packet`: identical side effects.

        ``five_tuple`` is the packet's directional tuple, computed once
        at batch construction.  Amortizations over the per-packet path:
        the flow-entry cache replaces canonicalization + flow-table
        lookup for packets of known flows, a match-all BPF is skipped
        per batch, and the stream label string is computed once per flow
        instead of once per stored piece.  Every counter, trace hook,
        sanitizer call, and charged cycle is the same as the per-packet
        path — this method must never observably diverge from it.
        """
        now = packet.timestamp
        cost = self.cost
        stages = self.stage_cycles
        # Inlined _charge(_ST_RECV, softirq_per_packet) on fresh stages.
        base = ctx.base_cycles
        self._cycles = base
        stages[0] = base
        stages[1] = stages[2] = stages[3] = 0.0
        counters = self.counters
        counters.packets_seen += 1
        counters.bytes_seen += packet.wire_len
        if ctx.enabled:
            core_packets = ctx.core_packets
            core_packets[core] = core_packets.get(core, 0) + 1
            core_bytes = ctx.core_bytes
            core_bytes[core] = core_bytes.get(core, 0) + packet.wire_len
        if now - self._last_sweep >= 0.01:  # inlined _sweep guard
            self._sweep(now, core)
        if ctx.epoch != self._flow_epoch:
            ctx.flows.clear()
            ctx.epoch = self._flow_epoch

        if not ctx.bpf_match_all and not self.config.bpf.matches(packet):
            counters.filtered_out += 1
            self._charge(_ST_RECV, 40.0)
            return self._cycles

        if packet.ip is not None and packet.ip.is_fragment:
            counters.fragment_packets += 1
            self._charge(_ST_REASM, cost.reassembly_per_segment)
            whole = self._fragments.push(packet)
            if whole is None:
                return self._cycles
            packet = whole
            five_tuple = packet.five_tuple

        if five_tuple is None:
            return self._cycles  # non-IP frames are ignored by Scap

        entry = ctx.flows.get(five_tuple)
        if entry is None:
            self._charge(_ST_LOOKUP, cost.hash_lookup)
            tcp = packet.tcp
            if (
                tcp is not None
                and not packet.payload
                and not tcp.syn
                and not tcp.fin
                and not tcp.rst
                and self.flows.get(five_tuple) is None
            ):
                counters.stray_acks += 1
                return self._cycles
            pair, created, evicted = self.flows.lookup_or_create(five_tuple, now)
            for victim in evicted:
                self._terminate(victim, now, victim.core, StreamStatus.TIMED_OUT)
            if ctx.epoch != self._flow_epoch:
                # Record-budget eviction terminated streams: any cached
                # entry may now be stale.  (``pair`` itself is live — it
                # was just created.)
                ctx.flows.clear()
                ctx.epoch = self._flow_epoch
            if created:
                pair.core = core
                self._charge(_ST_LOOKUP, cost.stream_update)
                self._emit(core, Event(EventType.STREAM_CREATED, pair.client, now))
                if self.obs.enabled:
                    self.obs.trace.emit(
                        now, HOOK_STREAM_CREATED, core=core,
                        five_tuple=str(pair.client.five_tuple),
                    )
            direction = pair.direction_of(five_tuple)
            stream = pair.descriptor(direction)
            entry = _FlowEntry(pair, stream, direction, str(stream.five_tuple))
            ctx.flows[five_tuple] = entry
            self._charge(_ST_LOOKUP, cost.stream_update)
        else:
            pair = entry.pair
            stream = entry.stream
            direction = entry.direction
            # Same LRU effect as the hit path of ``lookup_or_create``;
            # hash_lookup + stream_update folded into one charge.
            self.flows.touch(pair, now)
            lookup_cycles = ctx.lookup_hit_cycles
            self._cycles += lookup_cycles
            stages[1] += lookup_cycles
        # Inlined _update_stats.
        stats = stream.stats
        stats.pkts += 1
        stats.bytes += len(packet.payload)
        stats.end = now
        if stats.start == 0.0:
            stats.start = now
        by_priority = counters.packets_by_priority
        priority = stream.priority
        by_priority[priority] = by_priority.get(priority, 0) + 1

        tcp = packet.tcp
        if tcp is not None:
            if packet.payload and not (tcp.syn or tcp.fin or tcp.rst):
                # Established-data fast path: _handle_tcp minus the
                # handshake/termination branches it would fall through.
                pair.last_seq[direction] = tcp.seq
                self._handle_tcp_payload(
                    pair, stream, direction, packet, now, core, entry=entry
                )
                if (
                    stream.flush_timeout is not None
                    or self.config.flush_timeout is not None
                ):
                    self._maybe_flush_timeout(pair, stream, direction, now, core)
            else:
                self._handle_tcp(
                    pair, stream, direction, packet, now, core, entry=entry
                )
        elif packet.udp is not None:
            self._handle_payload(
                pair, stream, direction, packet.payload, now, core, entry=entry
            )
            self._maybe_flush_timeout(pair, stream, direction, now, core)
        else:
            self._handle_payload(
                pair, stream, direction, packet.payload, now, core, entry=entry
            )
            assembler = pair.assemblers.get(direction)
            if assembler is not None and assembler.pending_bytes:
                chunk = assembler.flush(now)
                if chunk is not None:
                    self._emit_data(core, stream, chunk, DataReason.CHUNK_FULL, now)
        return self._cycles

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _update_stats(self, stream: StreamDescriptor, packet: Packet, now: float) -> None:
        stats = stream.stats
        stats.pkts += 1
        stats.bytes += len(packet.payload)
        stats.end = now
        if stats.start == 0.0:
            stats.start = now

    # ------------------------------------------------------------------
    # TCP handling
    # ------------------------------------------------------------------
    def _reassembler_for(
        self, pair: StreamPair, stream: StreamDescriptor, direction: int
    ) -> TCPDirectionReassembler:
        reassembler = pair.reassemblers.get(direction)
        if reassembler is None:
            mode = stream.reassembly_mode or self.config.reassembly_mode
            policy = stream.reassembly_policy or self.config.reassembly_policy
            reassembler = TCPDirectionReassembler(
                mode=mode, policy=policy, observability=self.obs,
                sanitizers=self._san,
                stream_label=str(stream.five_tuple),
            )
            pair.reassemblers[direction] = reassembler
        return reassembler

    def _handle_tcp(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        packet: Packet,
        now: float,
        core: int,
        entry: Optional[_FlowEntry] = None,
    ) -> None:
        tcp = packet.tcp
        assert tcp is not None
        pair.last_seq[direction] = tcp.seq

        if tcp.syn and not tcp.ack_flag:
            pair.syn_seen = True
            self._reassembler_for(pair, stream, direction).set_isn(tcp.seq)
            return
        if tcp.syn and tcp.ack_flag:
            pair.synack_seen = True
            self._reassembler_for(pair, stream, direction).set_isn(tcp.seq)
            if pair.syn_seen:
                pair.established = True
                # A zero cutoff is known at establishment: trigger the
                # cutoff (and the FDIR filters) right away, so no data
                # packet of this flow is ever brought to memory (§6.2).
                for peer_direction, peer in enumerate(pair.both):
                    if (
                        not peer.cutoff_exceeded
                        and self.config.cutoffs.effective_cutoff(peer) == 0
                    ):
                        self._cutoff_reached(pair, peer, peer_direction, now, core)
            return
        if tcp.rst:
            self._estimate_from_seq(pair, stream, direction, tcp.seq)
            self._terminate(pair, now, core, StreamStatus.RESET)
            return

        if packet.payload:
            self._handle_tcp_payload(
                pair, stream, direction, packet, now, core, entry=entry
            )

        if tcp.fin:
            self._estimate_from_seq(pair, stream, direction, tcp.seq)
            fin = list(pair.fin_seen)
            fin[direction] = True
            pair.fin_seen = (fin[0], fin[1])
            if pair.fin_seen[0] and pair.fin_seen[1]:
                # Both sides have FINed: the connection is over.  (The
                # final ACK, if it still reaches us, is ignored below —
                # stray ACKs never create flow state.)
                self._terminate(pair, now, core, StreamStatus.CLOSED)
                return
        self._maybe_flush_timeout(pair, stream, direction, now, core)

    def _handle_tcp_payload(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        packet: Packet,
        now: float,
        core: int,
        entry: Optional[_FlowEntry] = None,
    ) -> None:
        mode = stream.reassembly_mode or self.config.reassembly_mode
        if mode == SCAP_TCP_STRICT and not pair.established:
            # Strict normalization: data from non-established connections
            # is discarded (protects against stick/snot-style noise).
            self.counters.discarded_non_established += 1
            stream.stats.discarded_pkts += 1
            stream.stats.discarded_bytes += len(packet.payload)
            return

        if entry is not None:
            reassembler = entry.reassembler
            if reassembler is None:
                reassembler = self._reassembler_for(pair, stream, direction)
                entry.reassembler = reassembler
        else:
            reassembler = self._reassembler_for(pair, stream, direction)
        if not pair.established and not reassembler.anchored:
            stream.set_error(StreamError.INCOMPLETE_HANDSHAKE)

        if stream.cutoff_exceeded or stream.discarded_by_app:
            # Data past the cutoff that still reached the kernel (no
            # FDIR, or filter evicted): discard at once, nearly free.
            self.counters.discarded_cutoff_packets += 1
            self.counters.discarded_cutoff_bytes += len(packet.payload)
            stream.stats.discarded_pkts += 1
            stream.stats.discarded_bytes += len(packet.payload)
            if self.config.use_fdir and not pair.nic_filters_installed:
                self._install_filters(pair, stream, now)
            return

        # Prioritized packet loss: decide before spending copy cycles.
        decision = self.ppl.check(
            self.memory.fraction_used(now), stream.priority, reassembler.next_offset
        )
        if decision.drop:
            self.counters.dropped_ppl += 1
            self.counters.ppl_drops_by_priority[stream.priority] = (
                self.counters.ppl_drops_by_priority.get(stream.priority, 0) + 1
            )
            stream.stats.dropped_pkts += 1
            stream.stats.dropped_bytes += len(packet.payload)
            if self.obs.enabled:
                self._core(core)[2].inc()
                self.obs.trace.emit(
                    now, HOOK_PPL_DROP, core=core, priority=stream.priority,
                    reason=decision.reason, bytes=len(packet.payload),
                    five_tuple=entry.label if entry is not None
                    else str(stream.five_tuple),
                )
            return

        # Inlined _charge(_ST_REASM, reassembly_per_segment).
        cyc = self.cost.reassembly_per_segment
        self._cycles += cyc
        self.stage_cycles[_ST_REASM] += cyc
        # The packet's stream position must be read before reassembly
        # moves the expected pointer (it anchors per-packet delivery
        # records) — skipped entirely when records are off.
        need_pkts = self.config.need_pkts
        record_offset = 0
        if need_pkts:
            record_offset = (
                reassembler.next_offset
                + seq_diff(packet.tcp.seq, reassembler.expected_seq)
                if reassembler.anchored
                else 0
            )
        delivered = reassembler.on_segment(packet.tcp.seq, packet.payload, now=now)
        stored_any = False
        if (
            entry is not None
            and len(delivered) > 1
            and self._cutoff_trivial
            and stream.cutoff == SCAP_UNLIMITED_CUTOFF
        ):
            # Multi-piece delivery (a hole just drained) with no cutoff
            # in play: admit every piece, then hand the assembler all
            # surviving segments in one multi-segment append.
            stored_any = self._store_pieces_fast(
                pair, stream, direction, delivered, now, core, entry
            )
        else:
            for piece in delivered:
                stored = self._store_piece(
                    pair, stream, direction, piece.data, now, core,
                    follows_hole=piece.follows_hole, entry=entry,
                )
                stored_any = stored_any or stored
        # A record exists only for packets whose bytes were stored in
        # stream memory right away — the record's payload pointer must
        # point at real stream data.  (Out-of-order segments awaiting a
        # hole fill are not individually recorded; their bytes reach the
        # application through the chunks of the merged piece.)
        if need_pkts and stored_any:
            stream.packet_records.append(
                PacketRecord(
                    timestamp=now,
                    caplen=len(packet.payload),
                    wire_len=packet.wire_len,
                    seq=packet.tcp.seq,
                    tcp_flags=packet.tcp.flags,
                    payload=packet.payload,
                    stream_offset=record_offset,
                )
            )
        if delivered:
            stream.stats.captured_pkts += 1

    # ------------------------------------------------------------------
    # Payload storage (shared by TCP/UDP/other)
    # ------------------------------------------------------------------
    def _assembler_for(
        self, pair: StreamPair, stream: StreamDescriptor, direction: int
    ) -> ChunkAssembler:
        assembler = pair.assemblers.get(direction)
        if assembler is None:
            assembler = ChunkAssembler(
                self.memory,
                chunk_size=stream.chunk_size or self.config.chunk_size,
                overlap=stream.overlap_size
                if stream.overlap_size is not None
                else self.config.overlap_size,
            )
            pair.assemblers[direction] = assembler
        return assembler

    def _handle_payload(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        payload: bytes,
        now: float,
        core: int,
        entry: Optional[_FlowEntry] = None,
    ) -> None:
        """UDP / other protocols: concatenate payloads, no reassembly."""
        if not payload:
            return
        if stream.cutoff_exceeded or stream.discarded_by_app:
            stream.stats.discarded_pkts += 1
            stream.stats.discarded_bytes += len(payload)
            self.counters.discarded_cutoff_packets += 1
            self.counters.discarded_cutoff_bytes += len(payload)
            return
        if entry is not None:
            assembler = entry.assembler
            if assembler is None:
                assembler = self._assembler_for(pair, stream, direction)
                entry.assembler = assembler
        else:
            assembler = self._assembler_for(pair, stream, direction)
        decision = self.ppl.check(
            self.memory.fraction_used(now), stream.priority, assembler.stream_offset
        )
        if decision.drop:
            self.counters.dropped_ppl += 1
            self.counters.ppl_drops_by_priority[stream.priority] = (
                self.counters.ppl_drops_by_priority.get(stream.priority, 0) + 1
            )
            stream.stats.dropped_pkts += 1
            stream.stats.dropped_bytes += len(payload)
            if self.obs.enabled:
                self._core(core)[2].inc()
                self.obs.trace.emit(
                    now, HOOK_PPL_DROP, core=core, priority=stream.priority,
                    reason=decision.reason, bytes=len(payload),
                    five_tuple=entry.label if entry is not None
                    else str(stream.five_tuple),
                )
            return
        record_offset = assembler.stream_offset
        stored = self._store_piece(
            pair, stream, direction, payload, now, core, entry=entry
        )
        stream.stats.captured_pkts += 1
        if stored and self.config.need_pkts:
            stream.packet_records.append(
                PacketRecord(
                    timestamp=now,
                    caplen=len(payload),
                    wire_len=len(payload) + 42,
                    seq=0,
                    tcp_flags=0,
                    payload=payload,
                    stream_offset=record_offset,
                )
            )

    def _store_piece(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        data: bytes,
        now: float,
        core: int,
        follows_hole: bool = False,
        entry: Optional[_FlowEntry] = None,
    ) -> bool:
        """Write reassembled bytes into the stream's chunk block."""
        if not data:
            return False
        if entry is not None:
            assembler = entry.assembler
            if assembler is None:
                assembler = self._assembler_for(pair, stream, direction)
                entry.assembler = assembler
            if self._cutoff_trivial and stream.cutoff == SCAP_UNLIMITED_CUTOFF:
                # No scope can impose a cutoff on this stream: identical
                # to ``cutoffs.remaining`` returning None, without the
                # resolution walk.
                remaining = None
            else:
                remaining = self.config.cutoffs.remaining(
                    stream, assembler.stream_offset
                )
        else:
            assembler = self._assembler_for(pair, stream, direction)
            remaining = self.config.cutoffs.remaining(stream, assembler.stream_offset)
        truncated = False
        if remaining is not None and len(data) >= remaining:
            cut = len(data) - remaining
            if cut:
                stream.stats.discarded_bytes += cut
                self.counters.discarded_cutoff_bytes += cut
            data = data[:remaining]
            truncated = True
        if data:
            label = entry.label if entry is not None else str(stream.five_tuple)
            if not self.memory.try_store(now, len(data), label):
                self.counters.dropped_memory += 1
                # Memory exhaustion is the overload drop of last resort;
                # account it per priority like a PPL drop so the PPL
                # experiments see the complete per-class loss.
                self.counters.ppl_drops_by_priority[stream.priority] = (
                    self.counters.ppl_drops_by_priority.get(stream.priority, 0) + 1
                )
                stream.stats.dropped_pkts += 1
                stream.stats.dropped_bytes += len(data)
                if self.obs.enabled:
                    self._core(core)[3].inc()
                if truncated:
                    # The cutoff decision is independent of whether the
                    # final piece could be stored: the stream must still
                    # transition to CUTOFF (and install FDIR drop
                    # filters), or an exhausted pool would keep cutoff
                    # traffic flowing to the kernel forever.
                    self._cutoff_reached(pair, stream, direction, now, core)
                return False
            if follows_hole:
                stream.set_error(StreamError.REASSEMBLY_HOLE)
            # Inlined _charge pair; two separate adds keep the float
            # accumulation order identical to the uninlined calls.
            stages = self.stage_cycles
            cyc = self.cost.copy_cost(len(data))
            self._cycles += cyc
            stages[_ST_REASM] += cyc
            cyc = self.cost.miss_cost(self.locality.scap_kernel_misses(len(data)))
            self._cycles += cyc
            stages[_ST_REASM] += cyc
            self.counters.stored_bytes += len(data)
            stream.stats.captured_bytes += len(data)
            for chunk in assembler.append(data, now, had_hole=follows_hole):
                self._emit_data(core, stream, chunk, DataReason.CHUNK_FULL, now)
        if truncated:
            self._cutoff_reached(pair, stream, direction, now, core)
        return bool(data)

    def _store_pieces_fast(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        pieces: List,
        now: float,
        core: int,
        entry: _FlowEntry,
    ) -> bool:
        """Store several reassembled pieces via one multi-segment append.

        Only called when no cutoff can apply to the stream (caller
        checked ``is_trivial`` + the per-stream cutoff), so truncation
        and ``_cutoff_reached`` can never trigger.  Observable effects
        are identical to calling :meth:`_store_piece` per piece: pool
        admissions, sanitizer hooks, and counters happen per piece in
        piece order, and chunk events are emitted in the same sequence —
        appends never move the memory pool, so deferring them past later
        admissions changes no admission outcome.
        """
        assembler = entry.assembler
        if assembler is None:
            assembler = self._assembler_for(pair, stream, direction)
            entry.assembler = assembler
        label = entry.label
        cost = self.cost
        counters = self.counters
        stats = stream.stats
        segments: List[bytes] = []
        flags: List[bool] = []
        stored_any = False
        for piece in pieces:
            data = piece.data
            if not data:
                continue
            if not self.memory.try_store(now, len(data), label):
                counters.dropped_memory += 1
                counters.ppl_drops_by_priority[stream.priority] = (
                    counters.ppl_drops_by_priority.get(stream.priority, 0) + 1
                )
                stats.dropped_pkts += 1
                stats.dropped_bytes += len(data)
                if self.obs.enabled:
                    self._core(core)[3].inc()
                continue
            if piece.follows_hole:
                stream.set_error(StreamError.REASSEMBLY_HOLE)
            stages = self.stage_cycles
            cyc = cost.copy_cost(len(data))
            self._cycles += cyc
            stages[_ST_REASM] += cyc
            cyc = cost.miss_cost(self.locality.scap_kernel_misses(len(data)))
            self._cycles += cyc
            stages[_ST_REASM] += cyc
            counters.stored_bytes += len(data)
            stats.captured_bytes += len(data)
            segments.append(data)
            flags.append(piece.follows_hole)
            stored_any = True
        if segments:
            for chunk in assembler.append_many(segments, now, had_holes=flags):
                self._emit_data(core, stream, chunk, DataReason.CHUNK_FULL, now)
        return stored_any

    def _cutoff_reached(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        now: float,
        core: int,
    ) -> None:
        """The stream hit its cutoff: final chunk, FDIR filters (§5.4/5.5)."""
        stream.cutoff_exceeded = True
        stream.status = StreamStatus.CUTOFF
        if self.obs.enabled:
            self.obs.trace.emit(
                now, HOOK_CUTOFF_REACHED, core=core,
                five_tuple=str(stream.five_tuple),
                captured_bytes=stream.stats.captured_bytes,
            )
        assembler = pair.assemblers.get(direction)
        final = assembler.flush(now) if assembler is not None else None
        if final is not None:
            self._emit_data(core, stream, final, DataReason.CUTOFF, now)
        if self.config.use_fdir:
            self._install_filters(pair, stream, now)

    # ------------------------------------------------------------------
    # Flush timeouts
    # ------------------------------------------------------------------
    def _maybe_flush_timeout(
        self,
        pair: StreamPair,
        stream: StreamDescriptor,
        direction: int,
        now: float,
        core: int,
    ) -> None:
        flush_timeout = (
            stream.flush_timeout
            if stream.flush_timeout is not None
            else self.config.flush_timeout
        )
        if flush_timeout is None:
            return
        assembler = pair.assemblers.get(direction)
        if (
            assembler is not None
            and assembler.pending_bytes
            and now - assembler.last_delivery >= flush_timeout
        ):
            chunk = assembler.flush(now)
            if chunk is not None:
                self._emit_data(core, stream, chunk, DataReason.FLUSH_TIMEOUT, now)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def _terminate(
        self, pair: StreamPair, now: float, core: int, status: str
    ) -> None:
        """Flush, emit final data + termination events, drop state."""
        self.flows.remove(pair)
        # Any cached flow entry may now point at dead state; the batch
        # context drops its cache when it sees the epoch move.
        self._flow_epoch += 1
        for direction, stream in enumerate(pair.both):
            reassembler = pair.reassemblers.get(direction)
            if reassembler is not None:
                for piece in reassembler.flush(now=now):
                    self._store_piece(
                        pair, stream, direction, piece.data, now, core,
                        follows_hole=piece.follows_hole,
                    )
            assembler = pair.assemblers.get(direction)
            if assembler is not None:
                final = assembler.flush(now, final=True)
                if final is not None:
                    self._emit_data(core, stream, final, DataReason.TERMINATION, now)
            if stream.status in (StreamStatus.ACTIVE, StreamStatus.CUTOFF):
                stream.status = status
            stream.stats.end = now
        if pair.nic_filters_installed:
            self._remove_filters(pair, now)
        self._emit(core, Event(EventType.STREAM_TERMINATED, pair.client, now))
        self._emit(core, Event(EventType.STREAM_TERMINATED, pair.server, now))
        if self.obs.enabled:
            self.obs.trace.emit(
                now, HOOK_STREAM_TERMINATED, core=core, status=status,
                five_tuple=str(pair.client.five_tuple),
                # Connection totals across both directions; ``bytes`` may
                # exceed ``captured_bytes`` when FIN/RST seq numbers
                # recovered the size of NIC-dropped data (§5.5).
                bytes=pair.client.stats.bytes + pair.server.stats.bytes,
                captured_bytes=(
                    pair.client.stats.captured_bytes + pair.server.stats.captured_bytes
                ),
            )

    def expire_and_drain(self, now: float) -> None:
        """End of capture: time out everything still in the table."""
        for pair in self.flows.drain():
            self._terminate(pair, now, pair.core, StreamStatus.TIMED_OUT)

    # ------------------------------------------------------------------
    # Housekeeping sweep (inactivity + FDIR timeouts)
    # ------------------------------------------------------------------
    def _sweep(self, now: float, core: int) -> None:
        if now - self._last_sweep < 0.01:
            return
        self._last_sweep = now
        for pair in self.flows.expire_idle(now, self.config.inactivity_timeout):
            self._terminate(pair, now, pair.core, StreamStatus.TIMED_OUT)
        while self._filter_timeouts and self._filter_timeouts[0][0] <= now:
            _, _, nic_filter, pair = heapq.heappop(self._filter_timeouts)
            if self._san is not None:
                self._san.fdir.on_timeout(nic_filter, now)
            if self.nic.fdir.remove_filter(nic_filter):
                self.counters.fdir_removals += 1
                self._charge(_ST_RECV, self.cost.fdir_filter_update)
                pair.nic_filters_installed = False
                if self.obs.enabled:
                    self.obs.trace.emit(
                        now, HOOK_FDIR_TIMEOUT,
                        five_tuple=str(nic_filter.five_tuple),
                        timeout_interval=nic_filter.timeout_interval,
                    )

    # ------------------------------------------------------------------
    # FDIR filter management (§5.5)
    # ------------------------------------------------------------------
    def _install_filters(self, pair: StreamPair, stream: StreamDescriptor, now: float) -> None:
        """Install the two data-dropping filters for ``stream``'s direction.

        Filters match the stream's directional five-tuple plus the TCP
        offset/flags word for plain-ACK and ACK|PSH segments; RST/FIN
        (and SYN) still reach the kernel for termination tracking.
        """
        previous_interval = pair.filter_timeout_interval
        if previous_interval <= 0:
            pair.filter_timeout_interval = self.config.fdir_initial_timeout
        else:
            # Re-install after a timeout removal: double the interval so
            # long-lived flows are evicted only O(log) times.
            pair.filter_timeout_interval *= 2
            if self.obs.enabled:
                self._m_fdir_doublings.inc()
        if self._san is not None:
            self._san.fdir.on_install(
                pair.key,
                pair.filter_timeout_interval,
                previous_interval,
                self.config.fdir_initial_timeout,
            )
        timeout_at = now + pair.filter_timeout_interval
        if self.obs.enabled:
            self.obs.trace.emit(
                now, HOOK_FDIR_INSTALL,
                five_tuple=str(stream.five_tuple),
                timeout_interval=pair.filter_timeout_interval,
            )
        for flags in (TCPFlags.ACK, TCPFlags.ACK | TCPFlags.PSH):
            nic_filter = FdirFilter(
                five_tuple=stream.five_tuple,
                action_queue=FDIR_DROP,
                flex_offset=FLEX_OFFSET_TCP_FLAGS,
                flex_value=(5 << 12) | flags,
                timeout_at=timeout_at,
                timeout_interval=pair.filter_timeout_interval,
            )
            self.nic.fdir.add(nic_filter, now=now)
            self._filter_seq += 1
            heapq.heappush(
                self._filter_timeouts, (timeout_at, self._filter_seq, nic_filter, pair)
            )
            self.counters.fdir_installs += 1
            self._charge(_ST_RECV, self.cost.fdir_filter_update)
        pair.nic_filters_installed = True

    def _remove_filters(self, pair: StreamPair, now: float) -> None:
        removed = self.nic.fdir.remove_for_stream(pair.key)
        if removed:
            self.counters.fdir_removals += removed
            self._charge(_ST_RECV, self.cost.fdir_filter_update * removed)
        pair.nic_filters_installed = False

    def _estimate_from_seq(
        self, pair: StreamPair, stream: StreamDescriptor, direction: int, seq: int
    ) -> None:
        """Recover flow size from FIN/RST sequence numbers (§5.5).

        When data packets were dropped at the NIC the kernel never saw
        them; the FIN's sequence number still tells us how many bytes
        the stream carried.
        """
        reassembler = pair.reassemblers.get(direction)
        if reassembler is None or not reassembler.anchored:
            return
        estimated = reassembler.next_offset + seq_diff(seq, reassembler.expected_seq)
        if estimated > stream.stats.bytes:
            stream.stats.bytes = estimated

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _emit_data(
        self, core: int, stream: StreamDescriptor, chunk: Chunk, reason: str, now: float
    ) -> None:
        stream.chunks += 1
        self._emit(core, Event(EventType.STREAM_DATA, stream, now, chunk=chunk, reason=reason))

    def _emit(self, core: int, event: Event) -> None:
        self._charge(_ST_ENQ, self.cost.event_create)
        self.counters.events_emitted += 1
        self.emit_event(core, event)
