"""Scap socket configuration shared by the stub and the kernel module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..filters.bpf import BPFFilter
from .constants import SCAP_TCP_FAST, ReassemblyPolicy
from .cutoff import CutoffPolicy

__all__ = ["ScapConfig", "DEFAULT_MEMORY_SIZE"]

DEFAULT_MEMORY_SIZE = 1 << 30  # 1 GB stream buffer, as in the evaluation


@dataclass
class ScapConfig:
    """Everything configurable through the Scap API (Table 1).

    Defaults mirror §6.1: 1 GB stream memory, 16 KB chunks,
    ``SCAP_TCP_FAST``, 10 s inactivity timeout.
    """

    memory_size: int = DEFAULT_MEMORY_SIZE
    reassembly_mode: int = SCAP_TCP_FAST
    reassembly_policy: str = ReassemblyPolicy.LINUX
    need_pkts: bool = False

    chunk_size: int = 16 * 1024
    overlap_size: int = 0
    flush_timeout: Optional[float] = None
    inactivity_timeout: float = 10.0

    # Prioritized packet loss.
    base_threshold: float = 0.5
    overload_cutoff: Optional[int] = None

    worker_threads: int = 1

    # Hardware offload.
    use_fdir: bool = True
    fdir_initial_timeout: float = 2.0

    event_queue_capacity: int = 1 << 16

    bpf: BPFFilter = field(default_factory=BPFFilter)
    cutoffs: CutoffPolicy = field(default_factory=CutoffPolicy)

    def validate(self) -> None:
        """Raise ValueError on out-of-range parameters."""
        if self.memory_size <= 0:
            raise ValueError("memory_size must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if not 0 <= self.overlap_size < self.chunk_size:
            raise ValueError("overlap_size must be in [0, chunk_size)")
        if self.worker_threads < 1:
            raise ValueError("need at least one worker thread")
        if self.inactivity_timeout <= 0:
            raise ValueError("inactivity_timeout must be positive")
