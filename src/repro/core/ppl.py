"""Prioritized Packet Loss (§2.2, analyzed in §7).

Under overload the stream-memory pool fills; instead of dropping
whatever arrives next (what a full PF_PACKET ring does), PPL drops by
priority.  The memory *above* ``base_threshold`` is divided into one
band per priority level by equally spaced watermarks:

    watermark(p) = base + (p + 1) * (1 - base) / n      p = 0 .. n-1

A packet of priority ``p`` (higher value = more important) is dropped
outright when used memory exceeds ``watermark(p)``; in the band just
below its watermark, the optional ``overload_cutoff`` applies — packets
beyond that many bytes into their stream are dropped, which is what
gives new and short streams preferential treatment under pressure.
Below ``base_threshold`` nothing is ever dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..observability import (
    DEFAULT_FRACTION_BUCKETS,
    NULL_OBSERVABILITY,
    Observability,
)

__all__ = ["PrioritizedPacketLoss", "PPLDecision"]


@dataclass
class PPLDecision:
    """Outcome of one PPL check."""

    drop: bool
    reason: Optional[str] = None  # "watermark" | "overload_cutoff"


class PrioritizedPacketLoss:
    """The PPL drop policy.

    ``priority_levels`` is the number of levels currently in use; the
    kernel module raises it automatically when an application assigns a
    new, higher priority to a stream.
    """

    def __init__(
        self,
        base_threshold: float = 0.5,
        overload_cutoff: Optional[int] = None,
        priority_levels: int = 1,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
    ):
        if not 0.0 <= base_threshold < 1.0:
            raise ValueError("base_threshold must be in [0, 1)")
        if priority_levels < 1:
            raise ValueError("need at least one priority level")
        self._san = sanitizers
        self.base_threshold = base_threshold
        self.overload_cutoff = overload_cutoff
        self.priority_levels = priority_levels
        self.dropped_by_priority: Dict[int, int] = {}
        self.checked = 0
        self._obs = observability or NULL_OBSERVABILITY
        registry = self._obs.registry
        self._m_checks = registry.counter(
            "scap_ppl_checks_total", "PPL admission decisions evaluated"
        )
        self._m_drops = registry.counter(
            "scap_ppl_drops_total",
            "packets dropped by PPL, by priority and reason",
            labels=("priority", "reason"),
        )
        self._m_fraction = registry.histogram(
            "scap_ppl_memory_fraction",
            "stream-memory occupancy observed at each PPL check",
            bounds=DEFAULT_FRACTION_BUCKETS,
        )
        self._m_band = registry.gauge(
            "scap_ppl_band",
            "watermark band of the last check (0 = below base threshold)",
        )
        # Pre-resolved (priority, reason) drop counters: one dict hit on
        # first use, then the enabled path is a bare Counter.inc.
        self._drop_counters: Dict[Tuple[int, str], object] = {}
        self._band_width = (1.0 - self.base_threshold) / self.priority_levels
        # When batching, per-check metric updates are deferred: the
        # fraction samples queue up here and flush in one pass.
        self._batch_fractions: Optional[List[float]] = None

    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Defer per-check metrics until :meth:`end_batch`."""
        if self._obs.enabled:
            self._batch_fractions = []

    def end_batch(self) -> None:
        """Flush deferred check metrics; state-identical to per-check.

        The checks counter advances by the number of deferred checks,
        the fraction histogram sees the exact per-check samples, and
        the band gauge lands on the band of the last check — the same
        final value the per-check path leaves behind.
        """
        fractions = self._batch_fractions
        self._batch_fractions = None
        if fractions and self._obs.enabled:
            self._m_checks.inc(len(fractions))
            self._m_fraction.observe_many(fractions)
            self._m_band.set(self.band_index(fractions[-1]))

    def ensure_level(self, priority: int) -> None:
        """Grow the number of levels to cover ``priority``."""
        if priority + 1 > self.priority_levels:
            self.priority_levels = priority + 1
            self._band_width = (1.0 - self.base_threshold) / self.priority_levels

    def watermark(self, priority: int) -> float:
        """The memory fraction above which ``priority`` packets drop."""
        priority = min(max(priority, 0), self.priority_levels - 1)
        return self.base_threshold + (priority + 1) * self._band_width

    def band_index(self, fraction_used: float) -> int:
        """Which watermark band ``fraction_used`` falls in.

        0 means below the base threshold (nothing drops); ``k`` means
        the occupancy has crossed ``k`` of the equally spaced
        watermarks, so priorities ``0 .. k-1`` are dropping outright.
        """
        if fraction_used <= self.base_threshold:
            return 0
        crossed = int((fraction_used - self.base_threshold) / self._band_width)
        return min(crossed + 1, self.priority_levels)

    def check(
        self, fraction_used: float, priority: int, stream_offset: int
    ) -> PPLDecision:
        """Decide whether to drop a packet of ``priority`` whose payload
        would land at byte ``stream_offset`` of its stream."""
        self.checked += 1
        fractions = self._batch_fractions
        if fractions is not None:
            fractions.append(fraction_used)
        elif self._obs.enabled:
            self._m_checks.inc()
            self._m_fraction.observe(fraction_used)
            self._m_band.set(self.band_index(fraction_used))
        decision = self._decide(fraction_used, priority, stream_offset)
        if self._san is not None:
            self._san.ppl.on_check(self, fraction_used, priority, decision)
        return decision

    def _decide(
        self, fraction_used: float, priority: int, stream_offset: int
    ) -> PPLDecision:
        if fraction_used <= self.base_threshold:
            return PPLDecision(drop=False)
        mark = self.watermark(priority)
        band = self._band_width
        if fraction_used > mark:
            self._count(priority, "watermark")
            return PPLDecision(drop=True, reason="watermark")
        if (
            self.overload_cutoff is not None
            and fraction_used > mark - band
            and stream_offset >= self.overload_cutoff
        ):
            self._count(priority, "overload_cutoff")
            return PPLDecision(drop=True, reason="overload_cutoff")
        return PPLDecision(drop=False)

    def _count(self, priority: int, reason: str) -> None:
        self.dropped_by_priority[priority] = self.dropped_by_priority.get(priority, 0) + 1
        if self._obs.enabled:
            drop_counter = self._drop_counters.get((priority, reason))
            if drop_counter is None:
                drop_counter = self._m_drops.labels(priority, reason)
                self._drop_counters[(priority, reason)] = drop_counter
            drop_counter.inc()
