"""TCP stream reassembly (§2.3, §5.2).

One :class:`TCPDirectionReassembler` tracks a single direction of a TCP
connection.  It normalizes the segment stream — duplicates dropped,
out-of-order segments buffered, overlapping retransmissions resolved by
the stream's target-based *policy* — and emits bytes in stream order.

Two modes, as in the paper:

* ``SCAP_TCP_STRICT`` — bytes are only released in-sequence; holes
  (lost segments) stall delivery until they are filled, and data after
  an unfilled hole is delivered only at stream end, flagged.
* ``SCAP_TCP_FAST`` — best-effort: the engine follows strict semantics
  (retransmissions, reordering, overlaps) while it can, but when the
  out-of-order buffer exceeds a bound it *skips* the hole, delivers
  what it has, and flags the chunk (``had_hole``) instead of waiting —
  the property that makes Scap resilient to packet loss under overload.

Sequence numbers are converted to absolute stream offsets on entry
(wrap-safe via :func:`~repro.netstack.tcp.seq_diff`), so all interval
arithmetic below is plain integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netstack.tcp import seq_add, seq_diff
from ..observability import (
    HOOK_HOLE_SKIPPED,
    HOOK_OVERLAP_RESOLVED,
    NULL_OBSERVABILITY,
    Observability,
)
from .constants import SCAP_TCP_FAST, SCAP_TCP_STRICT, ReassemblyPolicy

__all__ = ["DeliveredData", "TCPDirectionReassembler", "ReassemblyCounters"]


@dataclass
class DeliveredData:
    """In-order bytes released by the reassembler.

    ``follows_hole`` marks data delivered immediately after a skipped
    hole (FAST mode), so the chunk it lands in can be flagged.
    """

    data: bytes
    follows_hole: bool = False


@dataclass
class ReassemblyCounters:
    """Normalization statistics for one direction."""

    segments: int = 0
    delivered_bytes: int = 0
    duplicate_bytes: int = 0
    conflicting_bytes: int = 0  # overlap bytes that differed between copies
    out_of_order_segments: int = 0
    holes_skipped: int = 0
    stalled_bytes_dropped: int = 0  # strict mode: bytes after a hole at EOF


@dataclass
class _Interval:
    start: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.start + len(self.data)


class TCPDirectionReassembler:
    """Reassembles one direction of a TCP stream."""

    def __init__(
        self,
        mode: int = SCAP_TCP_FAST,
        policy: str = ReassemblyPolicy.LINUX,
        fast_hole_bytes: int = 65536,
        fast_hole_segments: int = 64,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
        stream_label: Optional[str] = None,
    ):
        if mode not in (SCAP_TCP_STRICT, SCAP_TCP_FAST):
            raise ValueError(f"unknown reassembly mode: {mode}")
        self._san = sanitizers
        self.mode = mode
        self.policy = ReassemblyPolicy.validate(policy)
        self._fast_hole_bytes = fast_hole_bytes
        self._fast_hole_segments = fast_hole_segments
        self._expected_seq: Optional[int] = None  # wire seq of next expected byte
        self._expected_offset = 0  # absolute stream offset of next expected byte
        self._intervals: List[_Interval] = []  # sorted, non-overlapping OOO data
        self._buffered_bytes = 0
        self.counters = ReassemblyCounters()
        self.mid_stream = False
        self._obs = observability or NULL_OBSERVABILITY
        registry = self._obs.registry
        #: The stream's directional five-tuple string, attached to trace
        #: events so the flight recorder can attribute them (None for a
        #: reassembler constructed outside a stream context).
        self._stream_label = stream_label
        self._m_overlaps = registry.counter(
            "scap_reassembly_overlap_decisions_total",
            "overlapping-retransmission resolutions, by which copy won",
            labels=("winner",),
        )
        # Pre-resolved winner children (registry contract: no .labels()
        # lookups on the hot path).
        self._m_overlap_new = self._m_overlaps.labels("new")
        self._m_overlap_existing = self._m_overlaps.labels("existing")
        self._m_holes = registry.counter(
            "scap_reassembly_holes_skipped_total",
            "holes skipped by FAST-mode delivery",
        )
        self._m_ooo_depth = registry.histogram(
            "scap_reassembly_ooo_depth",
            "out-of-order buffer depth (intervals) after each insert",
            bounds=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        self._now = 0.0  # simulated time injected per on_segment/flush call

    # ------------------------------------------------------------------
    def set_isn(self, isn: int) -> None:
        """Anchor the stream at SYN: first data byte is ``isn + 1``."""
        self._expected_seq = seq_add(isn, 1)
        self._expected_offset = 0

    @property
    def anchored(self) -> bool:
        return self._expected_seq is not None

    @property
    def next_offset(self) -> int:
        """Stream offset of the next in-order byte to be delivered."""
        return self._expected_offset

    @property
    def expected_seq(self) -> Optional[int]:
        """Wire sequence number of the next expected byte (None before SYN)."""
        return self._expected_seq

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

    # ------------------------------------------------------------------
    def on_segment(self, seq: int, payload: bytes, now: float = 0.0) -> List[DeliveredData]:
        """Feed one data segment; return any bytes released in order.

        ``now`` is the simulated arrival time, used only to timestamp
        trace events when observability is enabled.
        """
        if not payload:
            return []
        self._now = now
        self.counters.segments += 1
        if self._expected_seq is None:
            # Mid-stream pickup (no SYN observed): anchor here.
            self._expected_seq = seq
            self._expected_offset = 0
            self.mid_stream = True
        offset = self._expected_offset + seq_diff(seq, self._expected_seq)
        end = offset + len(payload)

        if end <= self._expected_offset:
            # Entirely old: pure retransmission of delivered data.
            self.counters.duplicate_bytes += len(payload)
            return []
        if offset < self._expected_offset:
            # Partially old: the delivered prefix cannot be rewritten.
            trim = self._expected_offset - offset
            self.counters.duplicate_bytes += trim
            payload = payload[trim:]
            offset = self._expected_offset

        delivered: List[DeliveredData] = []
        if offset == self._expected_offset:
            delivered.append(DeliveredData(self._advance(payload)))
            if self._intervals:
                delivered.extend(self._drain_contiguous())
        else:
            self.counters.out_of_order_segments += 1
            self._insert_interval(offset, payload)
            if self.mode == SCAP_TCP_FAST and self._hole_pressure():
                delivered.extend(self._skip_hole())
        return delivered

    def flush(
        self, skip_holes: Optional[bool] = None, now: float = 0.0
    ) -> List[DeliveredData]:
        """Release remaining data at stream end.

        FAST mode (or ``skip_holes=True``) drains everything, flagging
        post-hole data; STRICT drops non-contiguous remainders and
        counts them in ``stalled_bytes_dropped``.
        """
        self._now = now
        if skip_holes is None:
            skip_holes = self.mode == SCAP_TCP_FAST
        delivered: List[DeliveredData] = []
        if skip_holes:
            while self._intervals:
                delivered.extend(self._skip_hole())
        else:
            self.counters.stalled_bytes_dropped += self._buffered_bytes
            self._intervals.clear()
            self._buffered_bytes = 0
        return delivered

    # ------------------------------------------------------------------
    def _advance(self, data: bytes) -> bytes:
        if self._san is not None:
            self._san.reassembly.on_deliver(
                self, self._expected_offset, self._expected_offset + len(data)
            )
        self._expected_offset += len(data)
        self._expected_seq = seq_add(self._expected_seq, len(data))
        self.counters.delivered_bytes += len(data)
        return data

    def _drain_contiguous(self) -> List[DeliveredData]:
        delivered: List[DeliveredData] = []
        while self._intervals and self._intervals[0].start <= self._expected_offset:
            interval = self._intervals.pop(0)
            self._buffered_bytes -= len(interval.data)
            skip = self._expected_offset - interval.start
            if skip >= len(interval.data):
                self.counters.duplicate_bytes += len(interval.data)
                continue
            if skip:
                self.counters.duplicate_bytes += skip
            delivered.append(DeliveredData(self._advance(bytes(interval.data[skip:]))))
        return delivered

    def _hole_pressure(self) -> bool:
        return (
            self._buffered_bytes > self._fast_hole_bytes
            or len(self._intervals) > self._fast_hole_segments
        )

    def _skip_hole(self) -> List[DeliveredData]:
        """Advance past the first hole and release what follows it."""
        if not self._intervals:
            return []
        first = self._intervals[0]
        assert first.start > self._expected_offset
        self.counters.holes_skipped += 1
        if self._obs.enabled:
            self._m_holes.inc()
            self._obs.trace.emit(
                self._now,
                HOOK_HOLE_SKIPPED,
                five_tuple=self._stream_label,
                hole_bytes=first.start - self._expected_offset,
                resume_offset=first.start,
            )
        self._expected_seq = seq_add(
            self._expected_seq, first.start - self._expected_offset
        )
        self._expected_offset = first.start
        delivered = self._drain_contiguous()
        if delivered:
            delivered[0].follows_hole = True
        return delivered

    # ------------------------------------------------------------------
    def _insert_interval(self, start: int, payload: bytes) -> None:
        """Insert out-of-order data, resolving overlaps per policy."""
        new = _Interval(start, bytearray(payload))
        merged: List[_Interval] = []
        for existing in self._intervals:
            if existing.end <= new.start or existing.start >= new.end:
                merged.append(existing)
                continue
            # Overlap: compare the conflicting region, keep per policy.
            overlap_start = max(existing.start, new.start)
            overlap_end = min(existing.end, new.end)
            exist_slice = existing.data[
                overlap_start - existing.start : overlap_end - existing.start
            ]
            new_slice = new.data[overlap_start - new.start : overlap_end - new.start]
            if exist_slice != new_slice:
                self.counters.conflicting_bytes += overlap_end - overlap_start
            new_wins = ReassemblyPolicy.new_segment_wins(
                self.policy, existing.start, new.start
            )
            if self._obs.enabled:
                winner = "new" if new_wins else "existing"
                winner_counter = (
                    self._m_overlap_new if new_wins else self._m_overlap_existing
                )
                winner_counter.inc()
                self._obs.trace.emit(
                    self._now,
                    HOOK_OVERLAP_RESOLVED,
                    five_tuple=self._stream_label,
                    winner=winner,
                    policy=self.policy,
                    start=overlap_start,
                    length=overlap_end - overlap_start,
                    conflicting=exist_slice != new_slice,
                )
            if not new_wins:
                # Existing bytes win: copy them into the new interval.
                new.data[overlap_start - new.start : overlap_end - new.start] = exist_slice
            self.counters.duplicate_bytes += overlap_end - overlap_start
            self._buffered_bytes -= len(existing.data)
            # Fold non-overlapping leftovers of the existing interval
            # into the new one so intervals stay non-overlapping.
            if existing.start < new.start:
                prefix = existing.data[: new.start - existing.start]
                new.data = prefix + new.data
                new.start = existing.start
            if existing.end > new.end:
                suffix = existing.data[new.end - existing.start :]
                new.data = new.data + suffix
        merged.append(new)
        merged.sort(key=lambda interval: interval.start)
        # Coalesce intervals that became contiguous.
        coalesced: List[_Interval] = []
        for interval in merged:
            if coalesced and coalesced[-1].end == interval.start:
                coalesced[-1].data += interval.data
            else:
                coalesced.append(interval)
        self._intervals = coalesced
        self._buffered_bytes = sum(len(interval.data) for interval in self._intervals)
        if self._obs.enabled:
            self._m_ooo_depth.observe(len(self._intervals))
        if self._san is not None:
            self._san.reassembly.on_intervals(
                self, self._intervals, self._expected_offset
            )
