"""Dynamic load balancing across cores (§2.4).

RSS spreads streams statically by hash; short-term imbalance (one core
handling far more streams than its share) hurts tail performance.  Scap
detects imbalance when a core holds more than ``threshold`` times its
fair share of active streams, and redirects *subsequent* new streams
assigned to that core — via FDIR steering filters — to the core
currently handling the fewest streams.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["LoadBalancer"]


class LoadBalancer:
    """Tracks per-core active stream counts and proposes redirections."""

    def __init__(self, core_count: int, threshold: float = 2.0):
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        self.core_count = core_count
        self.threshold = threshold
        self.counts: List[int] = [0] * core_count
        self.redirections = 0

    @property
    def total(self) -> int:
        return sum(self.counts)

    def on_stream_created(self, core: int) -> Optional[int]:
        """Register a new stream on ``core``; return a redirect target.

        Returns the least-loaded core if ``core`` is overloaded (more
        than ``threshold``× its fair share), else None.  The caller is
        responsible for installing the FDIR steering filters and for
        calling :meth:`moved` if it redirects.
        """
        self.counts[core] += 1
        total = self.total
        if total < self.core_count * 4:
            return None  # too few streams for "imbalance" to mean anything
        fair_share = total / self.core_count
        if self.counts[core] <= self.threshold * fair_share:
            return None
        target = min(range(self.core_count), key=lambda index: self.counts[index])
        if target == core:
            return None
        return target

    def moved(self, source: int, target: int) -> None:
        """Account a stream redirected from ``source`` to ``target``."""
        self.counts[source] -= 1
        self.counts[target] += 1
        self.redirections += 1

    def on_stream_terminated(self, core: int) -> None:
        """Account a stream ending on ``core``."""
        if self.counts[core] > 0:
            self.counts[core] -= 1
