"""Per-queue sharding: one capture pipeline per RX queue (§4.2).

The batched runtime amortizes per-packet overheads, but a single
Python interpreter still walks every queue's packets in one loop.  This
module shards the capture the way multi-queue hardware does: flows are
partitioned across ``shard_count`` RX queues with the NIC's *symmetric*
RSS hash (both directions of a connection land on the same queue), and
each shard runs a full, independent single-queue pipeline over its own
slice of the trace — its own kernel module, stream memory, and worker —
so shards can execute on separate host cores.

Determinism contract
--------------------
The merged result is a pure fold over the per-shard results **in
ascending shard order**, and each shard is a self-contained simulation
whose outcome depends only on its input slice.  Therefore the merged
output is bit-identical across executors (``serial``, ``thread``,
``process``) and across runs: parallel scheduling can reorder shard
*completion*, never the merge.  With ``shard_count=1`` the shard's
input is the whole trace and its replay rate is the requested rate, so
the run is exactly an unsharded single-queue capture.

Timeline fidelity
-----------------
:meth:`~repro.traffic.trace.Trace.replay` rescales timestamps by
``native_rate / target_rate``.  A shard's sub-trace carries fewer bytes
over the same span, so replaying it at the full target rate would
compress its timeline more than the unsharded run.  Each shard is
instead replayed at ``rate * shard_native / full_native`` — the same
uniform scale factor as the full trace — so packet interarrivals within
a shard match what that queue would have seen unsharded.

Stream memory is split evenly: the paper's single shared pool becomes
one pool per queue, as in a per-NUMA-node deployment; totals (and PPL
pressure) therefore differ from the unsharded run when shards fill
unevenly — sharding trades global memory sharing for parallelism.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..nic.rss import RSSHasher
from ..results import RunResult
from ..traffic.trace import FlowSpec, PlantedMatch, Trace

__all__ = [
    "BarrierJitter",
    "ShardOutcome",
    "ShardedResult",
    "ShardedCapture",
    "partition_trace",
]

EXECUTORS = ("serial", "thread", "process")


class BarrierJitter:
    """Seeded schedule perturbation around the shard merge barrier.

    Parallel executors may complete shards in any order; the merge must
    not care.  This harness *provokes* unlucky interleavings on demand:
    before waiting on shard ``i``'s future, the collecting thread sleeps
    a small delay derived deterministically from ``(seed, i)``, which
    skews which shards finish while others are still mid-flight.  The
    chaos soak drives it with varying seeds; any seed must produce a
    bit-identical merged result (and, under ``SCAP_RACE=1``, no race
    report).  Holds only plain ints/floats so it pickles cleanly
    alongside the process executor.
    """

    def __init__(self, seed: int, max_delay: float = 0.005):
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.seed = seed
        self.max_delay = max_delay

    def delay_for(self, index: int) -> float:
        """The exact delay applied before collecting shard ``index``."""
        return random.Random(self.seed * 1_000_003 + index).random() * self.max_delay

    def perturb(self, index: int) -> None:
        """Sleep the seeded delay for shard ``index``."""
        delay = self.delay_for(index)
        if delay > 0:
            time.sleep(delay)


def partition_trace(trace: Trace, shard_count: int) -> List[Trace]:
    """Split ``trace`` into per-queue sub-traces via symmetric RSS.

    Every packet of a connection (both directions) lands in the same
    shard; non-IP frames land in shard 0, mirroring the NIC's queue-0
    fallback.  Ground-truth flows are reindexed per shard so planted
    matches keep pointing at their flow.
    """
    if shard_count < 1:
        raise ValueError("need at least one shard")
    # A previous replay may have rescaled timestamps in place; slice on
    # the native timeline so sharding is independent of run history.
    trace.reset_timeline()
    hasher = RSSHasher(shard_count)
    packet_lists: List[List] = [[] for _ in range(shard_count)]
    for packet in trace.packets:
        five_tuple = packet.five_tuple
        shard = 0 if five_tuple is None else hasher.queue_for(five_tuple)
        packet_lists[shard].append(packet)
    flow_lists: List[List[FlowSpec]] = [[] for _ in range(shard_count)]
    for flow in trace.flows:
        shard = hasher.queue_for(flow.five_tuple)
        new_index = len(flow_lists[shard])
        flow_lists[shard].append(
            FlowSpec(
                index=new_index,
                five_tuple=flow.five_tuple,
                protocol=flow.protocol,
                client_bytes=flow.client_bytes,
                server_bytes=flow.server_bytes,
                start_time=flow.start_time,
                packet_count=flow.packet_count,
                planted=[
                    PlantedMatch(
                        new_index,
                        match.direction,
                        match.stream_offset,
                        match.pattern,
                    )
                    for match in flow.planted
                ],
            )
        )
    return [
        Trace(packet_lists[i], flow_lists[i], name=f"{trace.name}[shard{i}]")
        for i in range(shard_count)
    ]


@dataclass
class ShardOutcome:
    """One shard's run: its queue index and the pipeline's outputs."""

    index: int
    trace_name: str
    packets: int
    result: RunResult
    stats: Any  # ScapStats (typed loosely to keep the module picklable)


@dataclass
class ShardedResult:
    """A sharded capture's merged measurements plus per-shard detail."""

    result: RunResult
    stats: Any  # merged ScapStats
    shards: List[ShardOutcome] = field(default_factory=list)
    executor: str = "serial"

    @property
    def shard_count(self) -> int:
        return len(self.shards)


def _run_shard(
    index: int,
    shard_trace: Trace,
    rate_bps: float,
    memory_size: int,
    app_factory: Optional[Callable[[], Any]],
    socket_kwargs: Dict[str, Any],
    name: str,
) -> Tuple[int, RunResult, Any]:
    """Run one shard's pipeline; module-level so ``process`` can pickle it."""
    from ..apps import attach_app
    from .api import ScapSocket, scap_get_stats

    socket = ScapSocket(
        shard_trace,
        memory_size=memory_size,
        rate_bps=rate_bps,
        core_count=1,
        **socket_kwargs,
    )
    if app_factory is not None:
        attach_app(socket, app_factory())
    result = socket.start_capture(name=f"{name}-shard{index}")
    stats = scap_get_stats(socket)
    socket.close()
    return index, result, stats


class ShardedCapture:
    """Run one capture as ``shard_count`` independent per-queue pipelines.

    ``app_factory`` (optional) builds a fresh application per shard —
    each shard attaches its own instance, so apps need no locking.  For
    the ``process`` executor the factory, the trace, and all socket
    kwargs must be picklable.  ``socket_kwargs`` pass through to each
    shard's :class:`~repro.core.api.ScapSocket` (e.g. ``batch_size``,
    ``reassembly_mode``); ``core_count`` is fixed at 1 per shard — the
    shard *is* the queue.
    """

    def __init__(
        self,
        trace: Trace,
        shard_count: int,
        rate_bps: float,
        memory_size: int,
        executor: str = "serial",
        app_factory: Optional[Callable[[], Any]] = None,
        max_workers: Optional[int] = None,
        jitter: Optional[BarrierJitter] = None,
        **socket_kwargs: Any,
    ):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; pick one of {EXECUTORS}"
            )
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if memory_size < shard_count:
            raise ValueError("memory_size must cover at least one byte per shard")
        if "core_count" in socket_kwargs:
            raise ValueError("core_count is fixed at 1 per shard")
        self.trace = trace
        self.shard_count = shard_count
        self.rate_bps = rate_bps
        self.memory_size = memory_size
        self.executor = executor
        self.app_factory = app_factory
        self.max_workers = max_workers or shard_count
        self.jitter = jitter
        self.socket_kwargs = socket_kwargs

    # ------------------------------------------------------------------
    def _shard_rate(self, shard_trace: Trace) -> float:
        """The replay rate giving this shard the full trace's time scale."""
        full_native = self.trace.native_rate_bps
        shard_native = shard_trace.native_rate_bps
        if full_native in (0.0, float("inf")) or shard_native in (
            0.0,
            float("inf"),
        ):
            return self.rate_bps
        if shard_native == full_native:
            # The shard carries the whole trace (shard_count=1, or one
            # hot queue): return the requested rate exactly, not the
            # float-rounded identity product.
            return self.rate_bps
        return self.rate_bps * shard_native / full_native

    def _jobs(self) -> List[Tuple]:
        shards = partition_trace(self.trace, self.shard_count)
        per_shard_memory = self.memory_size // self.shard_count
        return [
            (
                index,
                shard_trace,
                self._shard_rate(shard_trace),
                per_shard_memory,
                self.app_factory,
                self.socket_kwargs,
            )
            for index, shard_trace in enumerate(shards)
        ]

    def run(self, name: str = "sharded") -> ShardedResult:
        """Run every shard under the configured executor and merge.

        Results are folded in ascending shard order regardless of
        completion order, so the merged output is identical across
        executors.
        """
        jobs = self._jobs()
        outputs: List[Optional[Tuple[int, RunResult, Any]]] = [None] * len(jobs)
        if self.executor == "serial":
            for job in jobs:
                out = _run_shard(*job[:6], name)
                outputs[out[0]] = out
        else:
            if self.executor == "thread":
                from concurrent.futures import ThreadPoolExecutor as Pool
            else:
                from concurrent.futures import ProcessPoolExecutor as Pool
            with Pool(max_workers=min(self.max_workers, len(jobs))) as pool:
                futures = [pool.submit(_run_shard, *job[:6], name) for job in jobs]
                for index, future in enumerate(futures):
                    if self.jitter is not None:
                        # Perturb which shards complete while the
                        # collector is busy elsewhere; the ascending
                        # merge below must be indifferent to it.
                        self.jitter.perturb(index)
                    out = future.result()
                    outputs[out[0]] = out
        shards = [
            ShardOutcome(
                index=index,
                trace_name=jobs[index][1].name,
                packets=len(jobs[index][1]),
                result=result,
                stats=stats,
            )
            for index, result, stats in outputs  # type: ignore[misc]
        ]
        shards.sort(key=lambda outcome: outcome.index)
        merged = _merge_results(
            [outcome.result for outcome in shards], self.rate_bps, name
        )
        stats = _merge_stats([outcome.stats for outcome in shards])
        return ShardedResult(
            result=merged, stats=stats, shards=shards, executor=self.executor
        )


# ----------------------------------------------------------------------
# Deterministic merges (ascending shard order throughout)
# ----------------------------------------------------------------------
_ADDITIVE_RESULT_FIELDS = (
    "offered_packets",
    "offered_bytes",
    "dropped_packets",
    "discarded_packets",
    "nic_filter_drops",
    "delivered_bytes",
    "delivered_events",
    "streams_created",
    "streams_delivered",
    "streams_lost",
    "streams_total_ground_truth",
    "matches_found",
    "matches_planted",
)


def _merge_dicts(parts: List[Dict]) -> Dict:
    """Key-wise sums with sorted keys, so dict order is deterministic."""
    keys = sorted({key for part in parts for key in part})
    return {
        key: sum(part.get(key, 0) for part in parts) for key in keys
    }


def _merge_results(
    results: List[RunResult], rate_bps: float, name: str
) -> RunResult:
    merged = RunResult(
        system=f"{name}[{len(results)} shards]",
        rate_bps=rate_bps,
        duration=max((r.duration for r in results), default=0.0),
    )
    for field_name in _ADDITIVE_RESULT_FIELDS:
        setattr(
            merged,
            field_name,
            sum(getattr(r, field_name) for r in results),
        )
    # Utilizations: duration-weighted means — a shard busy for its whole
    # (short) slice should not dominate the merged load figure.
    total_duration = sum(r.duration for r in results)
    if total_duration > 0:
        merged.user_utilization = (
            sum(r.user_utilization * r.duration for r in results) / total_duration
        )
        merged.softirq_load = (
            sum(r.softirq_load * r.duration for r in results) / total_duration
        )
    merged.memory_peak_fraction = max(
        (r.memory_peak_fraction for r in results), default=0.0
    )
    merged.packets_by_priority = _merge_dicts(
        [r.packets_by_priority for r in results]
    )
    merged.drops_by_priority = _merge_dicts([r.drops_by_priority for r in results])
    misses = [
        (r.cache_misses_per_packet, r.offered_packets)
        for r in results
        if r.cache_misses_per_packet is not None and r.offered_packets
    ]
    if misses:
        weight = sum(packets for _, packets in misses)
        merged.cache_misses_per_packet = (
            sum(value * packets for value, packets in misses) / weight
        )
    merged.extra = _merge_dicts([r.extra for r in results])
    return merged


def _merge_stats(parts: List[Any]) -> Any:
    """Sum a list of ScapStats field-wise (dicts key-wise, keys sorted)."""
    from .api import ScapStats

    merged = ScapStats()
    for stats_field in fields(ScapStats):
        first = getattr(merged, stats_field.name)
        if isinstance(first, dict):
            setattr(
                merged,
                stats_field.name,
                _merge_dicts([getattr(part, stats_field.name) for part in parts]),
            )
        else:
            setattr(
                merged,
                stats_field.name,
                sum(getattr(part, stats_field.name) for part in parts),
            )
    return merged
