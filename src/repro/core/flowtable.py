"""The kernel module's stream table (§5.2).

A hash table maps the canonical bidirectional five-tuple to a
:class:`StreamPair` — the two ``stream_t`` directions plus the
per-direction reassembly and chunking state.  An *access list* (here an
``OrderedDict``, which is exactly a hash table threaded onto an LRU
list) keeps streams sorted by last access so inactivity expiration pops
from the cold end in O(expired), as described in the paper.

There is no hard stream limit: records are allocated on demand.  When
an optional record budget is exhausted (modeling "no more free
memory"), the *oldest* stream is evicted to make room — Scap's policy
of always storing newer streams (§6.4).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..netstack.flows import CLIENT_TO_SERVER, SERVER_TO_CLIENT, FiveTuple
from ..sanitizers.race import race_detector_from_env
from .memory import ChunkAssembler
from .reassembly import TCPDirectionReassembler
from .stream import StreamDescriptor

__all__ = ["StreamPair", "FlowTable"]


@dataclass
class StreamPair:
    """Both directions of one connection plus their processing state."""

    key: FiveTuple  # canonical
    client: StreamDescriptor  # direction 0: as seen from the first packet
    server: StreamDescriptor  # direction 1
    last_access: float = 0.0
    core: int = 0

    # TCP connection-state tracking.
    syn_seen: bool = False
    synack_seen: bool = False
    established: bool = False
    fin_seen: Tuple[bool, bool] = (False, False)
    #: Both FINs observed; the connection terminates on the final ACK.
    closing: bool = False
    closed: bool = False

    reassemblers: Dict[int, TCPDirectionReassembler] = field(default_factory=dict)
    assemblers: Dict[int, ChunkAssembler] = field(default_factory=dict)

    # FDIR integration (§5.5).
    nic_filters_installed: bool = False
    filter_timeout_interval: float = 0.0
    #: Highest sequence number seen per direction, for estimating flow
    #: size from FIN/RST when data packets were dropped at the NIC.
    last_seq: Dict[int, int] = field(default_factory=dict)

    def descriptor(self, direction: int) -> StreamDescriptor:
        """The stream_t for one direction of the connection."""
        return self.client if direction == CLIENT_TO_SERVER else self.server

    def direction_of(self, five_tuple: FiveTuple) -> int:
        """Which direction a directional five-tuple corresponds to."""
        return CLIENT_TO_SERVER if five_tuple == self.client.five_tuple else SERVER_TO_CLIENT

    @property
    def both(self) -> Tuple[StreamDescriptor, StreamDescriptor]:
        return (self.client, self.server)


class FlowTable:  # scapcheck: single-owner
    """Hash table + LRU access list over :class:`StreamPair` records.

    Single-owner: only the kernel module mutates the table, from the
    (serialized) softirq path of the simulated host — no lock needed.
    """

    def __init__(self, max_streams: Optional[int] = None):
        self._table: "OrderedDict[FiveTuple, StreamPair]" = OrderedDict()
        self.max_streams = max_streams
        self.created_total = 0
        self.evicted_total = 0
        # Stream ids are allocated per table, not from the module-global
        # counter: ids must restart at 0 for every capture so that
        # id-derived decisions (worker affinity, store queue mapping)
        # are reproducible run over run within one process.
        self._ids = itertools.count()
        # SCAP_RACE=1: enforce the single-owner claim above at runtime.
        self._race = race_detector_from_env()
        self._race_token = (
            self._race.register("FlowTable") if self._race is not None else 0
        )

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[StreamPair]:
        return iter(self._table.values())

    # ------------------------------------------------------------------
    def get(self, five_tuple: FiveTuple) -> Optional[StreamPair]:
        """Find a pair by either direction's tuple, without touching LRU order."""
        return self._table.get(five_tuple.canonical())

    def touch(self, pair: StreamPair, now: float) -> None:
        """Refresh the pair's position in the access list."""
        pair.last_access = now
        self._table.move_to_end(pair.key)

    def lookup_or_create(
        self, five_tuple: FiveTuple, now: float
    ) -> Tuple[StreamPair, bool, List[StreamPair]]:
        """Find or create the pair for ``five_tuple``.

        Returns ``(pair, created, evicted)`` where ``evicted`` lists
        pairs removed to make room (the caller must emit their
        termination events).
        """
        if self._race is not None:
            self._race.check(self._race_token, op="lookup_or_create")
        key = five_tuple.canonical()
        pair = self._table.get(key)
        if pair is not None:
            self.touch(pair, now)
            return pair, False, []
        evicted: List[StreamPair] = []
        if self.max_streams is not None:
            while len(self._table) >= self.max_streams:
                _, victim = self._table.popitem(last=False)
                self.evicted_total += 1
                evicted.append(victim)
        client = StreamDescriptor(
            five_tuple=five_tuple,
            direction=CLIENT_TO_SERVER,
            protocol=five_tuple.protocol,
            stream_id=next(self._ids),
        )
        server = StreamDescriptor(
            five_tuple=five_tuple.reversed(),
            direction=SERVER_TO_CLIENT,
            protocol=five_tuple.protocol,
            stream_id=next(self._ids),
        )
        client.opposite = server
        server.opposite = client
        client.stats.start = server.stats.start = now
        pair = StreamPair(key=key, client=client, server=server, last_access=now)
        self._table[key] = pair
        self.created_total += 1
        return pair, True, evicted

    def remove(self, pair: StreamPair) -> None:
        """Drop a pair from the table (stream terminated)."""
        if self._race is not None:
            self._race.check(self._race_token, op="remove")
        self._table.pop(pair.key, None)

    # ------------------------------------------------------------------
    def expire_idle(self, now: float, default_timeout: float) -> List[StreamPair]:
        """Pop streams idle past their inactivity timeout.

        Scans from the cold end of the access list; stops at the first
        pair that is not even default-expired, so cost is proportional
        to the number of expirations.
        """
        if self._race is not None:
            self._race.check(self._race_token, op="expire_idle")
        expired: List[StreamPair] = []
        requeue: List[StreamPair] = []
        while self._table:
            key = next(iter(self._table))
            pair = self._table[key]
            idle = now - pair.last_access
            if idle <= default_timeout:
                break
            timeout = default_timeout
            overrides = [
                d.inactivity_timeout
                for d in pair.both
                if d.inactivity_timeout is not None
            ]
            if overrides:
                timeout = max(overrides)
            if idle > timeout:
                del self._table[key]
                expired.append(pair)
            else:
                # Default-expired but stream-timeout still running: move
                # it off the cold end so the scan can proceed.
                self._table.move_to_end(key)
                requeue.append(pair)
                if len(requeue) > 64:
                    break
        return expired

    def drain(self) -> List[StreamPair]:
        """Remove and return every pair (end of capture)."""
        if self._race is not None:
            self._race.check(self._race_token, op="drain")
        pairs = list(self._table.values())
        self._table.clear()
        return pairs
