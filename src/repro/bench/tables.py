"""Text tables for the experiment harness output."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..results import RunResult
from .scenarios import FigureSeries

__all__ = ["format_series", "Metric", "STANDARD_METRICS"]

Metric = Tuple[str, Callable[[RunResult], float], str]

STANDARD_METRICS: Sequence[Metric] = (
    ("drop%", lambda r: r.drop_rate * 100, "6.2f"),
    ("cpu%", lambda r: r.user_utilization * 100, "6.2f"),
    ("sirq%", lambda r: r.softirq_load * 100, "5.2f"),
)


def format_series(
    series: FigureSeries, metrics: Sequence[Metric] = STANDARD_METRICS
) -> str:
    """Render one figure's results: one block per metric, systems as
    columns, the sweep variable as rows — the same layout as the plots."""
    lines: List[str] = [f"== {series.figure} ({series.x_label}) =="]
    for note in series.notes:
        lines.append(f"   note: {note}")
    systems = series.systems()
    for metric_name, metric_fn, fmt in metrics:
        lines.append(f"-- {metric_name} --")
        header = f"{series.x_label:>16} " + " ".join(f"{s:>12}" for s in systems)
        lines.append(header)
        for x in series.xs():
            cells = []
            for system in systems:
                result = series.results.get((system, x))
                cells.append(
                    format(metric_fn(result), fmt).rjust(12) if result else " " * 12
                )
            lines.append(f"{x:>16g} " + " ".join(cells))
    return "\n".join(lines)
