"""Experiment harness: per-figure scenario runners and result records."""

from .cachestudy import (
    CacheStudyResult,
    pfpacket_misses_per_packet,
    scap_misses_per_packet,
)
from .results import RunResult
from .scenarios import (
    BenchScale,
    FigureSeries,
    fig03_flow_statistics,
    fig04_stream_delivery,
    fig05_concurrent_streams,
    fig06_pattern_matching,
    fig08_cutoff_sweep,
    fig09_ppl_priorities,
    fig10_max_lossfree_rate,
    fig10_worker_scaling,
    get_scale,
    run_baseline,
    run_scap,
)
from .tables import STANDARD_METRICS, format_series

__all__ = [
    "CacheStudyResult",
    "pfpacket_misses_per_packet",
    "scap_misses_per_packet",
    "RunResult",
    "BenchScale",
    "FigureSeries",
    "fig03_flow_statistics",
    "fig04_stream_delivery",
    "fig05_concurrent_streams",
    "fig06_pattern_matching",
    "fig08_cutoff_sweep",
    "fig09_ppl_priorities",
    "fig10_max_lossfree_rate",
    "fig10_worker_scaling",
    "get_scale",
    "run_baseline",
    "run_scap",
    "STANDARD_METRICS",
    "format_series",
]
