"""Re-export of :mod:`repro.results` for harness-local imports."""

from ..results import RunResult

__all__ = ["RunResult"]
