"""Cache-locality study — regenerates Fig 7 (§6.5.2).

Feeds the *address traces* of the three data paths through the same
set-associative cache simulator and reports L2 misses per packet:

* **PF_PACKET + user reassembly** (Libnids/Snort): the kernel writes
  each packet into the next slot of a huge shared ring; the user
  application reads it back much later (the ring backlog has evicted
  it) and copies the payload into a per-stream buffer scattered over
  the heap.  Snort additionally touches a larger per-session structure.
* **Scap**: the kernel writes payload directly into the stream's
  contiguous chunk block; the same core's worker reads the chunk soon
  after, while it is still cache-resident.

The study uses the real :class:`~repro.kernelsim.cache.CacheSimulator`
(with a next-line prefetcher) and a real generated trace; only the
*schedule* of user-side accesses is abstracted (a fixed ring backlog
instead of the full queueing model) to keep the measurement isolated
from load effects — exactly how the paper measures at a low,
uncontended rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..kernelsim.cache import CacheSimulator
from ..netstack.flows import FiveTuple
from ..netstack.packet import Packet
from ..traffic.trace import Trace

__all__ = ["CacheStudyResult", "pfpacket_misses_per_packet", "scap_misses_per_packet"]

_RING_BYTES = 512 * 1024 * 1024
_FLOW_TABLE_BASE = 1 << 40
_STREAM_HEAP_BASE = 1 << 41
_STRUCT_BASE = 1 << 42


@dataclass
class CacheStudyResult:
    system: str
    packets: int
    misses: int

    @property
    def misses_per_packet(self) -> float:
        return self.misses / self.packets if self.packets else 0.0


def _flow_slot(five_tuple: FiveTuple) -> int:
    """Simulated address of the flow's hash-table entry."""
    return _FLOW_TABLE_BASE + (hash(five_tuple.canonical()) % (1 << 20)) * 128


def pfpacket_misses_per_packet(
    trace: Trace,
    backlog_packets: int = 8192,
    session_struct_bytes: int = 0,
    cache: Optional[CacheSimulator] = None,
) -> CacheStudyResult:
    """Misses/packet for the PF_PACKET + user-level reassembly path.

    ``backlog_packets`` is the ring distance between the kernel's write
    and the user's read; ``session_struct_bytes`` adds Snort's extra
    per-packet session state (0 for Libnids).
    """
    cache = cache or CacheSimulator()
    ring_cursor = 0
    pending: Deque[Tuple[int, Packet]] = deque()
    stream_cursor: Dict[FiveTuple, int] = {}
    heap_cursor = _STREAM_HEAP_BASE
    struct_cursor = _STRUCT_BASE
    packets = 0

    def user_process(slot: int, packet: Packet) -> None:
        nonlocal heap_cursor, struct_cursor
        caplen = packet.wire_len
        # Read the packet back out of the ring (long since evicted).
        cache.access(slot, caplen, prefetch=True)
        five_tuple = packet.five_tuple
        if five_tuple is None:
            return
        cache.access(_flow_slot(five_tuple), 128)
        if session_struct_bytes:
            # Snort allocates/initializes per-packet decode structures
            # from a churning pool — effectively cold every packet.
            cache.access(struct_cursor, session_struct_bytes)
            struct_cursor += session_struct_bytes
            if struct_cursor > _STRUCT_BASE + (64 << 20):
                struct_cursor = _STRUCT_BASE
        if packet.payload:
            key = five_tuple.canonical()
            buffer_cursor = stream_cursor.get(key)
            if buffer_cursor is None:
                # Per-stream reassembly buffer, allocated from a heap
                # that interleaves across streams.
                buffer_cursor = heap_cursor
                heap_cursor += 256 * 1024
            # Copy payload from ring to the stream buffer.
            cache.access(buffer_cursor, len(packet.payload), prefetch=True)
            stream_cursor[key] = buffer_cursor + len(packet.payload)

    for packet in trace.packets:
        packets += 1
        caplen = packet.wire_len
        if ring_cursor + caplen > _RING_BYTES:
            ring_cursor = 0
        slot = ring_cursor
        ring_cursor += caplen
        # Kernel softirq: copy the frame into the ring.
        cache.access(slot, caplen, prefetch=True)
        pending.append((slot, packet))
        if len(pending) > backlog_packets:
            user_process(*pending.popleft())
    while pending:
        user_process(*pending.popleft())
    return CacheStudyResult(
        "snort" if session_struct_bytes else "libnids", packets, cache.misses
    )


def scap_misses_per_packet(
    trace: Trace,
    chunk_size: int = 16 * 1024,
    cache: Optional[CacheSimulator] = None,
) -> CacheStudyResult:
    """Misses/packet for Scap's in-kernel placement.

    The kernel writes each payload at the stream's current chunk
    offset; when a chunk fills, the worker on the same core reads it
    immediately — mostly still resident.
    """
    cache = cache or CacheSimulator()
    chunk_base: Dict[FiveTuple, int] = {}
    chunk_fill: Dict[FiveTuple, int] = {}
    next_block = _STREAM_HEAP_BASE
    packets = 0
    for packet in trace.packets:
        packets += 1
        five_tuple = packet.five_tuple
        if five_tuple is None:
            continue
        key = five_tuple.canonical()
        cache.access(_flow_slot(five_tuple), 128)
        if not packet.payload:
            continue
        base = chunk_base.get(key)
        if base is None:
            base = next_block
            next_block += chunk_size
            chunk_base[key] = base
            chunk_fill[key] = 0
        offset = chunk_fill[key]
        # Kernel writes the payload straight into the chunk block.
        cache.access(base + offset, len(packet.payload), prefetch=True)
        offset += len(packet.payload)
        if offset >= chunk_size:
            # Worker consumes the chunk right away, same core: most
            # lines are still resident, so this mostly hits.
            cache.access(base, chunk_size, prefetch=True)
            base = next_block
            next_block += chunk_size
            chunk_base[key] = base
            offset = 0
        chunk_fill[key] = offset
    # Final partial chunks are consumed at termination.
    for key, base in chunk_base.items():
        fill = chunk_fill.get(key, 0)
        if fill:
            cache.access(base, fill, prefetch=True)
    return CacheStudyResult("scap", packets, cache.misses)
