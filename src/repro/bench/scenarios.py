"""Shared experiment harness for the paper's figures.

Each ``fig*`` function regenerates one figure's series and returns a
:class:`FigureSeries`; the ``benchmarks/bench_fig*.py`` files print the
rows and assert the paper's qualitative claims.

Scaling: the paper replays a 46 GB trace through 512 MB (ring) / 1 GB
(stream memory) buffers for minutes per point.  We replay a generated
trace of a few tens of MB, so buffers are scaled to keep the
buffer-to-trace ratio comparable (see DESIGN.md §2); absolute rates are
therefore indicative, shapes are the claim.  ``BenchScale.from_env``
honours ``REPRO_BENCH_SCALE=small|standard``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import (
    FlowStatsApp,
    MonitorApp,
    PatternMatchApp,
    StreamDeliveryApp,
    attach_app,
    attach_app_packet_based,
)
from ..baselines import (
    LibnidsEngine,
    PcapBasedSystem,
    Stream5Engine,
    YAFEngine,
    YAF_SNAPLEN,
)
from ..core import ScapSocket
from ..matching import synthetic_web_attack_patterns
from ..traffic import ConcurrentStreamWorkload, Trace, campus_mix
from ..results import RunResult

__all__ = ["BenchScale", "FigureSeries", "get_scale"]

GBIT = 1e9


@dataclass(frozen=True)
class BenchScale:
    """Workload / sweep sizing for one harness run."""

    name: str = "small"
    flow_count: int = 600
    max_flow_bytes: int = 4_000_000
    pattern_count: int = 300
    plant_fraction: float = 0.5
    rates: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 2.0, 3.0, 4.0, 5.0, 5.5, 6.0)
    #: Buffer sizes as fractions of the trace's wire bytes (keeps the
    #: paper's buffer-to-trace ratio: 512 MB and 1 GB against 46 GB,
    #: scaled up because short traces have relatively larger bursts).
    ring_fraction: float = 0.05
    scap_memory_fraction: float = 0.10
    concurrent_stream_counts: Tuple[int, ...] = (10, 100, 1_000, 10_000, 30_000)
    concurrent_table_limit: int = 3_000  # baselines' scaled-down 10^6
    cutoffs: Tuple[int, ...] = (0, 1_024, 10_240, 102_400, 1_048_576, 4_194_304)
    worker_counts: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    seed: int = 5

    @classmethod
    def from_env(cls) -> "BenchScale":
        name = os.environ.get("REPRO_BENCH_SCALE", "small")
        if name == "standard":
            return cls(
                name="standard",
                flow_count=1_500,
                max_flow_bytes=8_000_000,
                pattern_count=2_120,
                concurrent_stream_counts=(10, 100, 1_000, 10_000, 100_000),
                concurrent_table_limit=30_000,
            )
        if name == "small":
            return cls()
        raise ValueError(f"unknown REPRO_BENCH_SCALE: {name!r}")


def get_scale() -> BenchScale:
    """The harness scale selected by REPRO_BENCH_SCALE."""
    return BenchScale.from_env()


@dataclass
class FigureSeries:
    """All runs regenerated for one figure, keyed by (system, x)."""

    figure: str
    x_label: str
    results: Dict[Tuple[str, float], RunResult] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add(self, system: str, x: float, result: RunResult) -> None:
        """Record one run at sweep position ``x``."""
        self.results[(system, x)] = result

    def systems(self) -> List[str]:
        """System names in first-seen order."""
        seen: List[str] = []
        for system, _ in self.results:
            if system not in seen:
                seen.append(system)
        return seen

    def xs(self) -> List[float]:
        """Sweep positions in first-seen order."""
        seen: List[float] = []
        for _, x in self.results:
            if x not in seen:
                seen.append(x)
        return seen

    def get(self, system: str, x: float) -> RunResult:
        """The run for ``system`` at sweep position ``x``."""
        return self.results[(system, x)]

    def column(self, system: str, metric: Callable[[RunResult], float]) -> List[float]:
        """One metric across the sweep for ``system``."""
        return [metric(self.results[(system, x)]) for x in self.xs()]


# ----------------------------------------------------------------------
# Workload caches (shared across figures within one process)
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _patterns(count: int) -> Tuple[bytes, ...]:
    return tuple(synthetic_web_attack_patterns(count))


@lru_cache(maxsize=4)
def _trace(scale: BenchScale, planted: bool) -> Trace:
    patterns = _patterns(scale.pattern_count) if planted else ()
    return campus_mix(
        flow_count=scale.flow_count,
        seed=scale.seed,
        patterns=patterns,
        plant_fraction=scale.plant_fraction if planted else 0.0,
        max_flow_bytes=scale.max_flow_bytes,
    )


def _buffers(scale: BenchScale, trace: Trace) -> Tuple[int, int]:
    wire = trace.total_wire_bytes
    ring = max(1 << 18, int(wire * scale.ring_fraction))
    memory = max(1 << 19, int(wire * scale.scap_memory_fraction))
    return ring, memory


# ----------------------------------------------------------------------
# Single-run helpers
# ----------------------------------------------------------------------
def run_scap(
    trace,
    rate_bps: float,
    app: MonitorApp,
    memory_size: int,
    name: str = "scap",
    cutoff: Optional[int] = None,
    worker_threads: int = 1,
    use_fdir: bool = True,
    overload_cutoff: Optional[int] = None,
    packet_based: bool = False,
    priority_rule: Optional[Callable] = None,
    max_streams: Optional[int] = None,
) -> RunResult:
    """One Scap run with the harness's standard knobs."""
    socket = ScapSocket(
        trace,
        rate_bps=rate_bps,
        memory_size=memory_size,
        need_pkts=1 if packet_based else 0,
        max_streams=max_streams,
    )
    socket.config.use_fdir = use_fdir
    if cutoff is not None:
        socket.set_cutoff(cutoff)
    if overload_cutoff is not None:
        socket.set_parameter("overload_cutoff", overload_cutoff)
    if worker_threads != 1:
        socket.set_worker_threads(worker_threads)
    if packet_based:
        attach_app_packet_based(socket, app)
    else:
        attach_app(socket, app)
    if priority_rule is not None:
        base_creation = socket._callbacks["creation"]

        def on_creation(stream):
            priority_rule(socket, stream)
            if base_creation is not None:
                base_creation(stream)

        socket.dispatch_creation(
            on_creation, cost=socket._cost_hooks["creation"]
        )
    result = socket.start_capture(name=name)
    _merge_app(result, app, trace)
    return result


def run_baseline(
    engine_factory: Callable[[MonitorApp], object],
    trace,
    rate_bps: float,
    app: MonitorApp,
    ring_bytes: int,
    name: str,
    snaplen: int = 65535,
) -> RunResult:
    """One PF_PACKET-based baseline run with the harness's knobs."""
    system = PcapBasedSystem(
        engine_factory(app), name=name, ring_bytes=ring_bytes, snaplen=snaplen
    )
    result = system.run(trace, rate_bps)
    _merge_app(result, app, trace)
    return result


def _merge_app(result: RunResult, app: MonitorApp, trace) -> None:
    """Join app-level functional results and trace ground truth."""
    result.matches_found = getattr(app, "matches_found", 0)
    flows = getattr(trace, "flows", [])
    planted = getattr(trace, "planted_matches", None)
    result.matches_planted = len(planted) if planted is not None else 0
    with_data = {five_tuple.canonical() for five_tuple in app.streams_with_data}
    ground = [flow for flow in flows if flow.total_bytes > 0]
    result.streams_total_ground_truth = len(ground)
    result.streams_delivered = sum(
        1 for flow in ground if flow.five_tuple.canonical() in with_data
    )
    result.streams_lost = result.streams_total_ground_truth - result.streams_delivered


# ----------------------------------------------------------------------
# Figure experiments
# ----------------------------------------------------------------------
def fig03_flow_statistics(scale: Optional[BenchScale] = None) -> FigureSeries:
    """Fig 3: flow-export for YAF / Libnids / Scap ±FDIR vs rate."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=False)
    ring, memory = _buffers(scale, trace)
    series = FigureSeries("fig03", "rate_gbps")
    for rate in scale.rates:
        rate_bps = rate * GBIT
        series.add(
            "yaf",
            rate,
            run_baseline(
                lambda app: YAFEngine(app), trace, rate_bps, FlowStatsApp(),
                ring, "yaf", snaplen=YAF_SNAPLEN,
            ),
        )
        series.add(
            "libnids",
            rate,
            run_baseline(
                lambda app: LibnidsEngine(app), trace, rate_bps, FlowStatsApp(),
                ring, "libnids",
            ),
        )
        series.add(
            "scap",
            rate,
            run_scap(trace, rate_bps, FlowStatsApp(), memory, name="scap",
                     cutoff=0, use_fdir=False),
        )
        series.add(
            "scap-fdir",
            rate,
            run_scap(trace, rate_bps, FlowStatsApp(), memory, name="scap-fdir",
                     cutoff=0, use_fdir=True),
        )
    return series


def fig04_stream_delivery(scale: Optional[BenchScale] = None) -> FigureSeries:
    """Fig 4: deliver all streams, no processing."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=False)
    ring, memory = _buffers(scale, trace)
    series = FigureSeries("fig04", "rate_gbps")
    for rate in scale.rates:
        rate_bps = rate * GBIT
        series.add(
            "libnids", rate,
            run_baseline(lambda app: LibnidsEngine(app), trace, rate_bps,
                         StreamDeliveryApp(), ring, "libnids"),
        )
        series.add(
            "snort", rate,
            run_baseline(lambda app: Stream5Engine(app), trace, rate_bps,
                         StreamDeliveryApp(), ring, "snort"),
        )
        series.add(
            "scap", rate,
            run_scap(trace, rate_bps, StreamDeliveryApp(), memory, name="scap"),
        )
    return series


def fig05_concurrent_streams(scale: Optional[BenchScale] = None) -> FigureSeries:
    """Fig 5: 10^1..10^5 concurrent streams at a fixed 1 Gbit/s.

    The baselines' flow tables are capped at ``concurrent_table_limit``
    (the paper's ~10^6 scaled down with the workload; see DESIGN.md).
    """
    scale = scale or get_scale()
    series = FigureSeries("fig05", "concurrent_streams")
    series.notes.append(
        f"baseline flow-table limit scaled to {scale.concurrent_table_limit}"
    )
    for count in scale.concurrent_stream_counts:
        workload = ConcurrentStreamWorkload(count, data_packets=8)
        rate_bps = 1.0 * GBIT
        ring = max(1 << 18, int(workload.total_wire_bytes * scale.ring_fraction))
        memory = max(1 << 19, int(workload.total_wire_bytes * scale.scap_memory_fraction))
        limit = scale.concurrent_table_limit
        result = run_baseline(
            lambda app: LibnidsEngine(app, max_streams=limit),
            workload, rate_bps, StreamDeliveryApp(), ring, "libnids",
        )
        result.streams_total_ground_truth = count
        result.streams_lost = int(result.extra["streams_rejected_table_full"])
        series.add("libnids", count, result)
        result = run_baseline(
            lambda app: Stream5Engine(app, max_streams=limit),
            workload, rate_bps, StreamDeliveryApp(), ring, "snort",
        )
        result.streams_total_ground_truth = count
        result.streams_lost = int(result.extra["streams_rejected_table_full"])
        series.add("snort", count, result)
        result = run_scap(workload, rate_bps, StreamDeliveryApp(), memory, name="scap")
        result.streams_total_ground_truth = count
        result.streams_lost = max(0, count - result.streams_created)
        series.add("scap", count, result)
    return series


def fig06_pattern_matching(scale: Optional[BenchScale] = None) -> FigureSeries:
    """Fig 6: pattern matching, incl. the Scap packet-delivery variant."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=True)
    patterns = list(_patterns(scale.pattern_count))
    ring, memory = _buffers(scale, trace)
    series = FigureSeries("fig06", "rate_gbps")
    for rate in scale.rates:
        rate_bps = rate * GBIT
        series.add(
            "libnids", rate,
            run_baseline(lambda app: LibnidsEngine(app), trace, rate_bps,
                         PatternMatchApp.for_trace(trace, patterns), ring, "libnids"),
        )
        series.add(
            "snort", rate,
            run_baseline(lambda app: Stream5Engine(app), trace, rate_bps,
                         PatternMatchApp.for_trace(trace, patterns), ring, "snort"),
        )
        series.add(
            "scap", rate,
            run_scap(trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
                     memory, name="scap", overload_cutoff=16 * 1024),
        )
        series.add(
            "scap-pkts", rate,
            run_scap(trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
                     memory, name="scap-pkts", overload_cutoff=16 * 1024,
                     packet_based=True),
        )
    return series


def fig08_cutoff_sweep(
    scale: Optional[BenchScale] = None, rate_gbps: float = 4.0
) -> FigureSeries:
    """Fig 8: stream-cutoff sweep at a fixed (overload) rate."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=True)
    patterns = list(_patterns(scale.pattern_count))
    ring, memory = _buffers(scale, trace)
    rate_bps = rate_gbps * GBIT
    series = FigureSeries("fig08", "cutoff_bytes")
    for cutoff in scale.cutoffs:
        series.add(
            "libnids", cutoff,
            run_baseline(
                lambda app, c=cutoff: LibnidsEngine(app, cutoff=c),
                trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
                ring, "libnids",
            ),
        )
        series.add(
            "snort", cutoff,
            run_baseline(
                lambda app, c=cutoff: Stream5Engine(app, cutoff=c),
                trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
                ring, "snort",
            ),
        )
        series.add(
            "scap", cutoff,
            run_scap(trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
                     memory, name="scap", cutoff=cutoff, use_fdir=False),
        )
        series.add(
            "scap-fdir", cutoff,
            run_scap(trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
                     memory, name="scap-fdir", cutoff=cutoff, use_fdir=True),
        )
    return series


def fig09_ppl_priorities(scale: Optional[BenchScale] = None) -> FigureSeries:
    """Fig 9: PPL with port-80 streams as the high-priority class."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=True)
    patterns = list(_patterns(scale.pattern_count))
    _, memory = _buffers(scale, trace)
    series = FigureSeries("fig09", "rate_gbps")

    # The paper marks port-80 streams high priority — 8.4 % of its
    # campus packets.  Web traffic dominates our synthetic mix, so the
    # equivalent minority class here is the interactive/mail port set
    # (~10 % of packets); the experiment's point is a small privileged
    # class, not the specific port number.
    high_priority_ports = {22, 25, 110}

    def prioritize_web(socket: ScapSocket, stream) -> None:
        ports = {stream.five_tuple.src_port, stream.five_tuple.dst_port}
        if ports & high_priority_ports:
            socket.set_stream_priority(stream, 1)

    for rate in scale.rates:
        rate_bps = rate * GBIT
        # Same single-worker pattern-matching application as §6.7, so
        # the system actually overloads beyond ~1 Gbit/s.
        result = run_scap(
            trace, rate_bps, PatternMatchApp.for_trace(trace, patterns),
            memory, name="scap-ppl", priority_rule=prioritize_web,
        )
        series.add("scap-ppl", rate, result)
    return series


def fig10_worker_scaling(
    scale: Optional[BenchScale] = None,
    drop_rates_at: Tuple[float, ...] = (2.0, 4.0, 6.0),
) -> FigureSeries:
    """Fig 10: pattern matching with 1..8 worker threads."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=True)
    patterns = list(_patterns(scale.pattern_count))
    _, memory = _buffers(scale, trace)
    series = FigureSeries("fig10", "worker_threads")
    for workers in scale.worker_counts:
        for rate in drop_rates_at:
            result = run_scap(
                trace, rate * GBIT,
                PatternMatchApp.for_trace(trace, patterns),
                memory, name=f"scap-{rate:g}G", worker_threads=workers,
            )
            series.add(f"scap-{rate:g}G", workers, result)
    return series


def fig10_max_lossfree_rate(
    scale: Optional[BenchScale] = None,
    rate_grid: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0),
    loss_threshold: float = 0.005,
) -> Dict[int, float]:
    """Fig 10(b): the highest grid rate each worker count survives."""
    scale = scale or get_scale()
    trace = _trace(scale, planted=True)
    patterns = list(_patterns(scale.pattern_count))
    _, memory = _buffers(scale, trace)
    best: Dict[int, float] = {}
    for workers in scale.worker_counts:
        best[workers] = 0.0
        for rate in rate_grid:
            result = run_scap(
                trace, rate * GBIT,
                PatternMatchApp.for_trace(trace, patterns),
                memory, name="scap", worker_threads=workers,
            )
            if result.drop_rate <= loss_threshold:
                best[workers] = rate
            else:
                break
    return best
