"""Chaos soak: run the full pipeline under a fault plan, assert invariants.

The harness builds a fully deterministic TCP workload whose payload is
*self-describing*: every stream is a sequence of fixed-size 16-byte
records ``(magic, flow, direction, index)`` and every segment, chunk,
and cutoff boundary is record-aligned.  That turns the paper's graceful
-degradation claim into checkable invariants — whatever subset of the
traffic survives the injected faults, each delivered chunk must parse
into valid records for the right stream with strictly increasing
indices (prefix-consistent, in-order subset delivery), with no
``InvariantViolation`` escaping the enabled sanitizers, the injected
fault counts reconciling exactly against the observed drop counters,
and (when only the pressure plane is active) lower-priority streams
degrading before higher-priority ones.

This module deliberately lives outside the package ``__init__`` —
it drives :mod:`repro.core`, which imports :mod:`repro.faultinject`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import Parameter, ScapStats, scap_create, scap_get_stats, scap_start_capture
from ..netstack.packet import Packet, make_tcp_packet
from ..netstack.tcp import TCPFlags
from ..results import RunResult
from ..sanitizers import SanitizerContext
from ..traffic.trace import Trace
from .plan import FaultPlan

__all__ = ["SoakReport", "build_soak_trace", "run_chaos_soak", "RECORD_SIZE"]

#: One self-describing payload record: magic, flow, direction, index.
RECORD_SIZE = 16
_RECORD = struct.Struct("!IIII")
_MAGIC = 0x5CA9BEEF

_CLIENT_IP_BASE = 0x0A000001
_SERVER_IP_BASE = 0x0B000001
_CLIENT_PORT_BASE = 40000
_SERVER_PORT_BASE = 8000
_PRIORITY_LEVELS = 3


def _flow_priority(flow: int) -> int:
    return flow % _PRIORITY_LEVELS


def _records_blob(flow: int, direction: int, start: int, count: int) -> bytes:
    return b"".join(
        _RECORD.pack(_MAGIC, flow, direction, start + index)
        for index in range(count)
    )


def build_soak_trace(
    flows: int = 24,
    records_per_direction: int = 48,
    records_per_segment: int = 4,
    start_spacing: float = 0.0004,
    packet_spacing: float = 0.00002,
) -> Trace:
    """A deterministic workload of record-structured TCP connections.

    Each flow performs a proper handshake, sends
    ``records_per_direction`` records in each direction in
    record-aligned segments, and closes with FINs.  Everything —
    addresses, ports, sequence numbers, timestamps, payload — is a pure
    function of the arguments, so the same call always produces the
    same trace (a precondition for the determinism contract).
    """
    if flows < 1 or records_per_direction < 1 or records_per_segment < 1:
        raise ValueError("flows, records, and segment size must be positive")
    packets: List[Packet] = []
    for flow in range(flows):
        client_ip = _CLIENT_IP_BASE + flow
        server_ip = _SERVER_IP_BASE + (flow % 7)
        client_port = _CLIENT_PORT_BASE + flow
        server_port = _SERVER_PORT_BASE + flow
        client_isn = 1000 + flow
        server_isn = 500000 + flow
        now = flow * start_spacing

        def c2s(**kwargs) -> Packet:
            return make_tcp_packet(
                client_ip, client_port, server_ip, server_port, **kwargs
            )

        def s2c(**kwargs) -> Packet:
            return make_tcp_packet(
                server_ip, server_port, client_ip, client_port, **kwargs
            )

        packets.append(
            c2s(seq=client_isn, flags=TCPFlags.SYN, timestamp=now)
        )
        now += packet_spacing
        packets.append(
            s2c(
                seq=server_isn, ack=client_isn + 1,
                flags=TCPFlags.SYN | TCPFlags.ACK, timestamp=now,
            )
        )
        now += packet_spacing
        # Record-aligned data segments, alternating directions.
        total = records_per_direction
        sent = [0, 0]  # records sent per direction
        offsets = [0, 0]  # byte offsets per direction
        isns = (client_isn, server_isn)
        makers = (c2s, s2c)
        while sent[0] < total or sent[1] < total:
            for direction in (0, 1):
                if sent[direction] >= total:
                    continue
                count = min(records_per_segment, total - sent[direction])
                blob = _records_blob(flow, direction, sent[direction], count)
                packets.append(
                    makers[direction](
                        seq=isns[direction] + 1 + offsets[direction],
                        flags=TCPFlags.ACK | TCPFlags.PSH,
                        payload=blob,
                        timestamp=now,
                    )
                )
                sent[direction] += count
                offsets[direction] += len(blob)
                now += packet_spacing
        packets.append(
            c2s(
                seq=client_isn + 1 + offsets[0],
                flags=TCPFlags.FIN | TCPFlags.ACK, timestamp=now,
            )
        )
        now += packet_spacing
        packets.append(
            s2c(
                seq=server_isn + 1 + offsets[1],
                flags=TCPFlags.FIN | TCPFlags.ACK, timestamp=now,
            )
        )
    return Trace(packets, name="chaos-soak")


@dataclass
class SoakReport:
    """The outcome of one chaos soak run."""

    plan: FaultPlan
    ok: bool = True
    failures: List[str] = field(default_factory=list)
    schedule_digest: str = ""
    #: The formatted fault schedule (one line per injected fault).
    schedule: List[str] = field(default_factory=list)
    stats: Optional[ScapStats] = None
    result: Optional[RunResult] = None
    faults_injected: Dict[str, int] = field(default_factory=dict)
    delivered_streams: int = 0
    delivered_records: int = 0
    #: Per-priority (packets, ppl+memory drops) from the kernel counters.
    per_priority: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    store_segments_read: int = 0
    store_segments_torn: int = 0

    def fail(self, message: str) -> None:
        """Record one invariant violation."""
        self.ok = False
        self.failures.append(message)

    def summary(self) -> str:
        """One human-readable block (CLI output)."""
        lines = [
            f"chaos soak: {'PASS' if self.ok else 'FAIL'}",
            f"  injected: {self.faults_injected or '{}'}",
            f"  streams delivered: {self.delivered_streams} "
            f"({self.delivered_records} records)",
        ]
        if self.stats is not None:
            lines.append(
                f"  pkts received={self.stats.pkts_received} "
                f"dropped={self.stats.pkts_dropped} "
                f"discarded={self.stats.pkts_discarded}"
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


class _Collector:
    """Accumulates delivered chunks per stream, in delivery order."""

    def __init__(self) -> None:
        self.chunks: Dict[str, List[Tuple[int, bytes]]] = {}

    def on_data(self, stream) -> None:
        self.chunks.setdefault(str(stream.five_tuple), []).append(
            (stream.data_offset, bytes(stream.data))
        )


def run_chaos_soak(
    plan: FaultPlan,
    flows: int = 24,
    records_per_direction: int = 48,
    memory_size: int = 64 << 20,
    chunk_size: int = 256,
    store_dir: Optional[str] = None,
    observability=None,
) -> SoakReport:
    """Run the pipeline under ``plan`` with sanitizers on; verify invariants.

    ``store_dir`` additionally attaches a stream store (exercising the
    store fault plane) and verifies that every produced segment —
    including torn ones — reads back through the recovery path.
    """
    plan.validate()
    report = SoakReport(plan=plan)
    trace = build_soak_trace(flows=flows, records_per_direction=records_per_direction)
    sanitizers = SanitizerContext(observability)
    collector = _Collector()

    sc = scap_create(
        trace,
        memory_size=memory_size,
        rate_bps=trace.native_rate_bps,
        fault_plan=plan,
        sanitizers=sanitizers,
        observability=observability,
    )
    sc.set_parameter(Parameter.CHUNK_SIZE, chunk_size)
    sc.set_parameter(Parameter.OVERLAP_SIZE, 0)

    def on_creation(stream) -> None:
        # The server port encodes the flow index; priority derives from it.
        flow = stream.five_tuple.dst_port - _SERVER_PORT_BASE
        if 0 <= flow < flows:
            sc.set_stream_priority(stream, _flow_priority(flow))

    sc.dispatch_creation(on_creation)
    sc.dispatch_data(collector.on_data)

    recorder = None
    if store_dir is not None:
        from ..apps.recorder import StreamRecorder
        from ..store.store import StreamStore

        store = StreamStore(store_dir, cores=2, segment_bytes=8192)
        recorder = StreamRecorder(store)
        sc.set_store(recorder)

    try:
        report.result = scap_start_capture(sc)
    except Exception as error:  # the soak's whole point: nothing may escape
        report.fail(f"pipeline raised {type(error).__name__}: {error}")
        return report

    report.stats = scap_get_stats(sc)
    injector = sc.fault_injector
    if injector is not None:
        report.schedule_digest = injector.schedule_digest()
        report.schedule = [record.format() for record in injector.schedule]
        report.faults_injected = injector.counts_by_key()

    _check_delivery(report, collector, flows)
    _check_reconciliation(report, sc, trace)
    _check_priority_degradation(report, sc)
    if recorder is not None:
        _check_store(report, sc, recorder, store_dir)
    sc.close()
    return report


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def _check_delivery(report: SoakReport, collector: _Collector, flows: int) -> None:
    """Delivered bytes must be an in-order, record-aligned subset."""
    wire = report.plan.wire
    verify_payload = wire.corrupt_rate == 0.0 and wire.truncate_rate == 0.0
    report.delivered_streams = len(collector.chunks)
    for key, chunks in collector.chunks.items():
        previous_end = -1
        last_index = -1
        flow = direction = None
        for offset, data in chunks:
            if offset < previous_end:
                report.fail(
                    f"{key}: chunk at offset {offset} overlaps previous "
                    f"delivery ending at {previous_end}"
                )
                break
            previous_end = offset + len(data)
            if not verify_payload:
                continue
            if len(data) % RECORD_SIZE:
                report.fail(
                    f"{key}: delivered chunk of {len(data)} bytes is not "
                    f"record-aligned"
                )
                break
            for start in range(0, len(data), RECORD_SIZE):
                magic, rec_flow, rec_dir, index = _RECORD.unpack_from(data, start)
                if magic != _MAGIC or not 0 <= rec_flow < flows:
                    report.fail(f"{key}: corrupt record at offset {offset + start}")
                    break
                if flow is None:
                    flow, direction = rec_flow, rec_dir
                elif (rec_flow, rec_dir) != (flow, direction):
                    report.fail(
                        f"{key}: record from stream {rec_flow}/{rec_dir} "
                        f"delivered into stream {flow}/{direction}"
                    )
                    break
                if index <= last_index:
                    report.fail(
                        f"{key}: record index {index} not increasing "
                        f"(previous {last_index}) — delivery is not "
                        f"prefix-consistent"
                    )
                    break
                last_index = index
                report.delivered_records += 1
            else:
                continue
            break


def _check_reconciliation(report: SoakReport, sc, trace: Trace) -> None:
    """Injected fault counts must reconcile exactly with observed stats."""
    injector = sc.fault_injector
    if injector is None:
        return
    runtime = sc.runtime
    checks = [
        (
            "wire.fcs_corrupt",
            injector.count("wire", "fcs_corrupt"),
            runtime.nic.stats.fcs_errors,
        ),
        (
            "memory.alloc_failure",
            injector.count("memory", "alloc_failure"),
            runtime.kernel.memory.injected_failures,
        ),
        (
            "sched.backpressure",
            injector.count("sched", "backpressure"),
            runtime.workers.events_dropped_injected,
        ),
        (
            "offered packets",
            len(trace)
            - injector.count("wire", "drop")
            + injector.count("wire", "duplicate"),
            runtime.packets_offered,
        ),
    ]
    for name, injected, observed in checks:
        if injected != observed:
            report.fail(
                f"reconciliation: {name} injected={injected} observed={observed}"
            )
    if report.stats is not None:
        if report.stats.faults_injected_total != injector.total_injected:
            report.fail("scap_get_stats faults_injected_total disagrees with injector")


def _check_priority_degradation(report: SoakReport, sc) -> None:
    """Lower-priority streams must degrade before higher-priority ones.

    The PPL drops every packet whose stream priority sits below the
    current watermark, so over any run the set of priorities that saw
    PPL drops must be *downward-closed*: drops at priority ``p`` imply
    drops at every lower priority that carried traffic.  We assert that
    plus a rate comparison between the extremes.  (Adjacent-priority
    rate comparisons are deliberately avoided: priorities are assigned
    by the creation callback, which runs asynchronously, so a stream's
    first packets are attributed to the default priority 0.)

    Only enforced for plans where PPL pressure is the sole loss source
    (pressure boost on; allocation failures and event backpressure off),
    since those two planes drop blindly with respect to priority.
    """
    plan = report.plan
    counters = sc.runtime.kernel.counters
    for priority in counters.packets_by_priority:
        report.per_priority[priority] = (
            counters.packets_by_priority.get(priority, 0),
            counters.ppl_drops_by_priority.get(priority, 0),
        )
    if not (
        plan.memory.pressure_boost > 0.0
        and plan.memory.alloc_failure_rate == 0.0
        and plan.sched.backpressure_rate == 0.0
    ):
        return
    minimum_sample = 40
    tolerance = 0.05
    sampled = {
        priority: (packets, drops)
        for priority, (packets, drops) in report.per_priority.items()
        if packets >= minimum_sample
    }
    for priority, (_packets, drops) in sampled.items():
        if drops == 0:
            continue
        for lower in sampled:
            if lower < priority and sampled[lower][1] == 0:
                report.fail(
                    f"priority inversion: priority {priority} saw {drops} "
                    f"PPL drops while lower priority {lower} saw none"
                )
    if len(sampled) >= 2:
        lowest, highest = min(sampled), max(sampled)
        rate_low = sampled[lowest][1] / sampled[lowest][0]
        rate_high = sampled[highest][1] / sampled[highest][0]
        if rate_low + tolerance < rate_high:
            report.fail(
                f"priority inversion: priority {lowest} lost "
                f"{rate_low:.3f} of its packets but higher priority "
                f"{highest} lost {rate_high:.3f}"
            )


def _check_store(report: SoakReport, sc, recorder, store_dir: str) -> None:
    """Store-plane faults must reconcile; every segment must read back."""
    import glob
    import os

    from ..store.segment import read_segment

    injector = sc.fault_injector
    writer = recorder.store.writer
    sc.close()  # seals segments (idempotent with the caller's close)
    if injector is not None:
        if writer.write_errors != injector.count("store", "write_error"):
            report.fail(
                f"store write errors: writer={writer.write_errors} "
                f"injected={injector.count('store', 'write_error')}"
            )
        if writer.segments_torn != injector.count("store", "torn_write"):
            report.fail(
                f"torn segments: writer={writer.segments_torn} "
                f"injected={injector.count('store', 'torn_write')}"
            )
    report.store_segments_torn = writer.segments_torn
    torn_seen = 0
    for path in sorted(glob.glob(os.path.join(store_dir, "seg-*.scap"))):
        try:
            _records, info = read_segment(path)
        except Exception as error:
            report.fail(f"segment {os.path.basename(path)} unreadable: {error}")
            continue
        report.store_segments_read += 1
        if not info.sealed:
            torn_seen += 1
    if torn_seen < writer.segments_torn:
        report.fail(
            f"only {torn_seen} unsealed segments on disk but "
            f"{writer.segments_torn} torn writes were injected"
        )
