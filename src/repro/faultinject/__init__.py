"""Deterministic fault injection for the capture pipeline.

Five fault *planes* — wire, memory, store, scheduling, client — driven
by one seeded :class:`FaultPlan` and applied by a :class:`FaultInjector`
threaded through the runtime via ``scap_create(..., fault_plan=)``
(the client plane is driven by the service daemon instead; see
:mod:`repro.service`).
Same plan + same workload ⇒ byte-identical fault schedule (see
``docs/FAULT_INJECTION.md``).

The chaos soak harness lives in :mod:`repro.faultinject.soak`; it is
deliberately *not* imported here because it drives the full core
pipeline, which in turn imports this package.
"""

from .injector import FaultInjector, FaultRecord
from .plan import (
    ClientFaults,
    FaultPlan,
    FaultWindow,
    MemoryFaults,
    SchedFaults,
    StoreFaults,
    WireFaults,
)
from .wire import FaultedWorkload

__all__ = [
    "FaultPlan",
    "FaultWindow",
    "WireFaults",
    "MemoryFaults",
    "StoreFaults",
    "SchedFaults",
    "ClientFaults",
    "FaultInjector",
    "FaultRecord",
    "FaultedWorkload",
]
