"""The deterministic fault injector shared by all four fault planes.

One :class:`FaultInjector` is built per capture run from a
:class:`~repro.faultinject.plan.FaultPlan`.  Each plane owns a
:class:`random.Random` seeded from ``f"{plan.seed}/{plane}"`` (string
seeds hash via SHA-512, so schedules are identical across processes and
enabling one plane never shifts another plane's draws).  Every injected
fault is appended to the **schedule log** — the byte-identical record
the determinism contract is asserted against — counted per
``(plane, kind)``, and, when observability is enabled, emitted as a
``fault_injected`` trace event plus a ``scap_faults_injected_total``
metric sample so the flight recorder can attribute observed drops to
injected causes.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..observability import HOOK_FAULT_INJECTED, NULL_OBSERVABILITY, Observability
from .plan import FaultPlan

__all__ = ["FaultInjector", "FaultRecord"]

PLANE_WIRE = "wire"
PLANE_MEMORY = "memory"
PLANE_STORE = "store"
PLANE_SCHED = "sched"
PLANE_CLIENT = "client"


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: when (simulated), which plane, what kind."""

    time: float
    plane: str
    kind: str
    detail: str = ""

    def format(self) -> str:
        """One line of the schedule log (used for digests and dumps)."""
        return f"{self.time!r} {self.plane} {self.kind} {self.detail}"


class FaultInjector:
    """Applies one :class:`FaultPlan` to one capture run.

    The injector is *consumed* by a run: build a fresh one per run (the
    socket does this in ``_build_runtime``) so replaying the same plan
    on the same trace reproduces the schedule exactly.
    """

    def __init__(
        self, plan: FaultPlan, observability: Optional[Observability] = None
    ):
        plan.validate()
        self.plan = plan
        self._obs = observability or NULL_OBSERVABILITY
        self._rngs: Dict[str, random.Random] = {
            plane: random.Random(f"{plan.seed}/{plane}")
            for plane in (
                PLANE_WIRE, PLANE_MEMORY, PLANE_STORE, PLANE_SCHED, PLANE_CLIENT
            )
        }
        #: The schedule log: every injected fault, in injection order.
        self.schedule: List[FaultRecord] = []
        self.counts: Dict[Tuple[str, str], int] = {}
        self.total_injected = 0
        self._pressure_noted = False
        self._m_faults = self._obs.registry.counter(
            "scap_faults_injected_total",
            "faults injected by the chaos layer, by plane and kind",
            labels=("plane", "kind"),
        )
        self._fault_counters: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, now: float, plane: str, kind: str, detail: str = "") -> None:
        self.schedule.append(FaultRecord(now, plane, kind, detail))
        key = (plane, kind)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.total_injected += 1
        if self._obs.enabled:
            counter = self._fault_counters.get(key)
            if counter is None:
                counter = self._m_faults.labels(plane, kind)
                self._fault_counters[key] = counter
            counter.inc()
            self._obs.trace.emit(
                now, HOOK_FAULT_INJECTED, plane=plane, kind=kind, detail=detail
            )

    def count(self, plane: str, kind: str) -> int:
        """Injected faults of one ``(plane, kind)`` so far."""
        return self.counts.get((plane, kind), 0)

    def counts_by_key(self) -> Dict[str, int]:
        """``{"plane.kind": count}`` for stats surfaces."""
        return {
            f"{plane}.{kind}": count for (plane, kind), count in self.counts.items()
        }

    def schedule_digest(self) -> str:
        """SHA-256 over the schedule log — the determinism fingerprint.

        Two runs of the same plan on the same workload must produce the
        same digest; the chaos tests assert exactly that.
        """
        digest = hashlib.sha256()
        for record in self.schedule:
            digest.update(record.format().encode())
            digest.update(b"\n")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Wire plane (decisions live in .wire.FaultedWorkload)
    # ------------------------------------------------------------------
    def wrap_workload(self, workload):
        """Interpose the wire plane on ``workload`` (no-op if inactive)."""
        if not self.plan.wire.active():
            return workload
        from .wire import FaultedWorkload

        return FaultedWorkload(workload, self)

    # ------------------------------------------------------------------
    # Memory plane
    # ------------------------------------------------------------------
    def memory_alloc_fails(self, now: float, nbytes: int, label: str = "") -> bool:
        """Should this ``try_store`` be failed artificially?"""
        faults = self.plan.memory
        if faults.alloc_failure_rate <= 0.0 or not faults.window.contains(now):
            return False
        if self._rngs[PLANE_MEMORY].random() >= faults.alloc_failure_rate:
            return False
        self._record(now, PLANE_MEMORY, "alloc_failure", f"bytes={nbytes} {label}")
        return True

    def memory_pressure(self, now: float, fraction: float) -> float:
        """The occupancy fraction PPL should see (boosted in-window).

        The boost never pushes the fraction to 1.0 on its own, so the
        top priority's watermark is only crossed by genuine occupancy.
        """
        faults = self.plan.memory
        if faults.pressure_boost <= 0.0 or not faults.window.contains(now):
            return fraction
        if not self._pressure_noted:
            # Continuous pressure is logged once per run, not per call,
            # to keep the schedule log proportional to discrete faults.
            self._pressure_noted = True
            self._record(now, PLANE_MEMORY, "pressure", f"boost={faults.pressure_boost}")
        return max(fraction, min(fraction + faults.pressure_boost, 0.999999))

    # ------------------------------------------------------------------
    # Scheduling plane
    # ------------------------------------------------------------------
    def sched_backpressure(self, now: float, worker: int) -> bool:
        """Should this event be rejected as if the queue were full?"""
        faults = self.plan.sched
        if faults.backpressure_rate <= 0.0 or not faults.window.contains(now):
            return False
        if self._rngs[PLANE_SCHED].random() >= faults.backpressure_rate:
            return False
        self._record(now, PLANE_SCHED, "backpressure", f"worker={worker}")
        return True

    def sched_stall(self, now: float, worker: int) -> float:
        """Extra service seconds for this event (0.0 = no stall)."""
        faults = self.plan.sched
        if faults.stall_rate <= 0.0 or not faults.window.contains(now):
            return 0.0
        if self._rngs[PLANE_SCHED].random() >= faults.stall_rate:
            return 0.0
        self._record(now, PLANE_SCHED, "stall", f"worker={worker}")
        return faults.stall_seconds

    # ------------------------------------------------------------------
    # Store plane
    # ------------------------------------------------------------------
    def store_write_error(self, now: float, nbytes: int) -> bool:
        """Should this segment append fail with a simulated I/O error?"""
        faults = self.plan.store
        if faults.write_error_rate <= 0.0 or not faults.window.contains(now):
            return False
        if self._rngs[PLANE_STORE].random() >= faults.write_error_rate:
            return False
        self._record(now, PLANE_STORE, "write_error", f"bytes={nbytes}")
        return True

    def store_fsync_stall(self, now: float) -> float:
        """Seconds this seal's fsync stalls for (0.0 = no stall)."""
        faults = self.plan.store
        if faults.fsync_stall_rate <= 0.0 or not faults.window.contains(now):
            return 0.0
        if self._rngs[PLANE_STORE].random() >= faults.fsync_stall_rate:
            return 0.0
        self._record(now, PLANE_STORE, "fsync_stall", f"seconds={faults.fsync_stall_seconds}")
        return faults.fsync_stall_seconds

    def store_torn_write(self, now: float) -> int:
        """Bytes to tear off this segment instead of sealing (0 = seal)."""
        faults = self.plan.store
        if faults.torn_write_rate <= 0.0 or not faults.window.contains(now):
            return 0
        rng = self._rngs[PLANE_STORE]
        if rng.random() >= faults.torn_write_rate:
            return 0
        tear = rng.randint(1, faults.torn_tail_bytes)
        self._record(now, PLANE_STORE, "torn_write", f"bytes={tear}")
        return tear

    # ------------------------------------------------------------------
    # Client plane (service daemon socket layer; see repro.service)
    # ------------------------------------------------------------------
    def client_slow(self, now: float) -> float:
        """Seconds to stall a client's event delivery (0.0 = no fault)."""
        faults = self.plan.client
        if faults.slow_client_rate <= 0.0 or not faults.window.contains(now):
            return 0.0
        if self._rngs[PLANE_CLIENT].random() >= faults.slow_client_rate:
            return 0.0
        self._record(
            now, PLANE_CLIENT, "slow_client",
            f"seconds={faults.slow_client_seconds}",
        )
        return faults.slow_client_seconds

    def client_disconnect(self, now: float) -> bool:
        """Should this client be severed mid-subscription?"""
        faults = self.plan.client
        if (
            faults.disconnect_mid_subscription_rate <= 0.0
            or not faults.window.contains(now)
        ):
            return False
        if (
            self._rngs[PLANE_CLIENT].random()
            >= faults.disconnect_mid_subscription_rate
        ):
            return False
        self._record(now, PLANE_CLIENT, "disconnect_mid_subscription")
        return True

    def client_garbage(self, now: float) -> bool:
        """Should this request frame be treated as wire garbage?"""
        faults = self.plan.client
        if faults.garbage_frame_rate <= 0.0 or not faults.window.contains(now):
            return False
        if self._rngs[PLANE_CLIENT].random() >= faults.garbage_frame_rate:
            return False
        self._record(now, PLANE_CLIENT, "garbage_frame")
        return True
