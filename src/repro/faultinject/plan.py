"""Fault plans: the declarative description of what to break, when.

A :class:`FaultPlan` is a seed plus one config block per fault *plane*:

* **wire** — packet drop, duplication, reordering, payload corruption,
  FCS corruption (dropped by the NIC), and snaplen-style truncation,
  applied to the replayed workload before it reaches the NIC;
* **memory** — forced allocation failures in
  :class:`~repro.core.memory.StreamMemory` and an occupancy *pressure
  boost* that pushes the PPL watermark bands and ``overload_cutoff``
  into action without needing a genuinely full pool;
* **store** — segment write errors, fsync stalls, and torn tails that
  feed the store's truncation-recovery path;
* **sched** — worker service-time stalls and forced event-queue
  backpressure;
* **client** — service-plane faults against the capture daemon's
  socket layer (:mod:`repro.service`): slow clients, disconnects in
  the middle of a subscription, and garbage frames.

Every rate is an independent per-opportunity Bernoulli probability and
every plane has a *window* in simulated time, so a plan can model a
burst of faults mid-capture.  Plans are frozen (hashable, comparable)
and fully determine the fault schedule together with the input
workload: same plan + same trace ⇒ byte-identical schedule (see
``docs/FAULT_INJECTION.md`` for the determinism contract).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Optional

__all__ = [
    "FaultWindow",
    "WireFaults",
    "MemoryFaults",
    "StoreFaults",
    "SchedFaults",
    "ClientFaults",
    "FaultPlan",
]

_INF = float("inf")


@dataclass(frozen=True)
class FaultWindow:
    """Half-open interval of *simulated* time a plane is active in."""

    start: float = 0.0
    end: float = _INF

    def contains(self, now: float) -> bool:
        """True when ``now`` falls inside the window."""
        return self.start <= now < self.end

    def validate(self) -> None:
        """Raise ValueError when the window is empty or reversed."""
        if self.end <= self.start:
            raise ValueError(f"empty fault window [{self.start}, {self.end})")


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class WireFaults:
    """Wire-plane fault rates (per replayed packet)."""

    drop_rate: float = 0.0          # packet lost before the NIC
    duplicate_rate: float = 0.0     # packet delivered twice
    reorder_rate: float = 0.0       # packet swapped with its successor
    corrupt_rate: float = 0.0       # one payload bit flipped, frame survives
    fcs_corrupt_rate: float = 0.0   # frame fails the NIC's FCS check
    truncate_rate: float = 0.0      # payload cut short (snaplen-style)
    window: FaultWindow = field(default_factory=FaultWindow)

    def active(self) -> bool:
        """True when any wire fault can ever fire."""
        return any(
            getattr(self, spec.name) > 0.0
            for spec in fields(self)
            if spec.name != "window"
        )

    def validate(self) -> None:
        """Raise ValueError on out-of-range rates or an empty window."""
        for spec in fields(self):
            if spec.name != "window":
                _check_rate(f"wire.{spec.name}", getattr(self, spec.name))
        self.window.validate()


@dataclass(frozen=True)
class MemoryFaults:
    """Memory-plane faults against :class:`~repro.core.memory.StreamMemory`."""

    alloc_failure_rate: float = 0.0  # per try_store: pretend the pool is full
    #: Added to the occupancy fraction PPL sees while the window is
    #: active (capped so the top priority's watermark is never crossed
    #: by the boost alone), forcing the watermark bands to engage.
    pressure_boost: float = 0.0
    window: FaultWindow = field(default_factory=FaultWindow)

    def active(self) -> bool:
        """True when any memory fault can ever fire."""
        return self.alloc_failure_rate > 0.0 or self.pressure_boost > 0.0

    def validate(self) -> None:
        """Raise ValueError on out-of-range knobs or an empty window."""
        _check_rate("memory.alloc_failure_rate", self.alloc_failure_rate)
        if not 0.0 <= self.pressure_boost < 1.0:
            raise ValueError(
                f"memory.pressure_boost must be in [0, 1), got {self.pressure_boost}"
            )
        self.window.validate()


@dataclass(frozen=True)
class StoreFaults:
    """Store-plane faults against the segment writer pipeline."""

    write_error_rate: float = 0.0    # per record: simulated EIO, record lost
    fsync_stall_rate: float = 0.0    # per seal: the fsync blocks for a while
    fsync_stall_seconds: float = 0.005
    torn_write_rate: float = 0.0     # per seal: crash mid-footer, tail torn
    torn_tail_bytes: int = 32        # max bytes chopped off a torn segment
    window: FaultWindow = field(default_factory=FaultWindow)

    def active(self) -> bool:
        """True when any store fault can ever fire."""
        return (
            self.write_error_rate > 0.0
            or self.fsync_stall_rate > 0.0
            or self.torn_write_rate > 0.0
        )

    def validate(self) -> None:
        """Raise ValueError on out-of-range knobs or an empty window."""
        _check_rate("store.write_error_rate", self.write_error_rate)
        _check_rate("store.fsync_stall_rate", self.fsync_stall_rate)
        _check_rate("store.torn_write_rate", self.torn_write_rate)
        if self.fsync_stall_seconds < 0:
            raise ValueError("store.fsync_stall_seconds must be non-negative")
        if self.torn_tail_bytes < 1:
            raise ValueError("store.torn_tail_bytes must be positive")
        self.window.validate()


@dataclass(frozen=True)
class SchedFaults:
    """Scheduling-plane faults against the worker pool."""

    stall_rate: float = 0.0          # per event: worker stalls mid-service
    stall_seconds: float = 0.001     # extra service time per stall
    backpressure_rate: float = 0.0   # per event: queue pretends to be full
    window: FaultWindow = field(default_factory=FaultWindow)

    def active(self) -> bool:
        """True when any scheduling fault can ever fire."""
        return self.stall_rate > 0.0 or self.backpressure_rate > 0.0

    def validate(self) -> None:
        """Raise ValueError on out-of-range knobs or an empty window."""
        _check_rate("sched.stall_rate", self.stall_rate)
        _check_rate("sched.backpressure_rate", self.backpressure_rate)
        if self.stall_seconds < 0:
            raise ValueError("sched.stall_seconds must be non-negative")
        self.window.validate()


@dataclass(frozen=True)
class ClientFaults:
    """Client-plane faults against the service daemon's socket layer."""

    #: Per delivered event: stall the client's sender this long, making
    #: the client "slow" so backpressure/drop-oldest paths engage.
    slow_client_rate: float = 0.0
    slow_client_seconds: float = 0.005
    #: Per enqueued event: sever the receiving client's connection in
    #: the middle of its subscription.
    disconnect_mid_subscription_rate: float = 0.0
    #: Per request frame: pretend the wire mangled it, forcing the
    #: daemon's typed-error rejection path.
    garbage_frame_rate: float = 0.0
    window: FaultWindow = field(default_factory=FaultWindow)

    def active(self) -> bool:
        """True when any client fault can ever fire."""
        return (
            self.slow_client_rate > 0.0
            or self.disconnect_mid_subscription_rate > 0.0
            or self.garbage_frame_rate > 0.0
        )

    def validate(self) -> None:
        """Raise ValueError on out-of-range knobs or an empty window."""
        _check_rate("client.slow_client_rate", self.slow_client_rate)
        _check_rate(
            "client.disconnect_mid_subscription_rate",
            self.disconnect_mid_subscription_rate,
        )
        _check_rate("client.garbage_frame_rate", self.garbage_frame_rate)
        if self.slow_client_seconds < 0:
            raise ValueError("client.slow_client_seconds must be non-negative")
        self.window.validate()


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus per-plane fault configs — the whole chaos recipe.

    Each plane draws from its own :class:`random.Random` derived
    deterministically from ``seed``, so enabling one plane never
    perturbs another plane's schedule.
    """

    seed: int = 0
    wire: WireFaults = field(default_factory=WireFaults)
    memory: MemoryFaults = field(default_factory=MemoryFaults)
    store: StoreFaults = field(default_factory=StoreFaults)
    sched: SchedFaults = field(default_factory=SchedFaults)
    client: ClientFaults = field(default_factory=ClientFaults)

    def validate(self) -> None:
        """Raise ValueError when any plane config is out of range."""
        self.wire.validate()
        self.memory.validate()
        self.store.validate()
        self.sched.validate()
        self.client.validate()

    def active(self) -> bool:
        """True when at least one plane can inject something."""
        return (
            self.wire.active()
            or self.memory.active()
            or self.store.active()
            or self.sched.active()
            or self.client.active()
        )

    @classmethod
    def randomized(
        cls, seed: int, intensity: float = 0.05, window: Optional[FaultWindow] = None
    ) -> "FaultPlan":
        """A randomized-but-seeded plan for chaos soaking.

        ``intensity`` scales the upper bound of every drawn rate; the
        draw itself comes from ``random.Random(seed)``, so the same
        seed always produces the same plan (and therefore the same
        fault schedule on the same trace).
        """
        if intensity < 0.0 or intensity > 1.0:
            raise ValueError("intensity must be in [0, 1]")
        # A str seed hashes via SHA-512 (not the salted hash()), so the
        # derived plan is identical across processes.
        rng = random.Random(f"faultplan:{seed}")
        window = window or FaultWindow()

        def rate() -> float:
            return round(rng.random() * intensity, 6)

        return cls(
            seed=seed,
            wire=WireFaults(
                drop_rate=rate(),
                duplicate_rate=rate(),
                reorder_rate=rate(),
                corrupt_rate=0.0,  # soak asserts payload integrity
                fcs_corrupt_rate=rate(),
                truncate_rate=0.0,  # soak asserts payload integrity
                window=window,
            ),
            memory=MemoryFaults(
                alloc_failure_rate=rate(),
                pressure_boost=round(rng.random() * 0.3, 6),
                window=window,
            ),
            store=StoreFaults(
                write_error_rate=rate(),
                fsync_stall_rate=rate(),
                torn_write_rate=rate(),
                window=window,
            ),
            sched=SchedFaults(
                stall_rate=rate(),
                backpressure_rate=rate(),
                window=window,
            ),
        )

    def describe(self) -> str:
        """One human-readable line per active plane (CLI output)."""
        lines = [f"seed={self.seed}"]
        for name in ("wire", "memory", "store", "sched", "client"):
            plane = getattr(self, name)
            if plane.active():
                knobs = " ".join(
                    f"{spec.name}={getattr(plane, spec.name)}"
                    for spec in fields(plane)
                    if spec.name != "window" and getattr(plane, spec.name)
                )
                lines.append(f"{name}: {knobs}")
        return "\n".join(lines)
