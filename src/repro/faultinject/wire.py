"""The wire plane: faults applied to the replayed packet stream.

:class:`FaultedWorkload` wraps any workload exposing ``replay(rate_bps)``
(normally a :class:`~repro.traffic.trace.Trace`) and interposes the wire
faults of the run's :class:`~repro.faultinject.plan.FaultPlan` between
the replayer and the NIC: loss, duplication, reordering, payload
bit-flips, FCS corruption, and snaplen-style truncation.

Reordering swaps the *timestamps* of the affected packet and its
successor and yields them in timestamp order, so the arrival sequence
seen by the per-core softirq queues stays nondecreasing (the queue
model requires it) while the byte stream arrives out of order — the
same effect a reordering middlebox has on a capture port.

All mutating faults operate on shallow clones
(:func:`dataclasses.replace`), never on the trace's own packets, so a
trace replayed through a fault plan can be replayed clean afterwards.
"""

from __future__ import annotations

import dataclasses
from itertools import islice
from typing import Iterable, Iterator, List

from ..netstack.packet import Packet

__all__ = ["FaultedWorkload"]


class FaultedWorkload:
    """A workload with the wire fault plane interposed on replay."""

    def __init__(self, workload, injector):
        self._workload = workload
        self._injector = injector

    def __getattr__(self, name: str):
        # Ground truth (flows, name, totals, ...) passes through.
        return getattr(self._workload, name)

    def __len__(self) -> int:
        return len(self._workload)

    def replay(self, rate_bps: float) -> Iterator[Packet]:
        """Replay the wrapped workload with wire faults applied."""
        return self._reorder(self._per_packet(self._workload.replay(rate_bps)))

    def replay_batches(
        self, rate_bps: float, size: int
    ) -> Iterator[List[Packet]]:
        """Batched replay with wire faults applied.

        Defined explicitly so the batched runtime path cannot reach the
        wrapped workload's own ``replay_batches`` through
        ``__getattr__`` — that would replay the clean trace and skip
        the wire plane entirely.  The chunks regroup this wrapper's
        faulted :meth:`replay` stream, so batched and per-packet runs
        see the identical faulted packet sequence.
        """
        if size < 1:
            raise ValueError("batch size must be positive")
        replay = self.replay(rate_bps)
        while True:
            chunk = list(islice(replay, size))
            if not chunk:
                return
            yield chunk

    # ------------------------------------------------------------------
    def _per_packet(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        injector = self._injector
        faults = injector.plan.wire
        window = faults.window
        rng = injector._rngs["wire"]
        record = injector._record
        for packet in packets:
            now = packet.timestamp
            if not window.contains(now):
                yield packet
                continue
            if faults.drop_rate > 0.0 and rng.random() < faults.drop_rate:
                record(now, "wire", "drop", f"bytes={packet.wire_len}")
                continue
            if faults.fcs_corrupt_rate > 0.0 and rng.random() < faults.fcs_corrupt_rate:
                record(now, "wire", "fcs_corrupt", f"bytes={packet.wire_len}")
                yield dataclasses.replace(packet, fcs_corrupt=True)
                continue
            if (
                faults.corrupt_rate > 0.0
                and packet.payload
                and rng.random() < faults.corrupt_rate
            ):
                bit = rng.randrange(len(packet.payload) * 8)
                payload = bytearray(packet.payload)
                payload[bit // 8] ^= 1 << (bit % 8)
                record(now, "wire", "corrupt", f"bit={bit}")
                packet = dataclasses.replace(packet, payload=bytes(payload))
            if (
                faults.truncate_rate > 0.0
                and packet.payload
                and rng.random() < faults.truncate_rate
            ):
                keep = rng.randrange(len(packet.payload))
                record(now, "wire", "truncate", f"kept={keep}")
                # wire_len is carried over: the frame was full size on
                # the wire, only the capture is short (snaplen).
                packet = dataclasses.replace(packet, payload=packet.payload[:keep])
            if faults.duplicate_rate > 0.0 and rng.random() < faults.duplicate_rate:
                record(now, "wire", "duplicate", f"bytes={packet.wire_len}")
                yield dataclasses.replace(packet)
            yield packet

    def _reorder(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        injector = self._injector
        faults = injector.plan.wire
        if faults.reorder_rate <= 0.0:
            yield from packets
            return
        window = faults.window
        rng = injector._rngs["wire"]
        iterator = iter(packets)
        for packet in iterator:
            if window.contains(packet.timestamp) and rng.random() < faults.reorder_rate:
                successor = next(iterator, None)
                if successor is None:
                    yield packet
                    return
                # Swap timestamps and yield in timestamp order: arrival
                # times stay nondecreasing, content arrives swapped.
                packet.timestamp, successor.timestamp = (
                    successor.timestamp,
                    packet.timestamp,
                )
                injector._record(successor.timestamp, "wire", "reorder", "")
                yield successor
                yield packet
            else:
                yield packet
