"""A BPF-style filter expression language.

Scap applications (and the baselines) select traffic with pcap-filter
expressions — ``scap_set_filter(sc, "tcp port 80")``.  This module
implements the subset of the pcap-filter language the paper's use cases
need: host/net/port/portrange primitives with direction and protocol
qualifiers, protocol keywords, frame-length tests, and the full
``and`` / ``or`` / ``not`` boolean structure with parentheses.  As in
real BPF, omitted qualifiers are inherited from the previous primitive
(``port 80 or 443``).

The compiled form is a tree of small predicate objects; ``matches``
evaluates a packet, and ``matches_five_tuple`` evaluates a flow key (for
kernel-level per-stream classification where only the tuple is known).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netstack.addresses import ip_to_int
from ..netstack.flows import FiveTuple
from ..netstack.ip import IPProtocol
from ..netstack.packet import Packet

__all__ = ["BPFError", "BPFFilter", "compile_filter"]


class BPFError(ValueError):
    """Raised for lexical or syntactic errors in a filter expression."""


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<lparen>\()|(?P<rparen>\))|"
    r"(?P<cidr>\d+\.\d+\.\d+\.\d+/\d+)|"
    r"(?P<ip>\d+\.\d+\.\d+\.\d+)|"
    r"(?P<range>\d+-\d+)|"
    r"(?P<number>\d+)|"
    r"(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r")"
)


def _tokenize(expression: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            if expression[position:].strip() == "":
                break
            raise BPFError(f"unexpected character at {position}: {expression[position:]!r}")
        position = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


# ----------------------------------------------------------------------
# AST predicates
# ----------------------------------------------------------------------
_DIR_SRC = "src"
_DIR_DST = "dst"

_PROTO_NAMES = {"tcp": IPProtocol.TCP, "udp": IPProtocol.UDP, "icmp": IPProtocol.ICMP}


class _Node:
    def matches(self, packet: Packet) -> bool:
        raise NotImplementedError

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        raise NotImplementedError


@dataclass
class _And(_Node):
    left: _Node
    right: _Node

    def matches(self, packet: Packet) -> bool:
        return self.left.matches(packet) and self.right.matches(packet)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return self.left.matches_five_tuple(five_tuple) and self.right.matches_five_tuple(
            five_tuple
        )


@dataclass
class _Or(_Node):
    left: _Node
    right: _Node

    def matches(self, packet: Packet) -> bool:
        return self.left.matches(packet) or self.right.matches(packet)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return self.left.matches_five_tuple(five_tuple) or self.right.matches_five_tuple(
            five_tuple
        )


@dataclass
class _Not(_Node):
    operand: _Node

    def matches(self, packet: Packet) -> bool:
        return not self.operand.matches(packet)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return not self.operand.matches_five_tuple(five_tuple)


@dataclass
class _Proto(_Node):
    protocol: Optional[int]  # None means "any IP"

    def matches(self, packet: Packet) -> bool:
        if packet.ip is None:
            return False
        return self.protocol is None or packet.ip.protocol == self.protocol

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return self.protocol is None or five_tuple.protocol == self.protocol


@dataclass
class _Host(_Node):
    address: int
    direction: Optional[str]
    protocol: Optional[int]

    def _match_tuple(self, src_ip: int, dst_ip: int, protocol: int) -> bool:
        if self.protocol is not None and protocol != self.protocol:
            return False
        if self.direction == _DIR_SRC:
            return src_ip == self.address
        if self.direction == _DIR_DST:
            return dst_ip == self.address
        return self.address in (src_ip, dst_ip)

    def matches(self, packet: Packet) -> bool:
        if packet.ip is None:
            return False
        return self._match_tuple(packet.ip.src_ip, packet.ip.dst_ip, packet.ip.protocol)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return self._match_tuple(five_tuple.src_ip, five_tuple.dst_ip, five_tuple.protocol)


@dataclass
class _Net(_Node):
    network: int
    mask: int
    direction: Optional[str]
    protocol: Optional[int]

    def _match_tuple(self, src_ip: int, dst_ip: int, protocol: int) -> bool:
        if self.protocol is not None and protocol != self.protocol:
            return False
        src_in = (src_ip & self.mask) == self.network
        dst_in = (dst_ip & self.mask) == self.network
        if self.direction == _DIR_SRC:
            return src_in
        if self.direction == _DIR_DST:
            return dst_in
        return src_in or dst_in

    def matches(self, packet: Packet) -> bool:
        if packet.ip is None:
            return False
        return self._match_tuple(packet.ip.src_ip, packet.ip.dst_ip, packet.ip.protocol)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return self._match_tuple(five_tuple.src_ip, five_tuple.dst_ip, five_tuple.protocol)


@dataclass
class _Port(_Node):
    low: int
    high: int
    direction: Optional[str]
    protocol: Optional[int]

    def _match_ports(self, src_port: int, dst_port: int, protocol: int) -> bool:
        if self.protocol is not None and protocol != self.protocol:
            return False
        if protocol not in (IPProtocol.TCP, IPProtocol.UDP):
            return False
        src_in = self.low <= src_port <= self.high
        dst_in = self.low <= dst_port <= self.high
        if self.direction == _DIR_SRC:
            return src_in
        if self.direction == _DIR_DST:
            return dst_in
        return src_in or dst_in

    def matches(self, packet: Packet) -> bool:
        if packet.ip is None:
            return False
        return self._match_ports(packet.src_port, packet.dst_port, packet.ip.protocol)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return self._match_ports(five_tuple.src_port, five_tuple.dst_port, five_tuple.protocol)


@dataclass
class _Length(_Node):
    limit: int
    less: bool

    def matches(self, packet: Packet) -> bool:
        if self.less:
            return packet.wire_len <= self.limit
        return packet.wire_len >= self.limit

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        # Length tests are per-packet; at flow level they are vacuous.
        return True


@dataclass
class _Vlan(_Node):
    vlan_id: Optional[int]  # None: any tagged frame

    def matches(self, packet: Packet) -> bool:
        if packet.vlan_id is None:
            return False
        return self.vlan_id is None or packet.vlan_id == self.vlan_id

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        # VLAN tags are per-frame; vacuous at flow level.
        return True


class _MatchAll(_Node):
    def matches(self, packet: Packet) -> bool:
        return True

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        return True


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
@dataclass
class _Qualifiers:
    direction: Optional[str] = None
    kind: Optional[str] = None  # host / net / port / portrange
    protocol: Optional[int] = None


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._position = 0
        self._last = _Qualifiers()

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise BPFError("unexpected end of expression")
        self._position += 1
        return token

    def parse(self) -> _Node:
        node = self._parse_or()
        if self._peek() is not None:
            raise BPFError(f"trailing tokens: {self._tokens[self._position:]}")
        return node

    def _parse_or(self) -> _Node:
        node = self._parse_and()
        while self._peek() == ("word", "or"):
            self._advance()
            node = _Or(node, self._parse_and())
        return node

    def _parse_and(self) -> _Node:
        node = self._parse_unary()
        while True:
            token = self._peek()
            if token == ("word", "and"):
                self._advance()
                node = _And(node, self._parse_unary())
            else:
                break
        return node

    def _parse_unary(self) -> _Node:
        token = self._peek()
        if token is None:
            raise BPFError("unexpected end of expression")
        if token == ("word", "not"):
            self._advance()
            return _Not(self._parse_unary())
        if token[0] == "lparen":
            self._advance()
            node = self._parse_or()
            closing = self._advance()
            if closing[0] != "rparen":
                raise BPFError("missing closing parenthesis")
            return node
        return self._parse_primitive()

    def _parse_primitive(self) -> _Node:
        qualifiers = _Qualifiers()
        token = self._peek()
        # Protocol qualifier (optional).
        if token is not None and token[0] == "word" and token[1] in _PROTO_NAMES:
            qualifiers.protocol = _PROTO_NAMES[token[1]]
            self._advance()
            token = self._peek()
            if token is None or token[0] in ("rparen",) or token[1] in ("and", "or"):
                self._last = qualifiers
                return _Proto(qualifiers.protocol)
        elif token == ("word", "ip"):
            self._advance()
            token = self._peek()
            if token is None or token[0] == "rparen" or token[1] in ("and", "or"):
                return _Proto(None)
        elif token == ("word", "vlan"):
            self._advance()
            token = self._peek()
            if token is not None and token[0] == "number":
                self._advance()
                vlan_id = int(token[1])
                if not 0 <= vlan_id <= 4095:
                    raise BPFError(f"VLAN id out of range: {vlan_id}")
                return _Vlan(vlan_id)
            return _Vlan(None)
        # Direction qualifier (optional).
        if token is not None and token[0] == "word" and token[1] in (_DIR_SRC, _DIR_DST):
            qualifiers.direction = token[1]
            self._advance()
            token = self._peek()
        # Type keyword.
        if token is not None and token[0] == "word" and token[1] in (
            "host",
            "net",
            "port",
            "portrange",
            "less",
            "greater",
        ):
            qualifiers.kind = token[1]
            self._advance()
            token = self._peek()
        if token is None:
            raise BPFError("expected a value at end of expression")

        if qualifiers.kind is None and token[0] in ("number", "range", "ip", "cidr"):
            # Bare value: inherit qualifiers from the previous primitive.
            qualifiers.kind = self._last.kind
            qualifiers.direction = qualifiers.direction or self._last.direction
            if qualifiers.protocol is None:
                qualifiers.protocol = self._last.protocol
            if qualifiers.kind is None:
                raise BPFError(f"bare value with no previous qualifier: {token[1]!r}")
        self._last = qualifiers
        return self._build_primitive(qualifiers)

    @staticmethod
    def _parse_address(value: str) -> int:
        try:
            return ip_to_int(value)
        except ValueError as exc:
            raise BPFError(str(exc)) from exc

    def _build_primitive(self, qualifiers: _Qualifiers) -> _Node:
        kind = qualifiers.kind
        if kind == "host":
            token_kind, value = self._advance()
            if token_kind != "ip":
                raise BPFError(f"host expects an IPv4 address, got {value!r}")
            return _Host(self._parse_address(value), qualifiers.direction, qualifiers.protocol)
        if kind == "net":
            token_kind, value = self._advance()
            if token_kind == "cidr":
                address, prefix = value.split("/")
                prefix_len = int(prefix)
                if not 0 <= prefix_len <= 32:
                    raise BPFError(f"invalid prefix length: {prefix_len}")
                mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
                network = self._parse_address(address) & mask
                return _Net(network, mask, qualifiers.direction, qualifiers.protocol)
            if token_kind == "ip":
                token = self._peek()
                if token == ("word", "mask"):
                    self._advance()
                    mask_kind, mask_value = self._advance()
                    if mask_kind != "ip":
                        raise BPFError("mask expects a dotted-quad value")
                    mask = self._parse_address(mask_value)
                else:
                    mask = 0xFFFFFFFF
                return _Net(
                    self._parse_address(value) & mask,
                    mask,
                    qualifiers.direction,
                    qualifiers.protocol,
                )
            raise BPFError(f"net expects an address, got {value!r}")
        if kind == "port":
            token_kind, value = self._advance()
            if token_kind != "number":
                raise BPFError(f"port expects a number, got {value!r}")
            port = int(value)
            if not 0 <= port <= 65535:
                raise BPFError(f"port out of range: {port}")
            return _Port(port, port, qualifiers.direction, qualifiers.protocol)
        if kind == "portrange":
            token_kind, value = self._advance()
            if token_kind != "range":
                raise BPFError(f"portrange expects low-high, got {value!r}")
            low, high = (int(part) for part in value.split("-"))
            if low > high or high > 65535:
                raise BPFError(f"invalid port range: {value}")
            return _Port(low, high, qualifiers.direction, qualifiers.protocol)
        if kind in ("less", "greater"):
            token_kind, value = self._advance()
            if token_kind != "number":
                raise BPFError(f"{kind} expects a number, got {value!r}")
            return _Length(int(value), less=(kind == "less"))
        raise BPFError(f"unsupported primitive: {kind!r}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
class BPFFilter:
    """A compiled filter expression.

    The empty expression matches everything (like an absent pcap filter).
    """

    def __init__(self, expression: str = ""):
        self.expression = expression.strip()
        if not self.expression:
            self._root: _Node = _MatchAll()
        else:
            self._root = _Parser(_tokenize(self.expression)).parse()

    @property
    def is_match_all(self) -> bool:
        """True when the filter accepts every packet (empty expression).

        The batched hot path checks this once per batch and skips the
        per-packet :meth:`matches` call entirely — behaviour-preserving
        because a match-all root returns True unconditionally.
        """
        return isinstance(self._root, _MatchAll)

    def matches(self, packet: Packet) -> bool:
        """True if ``packet`` satisfies the expression."""
        return self._root.matches(packet)

    def matches_five_tuple(self, five_tuple: FiveTuple) -> bool:
        """True if a flow with ``five_tuple`` can satisfy the expression."""
        return self._root.matches_five_tuple(five_tuple)

    def __repr__(self) -> str:
        return f"BPFFilter({self.expression!r})"


def compile_filter(expression: str) -> BPFFilter:
    """Compile ``expression``; raises :class:`BPFError` on bad syntax."""
    return BPFFilter(expression)
