"""BPF-style filter expressions."""

from .bpf import BPFError, BPFFilter, compile_filter

__all__ = ["BPFError", "BPFFilter", "compile_filter"]
