"""Scap reproduction: stream-oriented network traffic capture and analysis.

A faithful, fully simulated reimplementation of *Scap: Stream-Oriented
Network Traffic Capture and Analysis for High-Speed Networks*
(Papadogiannakis, Polychronakis, Markatos -- IMC 2013), together with
every substrate the paper's evaluation depends on: a packet/netstack
layer, a campus-like traffic generator, a simulated 82599-class NIC
(RSS + Flow Director), a virtual-time host model, the Libnids /
Stream5 / YAF baselines, Aho-Corasick matching, and the Section 7
queueing analysis.

Quickstart::

    from repro import scap_create, scap_dispatch_data, scap_start_capture
    from repro.traffic import campus_mix

    trace = campus_mix(flow_count=100)
    sc = scap_create(trace, rate_bps=1e9)
    scap_dispatch_data(sc, lambda sd: print(sd.five_tuple, sd.data_len))
    scap_start_capture(sc)
"""

from .core import (
    SCAP_DEFAULT,
    SCAP_TCP_FAST,
    SCAP_TCP_STRICT,
    SCAP_UNLIMITED_CUTOFF,
    ReassemblyPolicy,
    ScapConfig,
    ScapRuntime,
    ScapSocket,
    StreamDescriptor,
    StreamError,
    StreamStatus,
    register_device,
    scap_add_cutoff_class,
    scap_add_cutoff_direction,
    scap_close,
    scap_create,
    scap_discard_stream,
    scap_dispatch_creation,
    scap_dispatch_data,
    scap_dispatch_termination,
    scap_get_stats,
    scap_keep_stream_chunk,
    scap_next_stream_packet,
    scap_set_cutoff,
    scap_set_filter,
    scap_set_parameter,
    scap_set_store,
    scap_set_stream_cutoff,
    scap_set_stream_parameter,
    scap_set_stream_priority,
    scap_set_worker_threads,
    scap_start_capture,
    scap_store_stats,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SCAP_DEFAULT",
    "SCAP_TCP_FAST",
    "SCAP_TCP_STRICT",
    "SCAP_UNLIMITED_CUTOFF",
    "ReassemblyPolicy",
    "ScapConfig",
    "ScapRuntime",
    "ScapSocket",
    "StreamDescriptor",
    "StreamError",
    "StreamStatus",
    "register_device",
    "scap_create",
    "scap_set_filter",
    "scap_set_cutoff",
    "scap_add_cutoff_direction",
    "scap_add_cutoff_class",
    "scap_set_worker_threads",
    "scap_set_parameter",
    "scap_dispatch_creation",
    "scap_dispatch_data",
    "scap_dispatch_termination",
    "scap_start_capture",
    "scap_discard_stream",
    "scap_set_stream_cutoff",
    "scap_set_stream_priority",
    "scap_set_stream_parameter",
    "scap_keep_stream_chunk",
    "scap_next_stream_packet",
    "scap_get_stats",
    "scap_set_store",
    "scap_store_stats",
    "scap_close",
]
