"""Virtual-time host simulation: cost model, queues, cache, cores."""

from .cache import CacheSimulator, LocalityProfile
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .host import Host
from .server import MemoryPool, QueueServer

__all__ = [
    "CacheSimulator",
    "LocalityProfile",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Host",
    "MemoryPool",
    "QueueServer",
]
