"""The simulated monitoring host: cores and their interrupt servers.

Mirrors the testbed sensor: eight 2.00 GHz cores, one NIC RX queue per
core, the software-interrupt handler of each queue pinned to its core.
User-level threads get their own servers, created by the capture
systems (which know whether they are single-threaded like Libnids or
one-worker-per-core like Scap).
"""

from __future__ import annotations

from typing import List

from .costmodel import CostModel, DEFAULT_COST_MODEL
from .server import QueueServer

__all__ = ["Host"]


class Host:
    """Cores plus per-core software-interrupt queue servers.

    ``rx_ring_packets`` bounds the per-queue NIC descriptor ring: if the
    softirq handler falls that far behind, the NIC drops on the wire
    side (rare in practice — the ring to user space fills first).
    """

    def __init__(
        self,
        core_count: int = 8,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        rx_ring_packets: int = 4096,
    ):
        if core_count < 1:
            raise ValueError("need at least one core")
        self.core_count = core_count
        self.cost_model = cost_model
        self.softirq: List[QueueServer] = [
            QueueServer(rx_ring_packets, name=f"softirq-core{core}")
            for core in range(core_count)
        ]

    def softirq_load(self, duration: float) -> float:
        """Fraction of total CPU time spent in software interrupts."""
        if duration <= 0:
            return 0.0
        busy = sum(server.busy_seconds for server in self.softirq)
        return min(1.0, busy / (duration * self.core_count))

    def softirq_drops(self) -> int:
        """Packets dropped because an RX descriptor ring overflowed."""
        return sum(server.rejected for server in self.softirq)

    def reset(self) -> None:
        """Fresh servers for a new run (same configuration)."""
        self.softirq = [
            QueueServer(server.capacity, name=server.name) for server in self.softirq
        ]
