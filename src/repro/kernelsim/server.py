"""Virtual-time queueing primitives.

The host is modeled as a network of single-server FIFO queues with
finite capacity, evaluated in packet-arrival order.  Each stage
(software-interrupt handler, PF_PACKET ring + application thread, Scap
worker thread, …) is a :class:`QueueServer`; shared buffers with
deferred reclamation (the Scap stream-data region) are a
:class:`MemoryPool`.  Everything is exact FIFO queueing — no averaging
approximations — so saturation, backlog, and loss emerge naturally.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Tuple

__all__ = ["QueueServer", "MemoryPool"]


class QueueServer:  # scapcheck: single-owner
    """A single-server FIFO queue with finite capacity.

    Single-owner: a virtual-time primitive driven by exactly one
    simulated component (a core's softirq, one worker); there is no
    real concurrency to lock against.

    Capacity is in caller-defined *units* (packets for an RX ring,
    bytes for a memory-mapped buffer).  Jobs are offered in
    nondecreasing arrival-time order; each job occupies its units from
    arrival until its service completes.

    Typical use::

        if server.would_accept(now, units):
            finish = server.push(now, units, service_seconds)
        else:
            drops += 1
    """

    def __init__(self, capacity_units: float, name: str = "server"):
        if capacity_units <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_units
        self.name = name
        self._in_flight: Deque[Tuple[float, float]] = deque()  # (finish_time, units)
        self._occupied = 0.0
        self._last_finish = 0.0
        self.busy_seconds = 0.0
        self.pushed = 0
        self.rejected = 0
        self.units_served = 0.0

    # ------------------------------------------------------------------
    def _drain(self, now: float) -> None:
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            self._occupied -= in_flight.popleft()[1]

    def occupancy(self, now: float) -> float:
        """Units currently queued or in service at time ``now``."""
        self._drain(now)
        return self._occupied

    def would_accept(self, now: float, units: float) -> bool:
        """True if a job of ``units`` fits at time ``now``."""
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            self._occupied -= in_flight.popleft()[1]
        return self._occupied + units <= self.capacity

    def push(self, now: float, units: float, service_seconds: float) -> float:
        """Enqueue a job; return its service completion time.

        The caller is responsible for checking :meth:`would_accept`
        first (and counting a rejection via :meth:`reject` otherwise).
        """
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            self._occupied -= in_flight.popleft()[1]
        start = max(now, self._last_finish)
        finish = start + service_seconds
        self._last_finish = finish
        self._occupied += units
        self._in_flight.append((finish, units))
        self.busy_seconds += service_seconds
        self.pushed += 1
        self.units_served += units
        return finish

    def reject(self) -> None:
        """Record one rejected (dropped) job."""
        self.rejected += 1

    # ------------------------------------------------------------------
    @property
    def last_finish(self) -> float:
        return self._last_finish

    def utilization(self, duration: float) -> float:
        """Busy fraction over ``duration`` (capped at 1)."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / duration)

    def backlog_seconds(self, now: float) -> float:
        """How far this server's work currently extends past ``now``."""
        return max(0.0, self._last_finish - now)


class MemoryPool:  # scapcheck: single-owner
    """A byte pool with time-scheduled reclamation.

    Single-owner: mutated only by the kernel module / workers of one
    runtime in virtual-time order — no lock needed.

    Models the Scap stream-data region: the kernel module allocates
    bytes as payload arrives, and each byte is reclaimed when the worker
    thread finishes processing the chunk containing it.  The pool only
    needs the *future release time*, supplied at allocation-scheduling
    time, so occupancy at any instant is exact.
    """

    def __init__(self, capacity_bytes: float, name: str = "memory"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_bytes
        self.name = name
        self._used = 0.0
        self._releases: List[Tuple[float, float]] = []  # heap of (time, bytes)
        self.peak_used = 0.0
        self.allocated_total = 0.0

    def advance(self, now: float) -> None:
        """Reclaim everything scheduled for release at or before ``now``."""
        releases = self._releases
        while releases and releases[0][0] <= now:
            _, nbytes = heapq.heappop(releases)
            self._used -= nbytes

    def fraction_used(self, now: float) -> float:
        """Occupied fraction of the pool at time ``now``."""
        self.advance(now)
        return self._used / self.capacity

    def try_allocate(self, now: float, nbytes: float) -> bool:
        """Allocate ``nbytes`` immediately; False if the pool is full."""
        self.advance(now)
        if self._used + nbytes > self.capacity:
            return False
        self._used += nbytes
        self.allocated_total += nbytes
        self.peak_used = max(self.peak_used, self._used)
        return True

    def schedule_release(self, release_time: float, nbytes: float) -> None:
        """Return ``nbytes`` to the pool at ``release_time``."""
        if nbytes <= 0:
            return
        heapq.heappush(self._releases, (release_time, nbytes))

    def release_now(self, now: float, nbytes: float) -> None:
        """Immediately return ``nbytes`` (e.g. data discarded by a cutoff)."""
        self.advance(now)
        self._used = max(0.0, self._used - nbytes)

    @property
    def used(self) -> float:
        return self._used
