"""The cycle-cost model that stands in for real hardware.

The paper's performance results come from *where work happens*: per-
packet interrupt handling, per-byte memory copies, hash lookups, user
processing, and cache-miss penalties.  The simulator charges every
operation a cycle cost from this table and converts cycles to virtual
seconds using the core clock.  Stage saturation (and therefore packet
loss, CPU utilization, and software-interrupt load) emerges from these
charges plus finite buffers — the same mechanics as on the testbed.

Calibration: the constants below were tuned so single-core saturation
points land near the paper's (see DESIGN.md §6 and EXPERIMENTS.md):
Libnids flow export saturates ≈2 Gbit/s, YAF ≈4 Gbit/s, Scap stream
delivery ≈5.5 Gbit/s, single-thread pattern matching ≈0.75–1 Gbit/s.
The *shape* of every figure is insensitive to moderate changes here;
absolute crossover rates move, relative ordering does not.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass
class CostModel:
    """Cycle costs of primitive operations on the monitoring host."""

    core_hz: float = 2.0e9  # two quad-core Xeon 2.00 GHz in the testbed

    # --- kernel receive path (software interrupt context) -------------
    softirq_per_packet: float = 500.0  # driver + IRQ amortized per packet
    copy_per_byte: float = 0.45  # one memory-to-memory copy, per byte
    hash_lookup: float = 180.0  # flow/stream hash table lookup
    stream_update: float = 220.0  # stream_t bookkeeping per packet
    reassembly_per_segment: float = 260.0  # seq-space checks, hole tracking
    event_create: float = 420.0  # enqueue an event, wake worker
    fdir_filter_update: float = 900.0  # install/remove a NIC filter (~10us amortized)
    ring_enqueue: float = 120.0  # PF_PACKET ring slot bookkeeping

    # --- user level ----------------------------------------------------
    syscall_poll: float = 600.0  # poll()/wakeup amortized per batch
    user_batch_packets: float = 32.0  # packets amortizing one wakeup
    pcap_dispatch_per_packet: float = 250.0  # libpcap callback dispatch
    scap_event_dispatch: float = 700.0  # stub event-loop + callback dispatch
    scap_per_byte_touch: float = 0.9  # stub/stream_t handling per delivered byte
    user_reassembly_per_segment: float = 750.0  # libnids/stream5 per segment
    user_reassembly_per_byte: float = 0.9  # user-level copy into stream buffer
    flow_stats_update: float = 150.0  # statistics export bookkeeping
    flow_export_record: float = 500.0  # emit one flow record
    yaf_per_packet: float = 2500.0  # YAF decode + IPFIX metering per packet
    pattern_match_per_byte: float = 14.0  # Aho-Corasick DFA step (2,120 patterns)
    pattern_match_per_chunk: float = 400.0  # automaton setup per buffer

    # --- memory hierarchy ----------------------------------------------
    cache_line_bytes: int = 64
    cache_miss_penalty: float = 190.0  # stall cycles per L2 miss

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to virtual seconds."""
        return cycles / self.core_hz

    # Convenience composites -------------------------------------------
    def copy_cost(self, nbytes: int) -> float:
        """Cycles to copy ``nbytes`` once."""
        return self.copy_per_byte * nbytes

    def miss_cost(self, misses: float) -> float:
        """Stall cycles for ``misses`` cache misses."""
        return self.cache_miss_penalty * misses

    def user_wakeup_cost(self) -> float:
        """Per-item share of the poll()/wakeup syscall cost."""
        return self.syscall_poll / max(1.0, self.user_batch_packets)


DEFAULT_COST_MODEL = CostModel()
