"""Cache-locality substrate.

Section 6.5.2 of the paper attributes a large share of Scap's advantage
to locality: PF_PACKET interleaves packets of different flows in one
big ring, so user-level reassembly touches cold memory, while Scap
writes each stream's bytes contiguously and the same core consumes them
soon after.  Two tools reproduce this:

* :class:`CacheSimulator` — an explicit set-associative LRU cache fed
  with the (simulated) addresses each data path actually touches; used
  by the Fig 7 experiment to measure misses per packet.
* :class:`LocalityProfile` — a cheap analytic stand-in (misses per
  packet as a calibrated function of path and payload size) used by the
  rate sweeps, where simulating every line touch would dominate run
  time.  Tests cross-validate the two.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

__all__ = ["CacheSimulator", "LocalityProfile"]


class CacheSimulator:
    """A set-associative LRU cache over a simulated physical address space.

    Default geometry matches the testbed sensor's shared L2: 6 MB,
    8-way, 64-byte lines.
    """

    def __init__(
        self,
        size_bytes: int = 6 * 1024 * 1024,
        line_bytes: int = 64,
        ways: int = 8,
    ):
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.set_count = size_bytes // (line_bytes * ways)
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0

    def touch_line(self, line_address: int, count_miss: bool = True) -> bool:
        """Access one cache line by line-granular address; True on hit.

        ``count_miss=False`` installs the line without counting a miss
        (used to model prefetched lines).
        """
        set_index = line_address % self.set_count
        tag = line_address // self.set_count
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            cache_set = OrderedDict()
            self._sets[set_index] = cache_set
        if tag in cache_set:
            cache_set.move_to_end(tag)
            if count_miss:
                self.hits += 1
            return True
        if count_miss:
            self.misses += 1
        cache_set[tag] = True
        if len(cache_set) > self.ways:
            cache_set.popitem(last=False)
        return False

    def access(self, address: int, nbytes: int, prefetch: bool = False) -> int:
        """Access ``nbytes`` starting at byte ``address``; return misses.

        With ``prefetch=True`` a next-line hardware prefetcher is
        modelled: each demand miss also installs the following line, so
        long sequential runs take roughly one miss per two lines —
        matching how streaming copies behave on real cores.
        """
        if nbytes <= 0:
            return 0
        first = address // self.line_bytes
        last = (address + nbytes - 1) // self.line_bytes
        before = self.misses
        for line in range(first, last + 1):
            missed = not self.touch_line(line)
            if missed and prefetch and line < last:
                self.touch_line(line + 1, count_miss=False)
        return self.misses - before

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (cache contents are kept)."""
        self.hits = 0
        self.misses = 0


@dataclass
class LocalityProfile:
    """Analytic misses-per-packet for each data path.

    Values are calibrated against :class:`CacheSimulator` runs (see
    ``tests/kernelsim/test_cache.py``) and against Fig 7's reported
    numbers at low rate: Snort ≈25, Libnids ≈21, Scap ≈10 misses per
    packet.  ``misses_for`` scales mildly with payload size because
    larger segments touch more lines.
    """

    # Base misses per packet at the trace's mean packet size (~800B).
    pfpacket_reassembly_base: float = 21.0  # libnids-style: ring + stream buffer
    pfpacket_reassembly_extra: float = 4.0  # stream5 extra per-packet state
    pfpacket_snaplen_base: float = 6.0  # yaf: touches only 96 bytes
    scap_kernel_base: float = 7.0  # in-kernel write, contiguous region
    scap_user_base: float = 3.2  # same-core consumption soon after write

    reference_payload: float = 800.0

    def _scaled(self, base: float, payload_len: int) -> float:
        # Half the misses are per-packet metadata, half scale with bytes.
        scale = 0.5 + 0.5 * (payload_len / self.reference_payload)
        return base * scale

    def pfpacket_user_misses(self, payload_len: int, reassembles: bool, extra: bool = False) -> float:
        """Misses/packet for the PF_PACKET user path (snaplen or reassembly)."""
        if not reassembles:
            return self._scaled(self.pfpacket_snaplen_base, min(payload_len, 96))
        base = self.pfpacket_reassembly_base
        if extra:
            base += self.pfpacket_reassembly_extra
        return self._scaled(base, payload_len)

    def scap_kernel_misses(self, payload_len: int) -> float:
        """Misses/packet for Scap's in-kernel payload write."""
        return self._scaled(self.scap_kernel_base, payload_len)

    def scap_user_misses(self, payload_len: int) -> float:
        """Misses/packet for Scap's same-core user-level consumption."""
        return self._scaled(self.scap_user_base, payload_len)
