"""Address helpers: IPv4 addresses as integers, MAC addresses as bytes.

The simulator stores IPv4 addresses as plain ``int`` for speed (hashing a
28-bit five-tuple key is far cheaper than hashing strings), and converts
to dotted-quad strings only at display boundaries.
"""

from __future__ import annotations

import struct
from functools import lru_cache

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "mac_to_bytes",
    "bytes_to_mac",
    "BROADCAST_MAC",
]

BROADCAST_MAC = b"\xff\xff\xff\xff\xff\xff"


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 address to its 32-bit integer form."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet in {address!r}")
        value = (value << 8) | octet
    return value


@lru_cache(maxsize=4096)
def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(address: str) -> bytes:
    """Convert ``aa:bb:cc:dd:ee:ff`` notation to 6 raw bytes."""
    parts = address.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address: {address!r}")
    try:
        raw = bytes(int(part, 16) for part in parts)
    except ValueError as exc:
        raise ValueError(f"invalid MAC address: {address!r}") from exc
    return raw


def bytes_to_mac(raw: bytes) -> str:
    """Convert 6 raw bytes to ``aa:bb:cc:dd:ee:ff`` notation."""
    if len(raw) != 6:
        raise ValueError("MAC addresses are exactly 6 bytes")
    return ":".join(f"{byte:02x}" for byte in raw)


def _pack_ip(value: int) -> bytes:
    return struct.pack("!I", value)
