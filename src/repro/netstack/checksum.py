"""Internet checksum (RFC 1071) helpers.

The ones'-complement checksum is used by the IPv4 header and, combined
with a pseudo-header, by TCP and UDP.  The implementation folds 16-bit
words with end-around carry, matching the canonical C implementation.
"""

from __future__ import annotations

import struct

__all__ = ["ones_complement_sum", "internet_checksum", "pseudo_header"]


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Return the 16-bit ones'-complement sum of ``data``.

    ``initial`` allows chaining partial sums (e.g. pseudo-header first,
    then the transport segment).  Odd-length input is padded with a zero
    byte, as RFC 1071 specifies.
    """
    if len(data) % 2:
        data += b"\x00"
    total = initial
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries back into the low 16 bits.  Two folds suffice for any
    # input length that fits in memory.
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Return the internet checksum (complement of the folded sum)."""
    return (~ones_complement_sum(data, initial)) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by TCP/UDP checksums."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, protocol, length)
