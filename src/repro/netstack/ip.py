"""IPv4 header model, including fragmentation fields.

Scap's strict reassembly mode must normalize IP fragmentation, so the
header keeps the identification / flags / fragment-offset trio and the
packet model supports fragment emission and reassembly (see
:mod:`repro.netstack.fragments`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .addresses import int_to_ip
from .checksum import internet_checksum

__all__ = ["IPProtocol", "IPv4Header", "IPV4_MIN_HEADER_LEN"]

IPV4_MIN_HEADER_LEN = 20

_FLAG_DF = 0x2
_FLAG_MF = 0x1


class IPProtocol:
    """Well-known IP protocol numbers."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass
class IPv4Header:
    """An IPv4 header without options (IHL fixed at 5).

    ``total_length`` covers header plus payload, as on the wire.  The
    checksum field is computed on serialization when left at ``None`` and
    verified on parse.
    """

    src_ip: int = 0
    dst_ip: int = 0
    protocol: int = IPProtocol.TCP
    total_length: int = IPV4_MIN_HEADER_LEN
    identification: int = 0
    dont_fragment: bool = False
    more_fragments: bool = False
    fragment_offset: int = 0  # in 8-byte units, as on the wire
    ttl: int = 64
    tos: int = 0
    checksum: "int | None" = None

    @property
    def header_len(self) -> int:
        return IPV4_MIN_HEADER_LEN

    @property
    def payload_len(self) -> int:
        return self.total_length - IPV4_MIN_HEADER_LEN

    @property
    def is_fragment(self) -> bool:
        """True if this packet is any fragment other than a whole datagram."""
        return self.more_fragments or self.fragment_offset != 0

    def _flags_fragment_word(self) -> int:
        flags = 0
        if self.dont_fragment:
            flags |= _FLAG_DF
        if self.more_fragments:
            flags |= _FLAG_MF
        return (flags << 13) | (self.fragment_offset & 0x1FFF)

    def to_bytes(self) -> bytes:
        """Serialize to the 20-byte wire format, computing the checksum."""
        header = struct.pack(
            "!BBHHHBBHII",
            (4 << 4) | 5,
            self.tos,
            self.total_length,
            self.identification,
            self._flags_fragment_word(),
            self.ttl,
            self.protocol,
            0,
            self.src_ip,
            self.dst_ip,
        )
        checksum = internet_checksum(header) if self.checksum is None else self.checksum
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def parse(cls, data: bytes) -> "IPv4Header":
        """Parse the first 20 bytes of ``data`` as an IPv4 header."""
        if len(data) < IPV4_MIN_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src_ip,
            dst_ip,
        ) = struct.unpack_from("!BBHHHBBHII", data, 0)
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        if ihl != 5:
            raise ValueError("IPv4 options are not supported")
        flags = flags_frag >> 13
        return cls(
            src_ip=src_ip,
            dst_ip=dst_ip,
            protocol=protocol,
            total_length=total_length,
            identification=identification,
            dont_fragment=bool(flags & _FLAG_DF),
            more_fragments=bool(flags & _FLAG_MF),
            fragment_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            tos=tos,
            checksum=checksum,
        )

    def verify_checksum(self) -> bool:
        """Return True if the stored checksum matches the header contents."""
        if self.checksum is None:
            return False
        recomputed = IPv4Header(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            protocol=self.protocol,
            total_length=self.total_length,
            identification=self.identification,
            dont_fragment=self.dont_fragment,
            more_fragments=self.more_fragments,
            fragment_offset=self.fragment_offset,
            ttl=self.ttl,
            tos=self.tos,
        ).to_bytes()
        (expected,) = struct.unpack_from("!H", recomputed, 10)
        return expected == self.checksum

    def __str__(self) -> str:
        frag = f" frag@{self.fragment_offset * 8}+MF" if self.is_fragment else ""
        return (
            f"ip {int_to_ip(self.src_ip)} > {int_to_ip(self.dst_ip)} "
            f"proto={self.protocol} len={self.total_length}{frag}"
        )
