"""Ethernet II framing."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .addresses import BROADCAST_MAC, bytes_to_mac

__all__ = ["EtherType", "EthernetHeader", "ETHERNET_HEADER_LEN"]

ETHERNET_HEADER_LEN = 14


class EtherType:
    """Well-known EtherType values."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD


@dataclass(frozen=True)
class EthernetHeader:
    """An Ethernet II header (no VLAN tag, no FCS).

    MAC addresses are stored as raw 6-byte strings; the monitoring data
    path never interprets them beyond copying, so raw bytes are both the
    fastest and the most faithful representation.
    """

    dst_mac: bytes = BROADCAST_MAC
    src_mac: bytes = BROADCAST_MAC
    ethertype: int = EtherType.IPV4

    def __post_init__(self) -> None:
        if len(self.dst_mac) != 6 or len(self.src_mac) != 6:
            raise ValueError("MAC addresses are exactly 6 bytes")
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {self.ethertype}")

    def to_bytes(self) -> bytes:
        """Serialize to the 14-byte wire format."""
        return self.dst_mac + self.src_mac + struct.pack("!H", self.ethertype)

    @classmethod
    def parse(cls, data: bytes) -> "EthernetHeader":
        """Parse the first 14 bytes of ``data`` as an Ethernet header."""
        if len(data) < ETHERNET_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        (ethertype,) = struct.unpack_from("!H", data, 12)
        return cls(dst_mac=bytes(data[0:6]), src_mac=bytes(data[6:12]), ethertype=ethertype)

    def __str__(self) -> str:
        return (
            f"eth {bytes_to_mac(self.src_mac)} > {bytes_to_mac(self.dst_mac)} "
            f"type=0x{self.ethertype:04x}"
        )
