"""IPv4 fragmentation: splitting packets and reassembling datagrams.

Scap's strict reassembly mode normalizes IP fragmentation before TCP
processing (evasion attacks split TCP segments across IP fragments).
The generator uses :func:`fragment_packet` to emit evasive traffic and
the capture paths use :class:`IPFragmentReassembler` to rebuild it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ip import IPv4Header
from .packet import Packet
from .tcp import TCPHeader
from .udp import UDPHeader

__all__ = ["fragment_packet", "IPFragmentReassembler"]

_FRAGMENT_UNIT = 8


def fragment_packet(packet: Packet, fragment_size: int) -> "list[Packet]":
    """Split a TCP/UDP packet into IP fragments of ``fragment_size`` bytes.

    ``fragment_size`` is rounded down to a multiple of 8 (the wire
    requires fragment offsets in 8-byte units) and covers the IP payload
    — i.e. transport header plus data.  Returns ``[packet]`` unchanged
    when no split is needed.
    """
    if packet.ip is None:
        raise ValueError("cannot fragment a non-IP packet")
    fragment_size = max(_FRAGMENT_UNIT, (fragment_size // _FRAGMENT_UNIT) * _FRAGMENT_UNIT)
    if packet.tcp is not None:
        transport = packet.tcp.to_bytes(packet.ip.src_ip, packet.ip.dst_ip, packet.payload)
    elif packet.udp is not None:
        transport = packet.udp.to_bytes(packet.ip.src_ip, packet.ip.dst_ip, packet.payload)
    else:
        transport = b""
    ip_payload = transport + packet.payload
    if len(ip_payload) <= fragment_size:
        return [packet]

    fragments: List[Packet] = []
    offset = 0
    while offset < len(ip_payload):
        piece = ip_payload[offset : offset + fragment_size]
        more = offset + len(piece) < len(ip_payload)
        ip = IPv4Header(
            src_ip=packet.ip.src_ip,
            dst_ip=packet.ip.dst_ip,
            protocol=packet.ip.protocol,
            total_length=20 + len(piece),
            identification=packet.ip.identification,
            more_fragments=more,
            fragment_offset=offset // _FRAGMENT_UNIT,
            ttl=packet.ip.ttl,
        )
        fragments.append(
            Packet(
                eth=packet.eth,
                ip=ip,
                payload=piece,
                timestamp=packet.timestamp,
            )
        )
        offset += len(piece)
    return fragments


@dataclass
class _PartialDatagram:
    pieces: Dict[int, bytes] = field(default_factory=dict)
    total_len: Optional[int] = None
    first_seen: float = 0.0


class IPFragmentReassembler:
    """Reassembles IPv4 fragments into whole datagrams.

    Incomplete datagrams are expired after ``timeout`` virtual seconds,
    mirroring the kernel's ipfrag timer; ``expired_count`` reports how
    many were abandoned (a normalization statistic).
    """

    def __init__(self, timeout: float = 30.0):
        self._timeout = timeout
        self._partial: Dict[Tuple[int, int, int, int], _PartialDatagram] = {}
        self.expired_count = 0

    def push(self, packet: Packet) -> "Packet | None":
        """Feed one packet; return a complete packet when one finishes.

        Non-fragments pass straight through.  Returns None while a
        datagram is still incomplete.
        """
        self._expire(packet.timestamp)
        if packet.ip is None or not packet.ip.is_fragment:
            return packet
        key = (
            packet.ip.src_ip,
            packet.ip.dst_ip,
            packet.ip.protocol,
            packet.ip.identification,
        )
        partial = self._partial.get(key)
        if partial is None:
            partial = _PartialDatagram(first_seen=packet.timestamp)
            self._partial[key] = partial
        byte_offset = packet.ip.fragment_offset * _FRAGMENT_UNIT
        partial.pieces[byte_offset] = packet.payload
        if not packet.ip.more_fragments:
            partial.total_len = byte_offset + len(packet.payload)
        return self._try_complete(key, partial, packet)

    def _try_complete(
        self,
        key: Tuple[int, int, int, int],
        partial: _PartialDatagram,
        last_packet: Packet,
    ) -> "Packet | None":
        if partial.total_len is None:
            return None
        data = bytearray(partial.total_len)
        covered = 0
        for offset in sorted(partial.pieces):
            piece = partial.pieces[offset]
            if offset > covered:
                return None  # hole remains
            end = offset + len(piece)
            data[offset:end] = piece
            covered = max(covered, end)
        if covered < partial.total_len:
            return None
        del self._partial[key]
        return self._rebuild(bytes(data), last_packet)

    @staticmethod
    def _rebuild(ip_payload: bytes, template: Packet) -> Packet:
        assert template.ip is not None
        ip = IPv4Header(
            src_ip=template.ip.src_ip,
            dst_ip=template.ip.dst_ip,
            protocol=template.ip.protocol,
            total_length=20 + len(ip_payload),
            identification=template.ip.identification,
            ttl=template.ip.ttl,
        )
        tcp = udp = None
        payload = ip_payload
        if template.ip.protocol == 6:
            tcp, data_offset = TCPHeader.parse(ip_payload)
            payload = ip_payload[data_offset:]
        elif template.ip.protocol == 17:
            udp = UDPHeader.parse(ip_payload)
            payload = ip_payload[8:]
        return Packet(
            eth=template.eth,
            ip=ip,
            tcp=tcp,
            udp=udp,
            payload=payload,
            timestamp=template.timestamp,
        )

    def _expire(self, now: float) -> None:
        stale = [
            key
            for key, partial in self._partial.items()
            if now - partial.first_seen > self._timeout
        ]
        for key in stale:
            del self._partial[key]
            self.expired_count += 1

    @property
    def pending_count(self) -> int:
        """Number of datagrams still awaiting fragments."""
        return len(self._partial)
