"""Flow identity: five-tuples, canonical bidirectional keys, directions.

A *five-tuple* identifies one direction of a conversation; a *flow key*
is the canonical (order-independent) form shared by both directions, so
a single hash-table entry can track a bidirectional TCP connection the
way the Scap kernel module does.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

from .addresses import int_to_ip

__all__ = ["FiveTuple", "Direction", "flow_key", "CLIENT_TO_SERVER", "SERVER_TO_CLIENT"]

CLIENT_TO_SERVER = 0
SERVER_TO_CLIENT = 1


class Direction:
    """Direction constants relative to the connection initiator."""

    CLIENT_TO_SERVER = CLIENT_TO_SERVER
    SERVER_TO_CLIENT = SERVER_TO_CLIENT

    @staticmethod
    def opposite(direction: int) -> int:
        return 1 - direction


class FiveTuple(NamedTuple):
    """One direction of a conversation: (src ip, src port, dst ip, dst port, proto)."""

    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        """The same conversation seen from the other endpoint."""
        return FiveTuple(self.dst_ip, self.dst_port, self.src_ip, self.src_port, self.protocol)

    def canonical(self) -> "FiveTuple":
        """Order-independent form: the lexicographically smaller endpoint first."""
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port):
            return self
        return self.reversed()

    @property
    def is_canonical(self) -> bool:
        return (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port)

    # Hot path: tuples are immutable and repeat for every packet of a
    # flow, so the rendered label is memoized (bounded, LRU).
    @lru_cache(maxsize=8192)
    def __str__(self) -> str:
        return (
            f"{int_to_ip(self.src_ip)}:{self.src_port} > "
            f"{int_to_ip(self.dst_ip)}:{self.dst_port}/{self.protocol}"
        )


def flow_key(five_tuple: FiveTuple) -> FiveTuple:
    """Return the canonical bidirectional key for ``five_tuple``."""
    return five_tuple.canonical()
