"""TCP header model with flags and 32-bit sequence-space arithmetic.

Sequence numbers wrap at 2**32; every comparison in the reassembly
engines goes through :func:`seq_lt` / :func:`seq_diff` so wrap-around
streams are handled exactly like mid-space ones.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, pseudo_header
from .ip import IPProtocol

__all__ = [
    "TCPFlags",
    "TCPOption",
    "TCPHeader",
    "TCP_MIN_HEADER_LEN",
    "SEQ_MOD",
    "seq_add",
    "seq_diff",
    "seq_lt",
    "seq_lte",
    "seq_max",
]

TCP_MIN_HEADER_LEN = 20
SEQ_MOD = 2**32


class TCPFlags:
    """TCP flag bit masks."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    _NAMES = [(FIN, "F"), (SYN, "S"), (RST, "R"), (PSH, "P"), (ACK, "A"), (URG, "U")]

    @classmethod
    def to_str(cls, flags: int) -> str:
        return "".join(name for bit, name in cls._NAMES if flags & bit) or "."


def seq_add(seq: int, delta: int) -> int:
    """Advance ``seq`` by ``delta`` bytes, wrapping modulo 2**32."""
    return (seq + delta) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Return the signed distance ``a - b`` in sequence space.

    The result lies in [-2**31, 2**31); positive means ``a`` is ahead.
    """
    return ((a - b + 2**31) % SEQ_MOD) - 2**31


def seq_lt(a: int, b: int) -> bool:
    """True if ``a`` precedes ``b`` in sequence space."""
    return seq_diff(a, b) < 0


def seq_lte(a: int, b: int) -> bool:
    """True if ``a`` precedes or equals ``b`` in sequence space."""
    return seq_diff(a, b) <= 0


def seq_max(a: int, b: int) -> int:
    """Return whichever of ``a``/``b`` is later in sequence space."""
    return b if seq_lt(a, b) else a


class TCPOption:
    """Well-known TCP option kinds."""

    END = 0
    NOP = 1
    MSS = 2
    WINDOW_SCALE = 3
    SACK_PERMITTED = 4


@dataclass
class TCPHeader:
    """A TCP header, optionally carrying options.

    ``options`` is a list of ``(kind, payload)`` pairs; NOP/END padding
    is handled automatically on both sides.  Well-known kinds have
    convenience accessors (``mss``, ``window_scale``).
    """

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = TCPFlags.ACK
    window: int = 65535
    urgent: int = 0
    checksum: "int | None" = None
    options: "list[tuple[int, bytes]]" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.options is None:
            self.options = []
        # Hot-path flag tests, precomputed once: headers are never
        # mutated after construction (the fault planes build fresh
        # headers), and the kernel checks these on every packet.
        flags = self.flags
        self.syn = bool(flags & TCPFlags.SYN)
        self.fin = bool(flags & TCPFlags.FIN)
        self.rst = bool(flags & TCPFlags.RST)
        self.ack_flag = bool(flags & TCPFlags.ACK)

    @property
    def header_len(self) -> int:
        if not self.options:
            return TCP_MIN_HEADER_LEN
        raw = self._options_bytes()
        return TCP_MIN_HEADER_LEN + len(raw)

    def _options_bytes(self) -> bytes:
        out = bytearray()
        for kind, payload in self.options:
            if kind in (TCPOption.END, TCPOption.NOP):
                out.append(kind)
            else:
                out.append(kind)
                out.append(2 + len(payload))
                out.extend(payload)
        while len(out) % 4:
            out.append(TCPOption.NOP)
        return bytes(out)

    @property
    def mss(self) -> "int | None":
        """The MSS option value, if present."""
        for kind, payload in self.options:
            if kind == TCPOption.MSS and len(payload) == 2:
                return int.from_bytes(payload, "big")
        return None

    @property
    def window_scale(self) -> "int | None":
        """The window-scale option value, if present."""
        for kind, payload in self.options:
            if kind == TCPOption.WINDOW_SCALE and len(payload) == 1:
                return payload[0]
        return None

    @property
    def psh(self) -> bool:
        return bool(self.flags & TCPFlags.PSH)

    def to_bytes(self, src_ip: int = 0, dst_ip: int = 0, payload: bytes = b"") -> bytes:
        """Serialize, computing the checksum over the IPv4 pseudo-header.

        When the checksum field has been set explicitly it is emitted
        verbatim, which lets tests craft corrupted segments.
        """
        option_bytes = self._options_bytes() if self.options else b""
        data_offset_words = (TCP_MIN_HEADER_LEN + len(option_bytes)) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset_words << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        ) + option_bytes
        if self.checksum is None:
            pseudo = pseudo_header(src_ip, dst_ip, IPProtocol.TCP, len(header) + len(payload))
            checksum = internet_checksum(pseudo + header + payload)
        else:
            checksum = self.checksum
        return header[:16] + struct.pack("!H", checksum) + header[18:]

    @classmethod
    def parse(cls, data: bytes) -> "tuple[TCPHeader, int]":
        """Parse a TCP header; return ``(header, data_offset_bytes)``.

        Options are decoded into ``(kind, payload)`` pairs (padding
        NOP/END bytes dropped); malformed option lengths raise
        ValueError.
        """
        if len(data) < TCP_MIN_HEADER_LEN:
            raise ValueError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack_from("!HHIIBBHHH", data, 0)
        data_offset = (offset_reserved >> 4) * 4
        if data_offset < TCP_MIN_HEADER_LEN or data_offset > len(data):
            raise ValueError(f"invalid TCP data offset: {data_offset}")
        options: "list[tuple[int, bytes]]" = []
        cursor = TCP_MIN_HEADER_LEN
        while cursor < data_offset:
            kind = data[cursor]
            if kind == TCPOption.END:
                break
            if kind == TCPOption.NOP:
                cursor += 1
                continue
            if cursor + 1 >= data_offset:
                raise ValueError("truncated TCP option")
            length = data[cursor + 1]
            if length < 2 or cursor + length > data_offset:
                raise ValueError(f"invalid TCP option length: {length}")
            options.append((kind, bytes(data[cursor + 2 : cursor + length])))
            cursor += length
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            checksum=checksum,
            options=options,
        )
        return header, data_offset

    def __str__(self) -> str:
        return (
            f"tcp {self.src_port} > {self.dst_port} "
            f"[{TCPFlags.to_str(self.flags)}] seq={self.seq} ack={self.ack}"
        )
