"""UDP header model."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, pseudo_header
from .ip import IPProtocol

__all__ = ["UDPHeader", "UDP_HEADER_LEN"]

UDP_HEADER_LEN = 8


@dataclass
class UDPHeader:
    """A UDP header; ``length`` covers header plus payload."""

    src_port: int = 0
    dst_port: int = 0
    length: int = UDP_HEADER_LEN
    checksum: "int | None" = None

    @property
    def header_len(self) -> int:
        return UDP_HEADER_LEN

    @property
    def payload_len(self) -> int:
        return self.length - UDP_HEADER_LEN

    def to_bytes(self, src_ip: int = 0, dst_ip: int = 0, payload: bytes = b"") -> bytes:
        """Serialize, computing the checksum over the IPv4 pseudo-header."""
        header = struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)
        if self.checksum is None:
            pseudo = pseudo_header(src_ip, dst_ip, IPProtocol.UDP, self.length)
            checksum = internet_checksum(pseudo + header + payload)
            # RFC 768: a computed checksum of zero is sent as all ones.
            if checksum == 0:
                checksum = 0xFFFF
        else:
            checksum = self.checksum
        return header[:6] + struct.pack("!H", checksum)

    @classmethod
    def parse(cls, data: bytes) -> "UDPHeader":
        """Parse the first 8 bytes of ``data`` as a UDP header."""
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack_from("!HHHH", data, 0)
        if length < UDP_HEADER_LEN:
            raise ValueError(f"invalid UDP length: {length}")
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)

    def __str__(self) -> str:
        return f"udp {self.src_port} > {self.dst_port} len={self.length}"
