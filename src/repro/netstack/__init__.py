"""Packet-level substrate: headers, flows, fragmentation, pcap I/O."""

from .addresses import int_to_ip, ip_to_int
from .ethernet import EtherType, EthernetHeader
from .flows import CLIENT_TO_SERVER, SERVER_TO_CLIENT, Direction, FiveTuple, flow_key
from .fragments import IPFragmentReassembler, fragment_packet
from .ip import IPProtocol, IPv4Header
from .packet import Packet, make_tcp_packet, make_udp_packet
from .pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from .tcp import TCPFlags, TCPHeader, seq_add, seq_diff, seq_lt, seq_lte
from .udp import UDPHeader

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "EtherType",
    "EthernetHeader",
    "Direction",
    "FiveTuple",
    "flow_key",
    "CLIENT_TO_SERVER",
    "SERVER_TO_CLIENT",
    "IPFragmentReassembler",
    "fragment_packet",
    "IPProtocol",
    "IPv4Header",
    "Packet",
    "make_tcp_packet",
    "make_udp_packet",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "TCPFlags",
    "TCPHeader",
    "seq_add",
    "seq_diff",
    "seq_lt",
    "seq_lte",
    "UDPHeader",
]
