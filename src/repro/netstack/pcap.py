"""Classic libpcap file format (magic 0xa1b2c3d4) reader and writer.

Implemented from the format specification so generated traces can be
exchanged with tcpdump/wireshark, and external pcaps can feed the
simulator.  Both byte orders and both timestamp resolutions
(micro/nanosecond, magic 0xa1b23c4d) are supported on read; writes use
the native microsecond little-endian form.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

from .packet import Packet

__all__ = ["PcapWriter", "PcapReader", "write_pcap", "read_pcap", "LINKTYPE_ETHERNET"]

LINKTYPE_ETHERNET = 1

_MAGIC_USEC = 0xA1B2C3D4
_MAGIC_NSEC = 0xA1B23C4D
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass
class _Format:
    endian: str
    nanosecond: bool


class PcapWriter:
    """Streams packets into a pcap file.

    Use as a context manager::

        with PcapWriter(path) as writer:
            for packet in trace:
                writer.write(packet)
    """

    def __init__(self, path: str, snaplen: int = 65535):
        self._file: BinaryIO = open(path, "wb")
        self._snaplen = snaplen
        self._file.write(
            _GLOBAL_HEADER.pack(_MAGIC_USEC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET)
        )

    def write(self, packet: Packet) -> None:
        """Append one packet; frames longer than snaplen are truncated."""
        frame = packet.to_bytes()
        captured = frame[: self._snaplen]
        seconds = int(packet.timestamp)
        microseconds = int(round((packet.timestamp - seconds) * 1_000_000))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._file.write(
            _RECORD_HEADER.pack(seconds, microseconds, len(captured), len(frame))
        )
        self._file.write(captured)

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Iterates packets out of a pcap file."""

    def __init__(self, path: str):
        self._file: BinaryIO = open(path, "rb")
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            self._file.close()
            raise ValueError("truncated pcap global header")
        self._format = self._detect_format(header)
        fields = struct.unpack(self._format.endian + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]
        if self.linktype != LINKTYPE_ETHERNET:
            self._file.close()
            raise ValueError(f"unsupported linktype: {self.linktype}")
        self._record = struct.Struct(self._format.endian + "IIII")

    @staticmethod
    def _detect_format(header: bytes) -> _Format:
        (magic_le,) = struct.unpack_from("<I", header, 0)
        (magic_be,) = struct.unpack_from(">I", header, 0)
        if magic_le == _MAGIC_USEC:
            return _Format("<", False)
        if magic_le == _MAGIC_NSEC:
            return _Format("<", True)
        if magic_be == _MAGIC_USEC:
            return _Format(">", False)
        if magic_be == _MAGIC_NSEC:
            return _Format(">", True)
        raise ValueError(f"not a pcap file (magic 0x{magic_le:08x})")

    def __iter__(self) -> Iterator[Packet]:
        divisor = 1e9 if self._format.nanosecond else 1e6
        while True:
            record = self._file.read(self._record.size)
            if len(record) < self._record.size:
                return
            seconds, fraction, caplen, wire_len = self._record.unpack(record)
            frame = self._file.read(caplen)
            if len(frame) < caplen:
                return
            timestamp = seconds + fraction / divisor
            yield Packet.parse(frame, timestamp=timestamp, wire_len=wire_len)

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcap(path: str, packets: Iterable[Packet], snaplen: int = 65535) -> int:
    """Write ``packets`` to ``path``; return the number written."""
    count = 0
    with PcapWriter(path, snaplen=snaplen) as writer:
        for packet in packets:
            writer.write(packet)
            count += 1
    return count


def read_pcap(path: str) -> "list[Packet]":
    """Read all packets from ``path`` into a list."""
    with PcapReader(path) as reader:
        return list(reader)
