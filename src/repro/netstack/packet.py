"""The packet model used throughout the simulator.

A :class:`Packet` is a parsed representation — Ethernet + IPv4 +
TCP/UDP headers plus the transport payload — together with capture
metadata (timestamp, wire length).  Keeping packets parsed avoids
re-parsing in every pipeline stage; ``to_bytes``/``parse`` provide the
wire form for pcap I/O and for tests that must exercise real parsing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ethernet import ETHERNET_HEADER_LEN, EtherType, EthernetHeader
from .flows import FiveTuple
from .ip import IPV4_MIN_HEADER_LEN, IPProtocol, IPv4Header
from .tcp import TCPFlags, TCPHeader
from .udp import UDP_HEADER_LEN, UDPHeader

__all__ = ["Packet", "make_tcp_packet", "make_udp_packet"]


@dataclass
class Packet:
    """A captured packet: headers, payload, and capture metadata.

    ``timestamp`` is in virtual seconds.  ``wire_len`` is the on-wire
    frame length used for traffic-rate arithmetic; it defaults to the
    serialized length but replayers may override it (e.g. for snaplen
    experiments where only part of the frame was captured).
    """

    eth: EthernetHeader
    ip: "IPv4Header | None" = None
    tcp: "TCPHeader | None" = None
    udp: "UDPHeader | None" = None
    payload: bytes = b""
    timestamp: float = 0.0
    wire_len: int = 0
    #: 802.1Q VLAN id when the frame carried a tag (None otherwise).
    vlan_id: "int | None" = None
    #: Set when the frame's checksum is bad on the wire; the NIC drops
    #: such frames before RSS (counted in ``NICStats.fcs_errors``).
    fcs_corrupt: bool = False

    def __post_init__(self) -> None:
        if self.wire_len == 0:
            self.wire_len = self.header_len + len(self.payload)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def header_len(self) -> int:
        """Total length of all headers present."""
        length = ETHERNET_HEADER_LEN
        if self.vlan_id is not None:
            length += 4
        if self.ip is not None:
            length += IPV4_MIN_HEADER_LEN
        if self.tcp is not None:
            length += self.tcp.header_len
        elif self.udp is not None:
            length += UDP_HEADER_LEN
        return length

    @property
    def is_ip(self) -> bool:
        return self.ip is not None

    @property
    def is_tcp(self) -> bool:
        return self.tcp is not None

    @property
    def is_udp(self) -> bool:
        return self.udp is not None

    @property
    def src_port(self) -> int:
        if self.tcp is not None:
            return self.tcp.src_port
        if self.udp is not None:
            return self.udp.src_port
        return 0

    @property
    def dst_port(self) -> int:
        if self.tcp is not None:
            return self.tcp.dst_port
        if self.udp is not None:
            return self.udp.dst_port
        return 0

    @property
    def five_tuple(self) -> "FiveTuple | None":
        """The packet's directional five-tuple, or None for non-IP frames."""
        if self.ip is None:
            return None
        return FiveTuple(
            self.ip.src_ip, self.src_port, self.ip.dst_ip, self.dst_port, self.ip.protocol
        )

    @property
    def tcp_flags(self) -> int:
        return self.tcp.flags if self.tcp is not None else 0

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the full wire frame (headers recompute checksums)."""
        import struct as _struct

        if self.vlan_id is not None:
            # 802.1Q: the Ethernet type becomes 0x8100 followed by the
            # TCI and the encapsulated ethertype.
            inner_type = EtherType.IPV4 if self.ip is not None else self.eth.ethertype
            eth = EthernetHeader(self.eth.dst_mac, self.eth.src_mac, EtherType.VLAN)
            parts = [
                eth.to_bytes(),
                _struct.pack("!HH", self.vlan_id & 0x0FFF, inner_type),
            ]
        else:
            parts = [self.eth.to_bytes()]
        if self.ip is not None:
            parts.append(self.ip.to_bytes())
            if self.tcp is not None:
                parts.append(self.tcp.to_bytes(self.ip.src_ip, self.ip.dst_ip, self.payload))
            elif self.udp is not None:
                parts.append(self.udp.to_bytes(self.ip.src_ip, self.ip.dst_ip, self.payload))
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def parse(cls, data: bytes, timestamp: float = 0.0, wire_len: int = 0) -> "Packet":
        """Parse a wire frame into a Packet.

        Non-IPv4 frames keep only the Ethernet header and opaque payload.
        IP fragments with nonzero offset carry no parsed transport header.
        """
        eth = EthernetHeader.parse(data)
        offset = ETHERNET_HEADER_LEN
        vlan_id = None
        ethertype = eth.ethertype
        if ethertype == EtherType.VLAN:
            import struct as _struct

            if len(data) < offset + 4:
                raise ValueError("truncated 802.1Q tag")
            tci, ethertype = _struct.unpack_from("!HH", data, offset)
            vlan_id = tci & 0x0FFF
            offset += 4
            eth = EthernetHeader(eth.dst_mac, eth.src_mac, ethertype)
        if ethertype != EtherType.IPV4:
            return cls(
                eth=eth,
                payload=bytes(data[offset:]),
                timestamp=timestamp,
                wire_len=wire_len or len(data),
                vlan_id=vlan_id,
            )
        ip = IPv4Header.parse(data[offset:])
        offset += ip.header_len
        ip_start = offset - ip.header_len
        end = min(len(data), ip_start + ip.total_length)
        tcp = udp = None
        if ip.fragment_offset == 0 and ip.protocol == IPProtocol.TCP:
            tcp, data_offset = TCPHeader.parse(data[offset:end])
            offset += data_offset
        elif ip.fragment_offset == 0 and ip.protocol == IPProtocol.UDP:
            udp = UDPHeader.parse(data[offset:end])
            offset += UDP_HEADER_LEN
        return cls(
            eth=eth,
            ip=ip,
            tcp=tcp,
            udp=udp,
            payload=bytes(data[offset:end]),
            timestamp=timestamp,
            wire_len=wire_len or len(data),
            vlan_id=vlan_id,
        )

    def __str__(self) -> str:
        if self.tcp is not None and self.ip is not None:
            return f"[{self.timestamp:.6f}] {self.ip} {self.tcp} len={len(self.payload)}"
        if self.udp is not None and self.ip is not None:
            return f"[{self.timestamp:.6f}] {self.ip} {self.udp} len={len(self.payload)}"
        if self.ip is not None:
            return f"[{self.timestamp:.6f}] {self.ip} len={len(self.payload)}"
        return f"[{self.timestamp:.6f}] {self.eth} len={len(self.payload)}"


def make_tcp_packet(
    src_ip: int,
    src_port: int,
    dst_ip: int,
    dst_port: int,
    seq: int = 0,
    ack: int = 0,
    flags: int = TCPFlags.ACK,
    payload: bytes = b"",
    timestamp: float = 0.0,
    window: int = 65535,
    options: "list[tuple[int, bytes]] | None" = None,
) -> Packet:
    """Convenience constructor for a TCP/IPv4/Ethernet packet."""
    tcp = TCPHeader(
        src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags,
        window=window, options=options,
    )
    total = IPV4_MIN_HEADER_LEN + tcp.header_len + len(payload)
    ip = IPv4Header(src_ip=src_ip, dst_ip=dst_ip, protocol=IPProtocol.TCP, total_length=total)
    return Packet(eth=EthernetHeader(), ip=ip, tcp=tcp, payload=payload, timestamp=timestamp)


def make_udp_packet(
    src_ip: int,
    src_port: int,
    dst_ip: int,
    dst_port: int,
    payload: bytes = b"",
    timestamp: float = 0.0,
) -> Packet:
    """Convenience constructor for a UDP/IPv4/Ethernet packet."""
    udp = UDPHeader(
        src_port=src_port, dst_port=dst_port, length=UDP_HEADER_LEN + len(payload)
    )
    total = IPV4_MIN_HEADER_LEN + UDP_HEADER_LEN + len(payload)
    ip = IPv4Header(src_ip=src_ip, dst_ip=dst_ip, protocol=IPProtocol.UDP, total_length=total)
    return Packet(eth=EthernetHeader(), ip=ip, udp=udp, payload=payload, timestamp=timestamp)
