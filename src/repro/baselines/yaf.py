"""YAF-style flow metering (Inacio & Trammell, LISA 2010).

YAF is a libpcap flow exporter: it captures only the first 96 bytes of
each packet (enough for headers), keeps per-flow counters in a flow
table, performs *no* reassembly, and emits an IPFIX-like record when a
flow ends.  In Fig 3 it outperforms Libnids (nothing to reassemble,
small snaplen) but still saturates around 4 Gbit/s because every packet
crosses to user space.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..apps.base import MonitorApp
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..netstack.flows import FiveTuple
from ..netstack.packet import Packet

__all__ = ["YAFEngine", "YafFlowRecord", "YAF_SNAPLEN"]

YAF_SNAPLEN = 96


@dataclass
class YafFlowRecord:
    """One exported flow record (the IPFIX-ish output of YAF)."""

    five_tuple: FiveTuple
    packets: int = 0
    payload_bytes: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    fin_client: bool = False
    fin_server: bool = False


class YAFEngine:
    """User-level flow metering over 96-byte snapshots."""

    name = "yaf"

    def __init__(
        self,
        app: Optional[MonitorApp] = None,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        max_flows: int = 1_000_000,
        inactivity_timeout: float = 10.0,
    ):
        self.app = app or MonitorApp()
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.locality = locality or LocalityProfile()
        self.max_flows = max_flows
        self.inactivity_timeout = inactivity_timeout
        self._flows: "OrderedDict[FiveTuple, YafFlowRecord]" = OrderedDict()
        self.exported: List[YafFlowRecord] = []
        self.flows_rejected = 0
        self._last_sweep = 0.0

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> float:
        """Meter one captured packet; return user-stage cycles."""
        now = packet.timestamp
        self._sweep(now)
        cycles = (
            self.cost.hash_lookup
            + self.cost.flow_stats_update
            + self.cost.yaf_per_packet
        )
        five_tuple = packet.five_tuple
        if five_tuple is None:
            return cycles
        key = five_tuple.canonical()
        record = self._flows.get(key)
        if record is None:
            tcp = packet.tcp
            if (
                tcp is not None
                and not tcp.syn
                and not tcp.fin
                and not tcp.rst
                and not packet.payload
            ):
                # Trailing pure ACK of a just-exported flow: metering it
                # would produce a duplicate one-packet record.
                return cycles
            if len(self._flows) >= self.max_flows:
                self.flows_rejected += 1
                return cycles
            record = YafFlowRecord(five_tuple=five_tuple, first_seen=now)
            self._flows[key] = record
        record.packets += 1
        record.payload_bytes += len(packet.payload)
        record.last_seen = now
        self._flows.move_to_end(key)
        # The TCP state machine closes the flow on RST or once both
        # directions have FINed, like yaf's flow table.
        if packet.tcp is not None:
            if packet.tcp.fin:
                if five_tuple == record.five_tuple:
                    record.fin_client = True
                else:
                    record.fin_server = True
            if packet.tcp.rst or (record.fin_client and record.fin_server):
                self._export(key, record)
                cycles += self.cost.flow_export_record
        misses = self.locality.pfpacket_user_misses(len(packet.payload), reassembles=False)
        cycles += self.cost.miss_cost(misses)
        return cycles

    def _export(self, key: FiveTuple, record: YafFlowRecord) -> None:
        self._flows.pop(key, None)
        self.exported.append(record)
        self.app.on_stream_terminated(record.five_tuple, record.payload_bytes)

    def _sweep(self, now: float) -> None:
        if now - self._last_sweep < 0.05:
            return
        self._last_sweep = now
        while self._flows:
            key = next(iter(self._flows))
            record = self._flows[key]
            if now - record.last_seen <= self.inactivity_timeout:
                break
            self._export(key, record)

    def drain(self, now: float) -> None:
        """End of capture: export every still-tracked flow."""
        for key in list(self._flows):
            self._export(key, self._flows[key])

    @property
    def tracked_streams(self) -> int:
        return len(self._flows)
