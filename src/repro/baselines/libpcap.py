"""The PF_PACKET / libpcap capture path the baselines run on (§6.1).

Architecture, as on Linux: the NIC RSS-spreads packets over per-core RX
queues; the PF_PACKET kernel module runs in the software-interrupt
handler of each core and copies every captured packet into one shared
memory-mapped ring buffer; a (single-threaded) libpcap application
consumes the ring FIFO.  When the application falls behind and the ring
fills, the *kernel* drops packets — the classic "packets dropped by
kernel" counter.

Contrast with Scap: here every packet is copied to the ring and crosses
to user space before anyone can decide it was uninteresting.
"""

from __future__ import annotations

from typing import Optional

from ..filters.bpf import BPFFilter
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..kernelsim.host import Host
from ..kernelsim.server import QueueServer
from ..netstack.packet import Packet
from ..nic.nic import SimulatedNIC
from ..nic.rss import MICROSOFT_RSS_KEY

__all__ = ["PcapCapture", "DEFAULT_RING_BYTES"]

DEFAULT_RING_BYTES = 512 * 1024 * 1024  # §6.1: 512 MB PF_PACKET buffer


class PcapCapture:
    """The kernel half of a libpcap capture: softirq + shared ring.

    Usage per packet::

        enqueue_time = capture.kernel_stage(packet)
        if enqueue_time is None:        # dropped (ring full / RX overflow)
            ...
        else:
            cycles = <functional user-level processing>
            capture.user_stage(enqueue_time, caplen, cycles)
    """

    def __init__(
        self,
        core_count: int = 8,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        snaplen: int = 65535,
        bpf: Optional[BPFFilter] = None,
    ):
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.locality = locality or LocalityProfile()
        self.host = Host(core_count, self.cost)
        # Baselines use the stock RSS key (no symmetric tweak needed —
        # the single user thread consumes one shared ring anyway).
        self.nic = SimulatedNIC(queue_count=core_count, rss_key=MICROSOFT_RSS_KEY)
        self.ring = QueueServer(ring_bytes, name="pf_packet-ring")
        self.snaplen = snaplen
        self.bpf = bpf or BPFFilter()
        self.kernel_drops = 0
        self.rx_overflow_drops = 0
        self.filtered_out = 0
        self.packets_captured = 0
        self.packets_offered = 0
        self.bytes_offered = 0

    # ------------------------------------------------------------------
    def caplen(self, packet: Packet) -> int:
        """Captured length of ``packet`` under the configured snaplen."""
        return min(self.snaplen, packet.wire_len)

    def kernel_stage(self, packet: Packet) -> Optional[float]:
        """Softirq receive + copy into the ring; None if dropped."""
        self.packets_offered += 1
        self.bytes_offered += packet.wire_len
        queue = self.nic.classify(packet)
        if queue is None:  # baselines install no FDIR filters; defensive
            return None
        now = packet.timestamp
        server = self.host.softirq[queue]
        if not server.would_accept(now, 1):
            server.reject()
            self.rx_overflow_drops += 1
            return None
        caplen = self.caplen(packet)
        cycles = self.cost.softirq_per_packet + self.cost.ring_enqueue
        if not self.bpf.matches(packet):
            # In-kernel BPF rejects before the ring copy.
            self.filtered_out += 1
            server.push(now, 1, self.cost.seconds(cycles + 40.0))
            return None
        cycles += self.cost.copy_cost(caplen)
        kernel_finish = server.push(now, 1, self.cost.seconds(cycles))
        if not self.ring.would_accept(kernel_finish, caplen):
            self.ring.reject()
            self.kernel_drops += 1
            return None
        self.packets_captured += 1
        return kernel_finish

    def user_stage(self, enqueue_time: float, caplen: int, user_cycles: float) -> float:
        """Account the application's processing of one captured packet."""
        service = self.cost.seconds(
            user_cycles
            + self.cost.pcap_dispatch_per_packet
            + self.cost.user_wakeup_cost()
        )
        return self.ring.push(enqueue_time, caplen, service)

    # ------------------------------------------------------------------
    @property
    def dropped_packets(self) -> int:
        return self.kernel_drops + self.rx_overflow_drops

    def user_utilization(self, duration: float) -> float:
        """Busy fraction of the (single) application thread."""
        return self.ring.utilization(duration)

    def softirq_load(self, duration: float) -> float:
        """Fraction of total CPU spent in software interrupts."""
        return self.host.softirq_load(duration)
