"""Snort Stream5-style capture system.

Stream5 is Snort's target-based TCP reassembly preprocessor: the
operator assigns per-host/subnet reassembly policies; flows live in a
memcap-bounded table.  Relative to Libnids it carries extra per-packet
bookkeeping (flush policies, Snort's packet/session structures), which
shows up as slightly higher CPU and cache-miss numbers in the paper's
figures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..apps.base import MonitorApp
from ..core.constants import SCAP_TCP_STRICT, ReassemblyPolicy
from ..filters.bpf import BPFFilter
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import CostModel
from ..netstack.flows import FiveTuple
from .engine import UserStreamEngine, _UserFlow

__all__ = ["Stream5Engine", "STREAM5_DEFAULT_MAX_STREAMS"]

STREAM5_DEFAULT_MAX_STREAMS = 1_000_000


class Stream5Engine(UserStreamEngine):
    """Stream5: target-based policies, memcap'd session table."""

    name = "snort-stream5"

    def __init__(
        self,
        app: MonitorApp,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        max_streams: int = STREAM5_DEFAULT_MAX_STREAMS,
        cutoff: Optional[int] = None,
        inactivity_timeout: float = 10.0,
        default_policy: str = ReassemblyPolicy.LINUX,
    ):
        super().__init__(
            app,
            cost_model=cost_model,
            locality=locality,
            max_streams=max_streams,
            mode=SCAP_TCP_STRICT,
            policy=default_policy,
            require_syn=True,
            # Snort's per-packet overhead is dominated by its larger
            # session/packet structures: it shows up as extra cache
            # misses (Fig 7: ~25 vs Libnids' ~21) of comparable cost.
            extra_cycles_per_packet=0.0,
            extra_locality_misses=True,
            inactivity_timeout=inactivity_timeout,
            cutoff=cutoff,
        )
        #: Target-based policy table: (BPF class, policy), first match wins.
        self._policy_classes: List[Tuple[BPFFilter, str]] = []

    def add_target_policy(self, bpf_expression: str, policy: str) -> None:
        """Assign a reassembly policy to hosts matching ``bpf_expression``
        (Stream5's per-host/subnet target-based configuration)."""
        ReassemblyPolicy.winner(policy)  # validate
        self._policy_classes.append((BPFFilter(bpf_expression), policy))

    def policy_for(self, five_tuple: FiveTuple) -> str:
        """The target-based reassembly policy for a destination host."""
        for bpf, policy in self._policy_classes:
            if bpf.matches_five_tuple(five_tuple):
                return policy
        return self.policy

    def _reassembler(self, flow: _UserFlow, direction: int):
        reassembler = flow.reassemblers.get(direction)
        if reassembler is None:
            # Target-based: the policy of the *destination* host governs
            # how that host would resolve overlaps.
            from ..core.reassembly import TCPDirectionReassembler

            policy = self.policy_for(flow.tuple_for(direction))
            reassembler = TCPDirectionReassembler(mode=self.mode, policy=policy)
            flow.reassemblers[direction] = reassembler
        return reassembler
