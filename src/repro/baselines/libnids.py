"""Libnids-style capture system (user-level reassembly over libpcap).

Libnids emulates the Linux network stack in user space: it follows only
connections whose three-way handshake it observed, reassembles with the
Linux overlap policy, and stores flows in a fixed-size hash table.  The
paper's §6 uses Libnids v1.24 as the primary baseline.
"""

from __future__ import annotations

from typing import Optional

from ..apps.base import MonitorApp
from ..core.constants import SCAP_TCP_STRICT, ReassemblyPolicy
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import CostModel
from .engine import UserStreamEngine

__all__ = ["LibnidsEngine", "LIBNIDS_DEFAULT_MAX_STREAMS"]

# nids.c sizes its connection hash for on the order of a million flows;
# beyond that, new connections are not stored (observed in Fig 5).
LIBNIDS_DEFAULT_MAX_STREAMS = 1_000_000


class LibnidsEngine(UserStreamEngine):
    """Libnids: strict Linux-policy reassembly, SYN required."""

    name = "libnids"

    def __init__(
        self,
        app: MonitorApp,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        max_streams: int = LIBNIDS_DEFAULT_MAX_STREAMS,
        cutoff: Optional[int] = None,
        inactivity_timeout: float = 10.0,
    ):
        super().__init__(
            app,
            cost_model=cost_model,
            locality=locality,
            max_streams=max_streams,
            mode=SCAP_TCP_STRICT,
            policy=ReassemblyPolicy.LINUX,
            require_syn=True,
            # Libnids emulates the full Linux stack per packet; its
            # overhead is explicit cycles rather than cache footprint.
            extra_cycles_per_packet=760.0,
            extra_locality_misses=False,
            inactivity_timeout=inactivity_timeout,
            cutoff=cutoff,
        )
