"""User-level stream reassembly engine — the Libnids/Stream5 substrate.

Libnids and Snort's Stream5 both reassemble TCP at user level on top of
libpcap: every captured packet is looked up in a user-space flow table
and its payload copied *again* from the packet ring into a per-stream
buffer.  This class implements that architecture once, with the knobs
that distinguish the two tools (flow-table limit, target-based policy,
mid-stream pickup, per-packet overhead).  Functional work is real — the
same reassembly engine Scap uses in the kernel, just running in the
user stage and charged user-stage costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.base import MonitorApp
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..netstack.flows import CLIENT_TO_SERVER, FiveTuple
from ..netstack.fragments import IPFragmentReassembler
from ..netstack.packet import Packet
from ..core.constants import SCAP_TCP_STRICT, ReassemblyPolicy
from ..core.reassembly import TCPDirectionReassembler

__all__ = ["UserStreamEngine", "EngineCounters"]


@dataclass
class EngineCounters:
    packets_handled: int = 0
    packets_ignored: int = 0  # untracked flow (no SYN seen / table full)
    streams_tracked: int = 0
    streams_rejected_table_full: int = 0
    streams_terminated: int = 0
    delivered_bytes: int = 0
    discarded_cutoff_bytes: int = 0


@dataclass
class _UserFlow:
    client_tuple: FiveTuple
    last_access: float = 0.0
    established: bool = False
    syn_seen: bool = False
    fin_seen: List[bool] = field(default_factory=lambda: [False, False])
    closing: bool = False
    reassemblers: Dict[int, TCPDirectionReassembler] = field(default_factory=dict)
    delivered: List[int] = field(default_factory=lambda: [0, 0])
    cutoff_hit: List[bool] = field(default_factory=lambda: [False, False])

    def direction_of(self, five_tuple: FiveTuple) -> int:
        return CLIENT_TO_SERVER if five_tuple == self.client_tuple else 1

    def tuple_for(self, direction: int) -> FiveTuple:
        return self.client_tuple if direction == CLIENT_TO_SERVER else self.client_tuple.reversed()


class UserStreamEngine:
    """Flow tracking + TCP reassembly in user space."""

    name = "user-engine"

    def __init__(
        self,
        app: MonitorApp,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        max_streams: int = 1_000_000,
        mode: int = SCAP_TCP_STRICT,
        policy: str = ReassemblyPolicy.LINUX,
        require_syn: bool = True,
        extra_cycles_per_packet: float = 0.0,
        extra_locality_misses: bool = False,
        inactivity_timeout: float = 10.0,
        cutoff: Optional[int] = None,
    ):
        self.app = app
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.locality = locality or LocalityProfile()
        self.max_streams = max_streams
        self.mode = mode
        self.policy = policy
        self.require_syn = require_syn
        self.extra_cycles = extra_cycles_per_packet
        self.extra_misses = extra_locality_misses
        self.inactivity_timeout = inactivity_timeout
        self.cutoff = cutoff
        self.counters = EngineCounters()
        self._flows: "OrderedDict[FiveTuple, _UserFlow]" = OrderedDict()
        self._fragments = IPFragmentReassembler()
        self._last_sweep = 0.0

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> float:
        """Process one captured packet; return user-stage cycles."""
        now = packet.timestamp
        self.counters.packets_handled += 1
        cycles = self.cost.hash_lookup
        self._sweep(now)

        if packet.ip is not None and packet.ip.is_fragment:
            whole = self._fragments.push(packet)
            cycles += self.cost.user_reassembly_per_segment
            if whole is None:
                return cycles
            packet = whole

        five_tuple = packet.five_tuple
        if five_tuple is None:
            return cycles
        if packet.tcp is not None:
            cycles += self._handle_tcp(packet, five_tuple, now)
        elif packet.udp is not None:
            cycles += self._handle_udp(packet, five_tuple, now)
        cycles += self.extra_cycles
        misses = self.locality.pfpacket_user_misses(
            len(packet.payload), reassembles=True, extra=self.extra_misses
        )
        cycles += self.cost.miss_cost(misses)
        return cycles

    # ------------------------------------------------------------------
    def _lookup(self, five_tuple: FiveTuple, now: float, create: bool) -> Optional[_UserFlow]:
        key = five_tuple.canonical()
        flow = self._flows.get(key)
        if flow is not None:
            flow.last_access = now
            self._flows.move_to_end(key)
            return flow
        if not create:
            return None
        if len(self._flows) >= self.max_streams:
            # Unlike Scap, the table is a fixed-size structure: new
            # connections simply cannot be stored (§6.4).
            self.counters.streams_rejected_table_full += 1
            return None
        flow = _UserFlow(client_tuple=five_tuple, last_access=now)
        self._flows[key] = flow
        self.counters.streams_tracked += 1
        self.app.on_stream_created(five_tuple)
        return flow

    def _handle_tcp(self, packet: Packet, five_tuple: FiveTuple, now: float) -> float:
        tcp = packet.tcp
        assert tcp is not None
        cycles = 0.0
        if tcp.syn and not tcp.ack_flag:
            flow = self._lookup(five_tuple, now, create=True)
            if flow is not None:
                flow.syn_seen = True
                self._reassembler(flow, flow.direction_of(five_tuple)).set_isn(tcp.seq)
            return cycles
        flow = self._lookup(five_tuple, now, create=not self.require_syn)
        if flow is None:
            self.counters.packets_ignored += 1
            return cycles
        direction = flow.direction_of(five_tuple)
        if tcp.syn and tcp.ack_flag:
            self._reassembler(flow, direction).set_isn(tcp.seq)
            if flow.syn_seen:
                flow.established = True
            return cycles
        if tcp.rst:
            self._terminate(flow, now)
            return cycles
        if packet.payload:
            cycles += self.cost.user_reassembly_per_segment
            # Every captured byte is copied from the packet ring into
            # the flow's reassembly buffer, delivered or not — the
            # extra user-level copy Scap's in-kernel placement avoids.
            cycles += self.cost.user_reassembly_per_byte * len(packet.payload)
            delivered = self._reassembler(flow, direction).on_segment(
                tcp.seq, packet.payload
            )
            for piece in delivered:
                cycles += self._deliver(flow, direction, piece.data, piece.follows_hole)
        if tcp.fin:
            flow.fin_seen[direction] = True
            if flow.fin_seen[0] and flow.fin_seen[1]:
                flow.closing = True
        elif flow.closing and not packet.payload:
            self._terminate(flow, now)
        return cycles

    def _handle_udp(self, packet: Packet, five_tuple: FiveTuple, now: float) -> float:
        flow = self._lookup(five_tuple, now, create=True)
        if flow is None:
            self.counters.packets_ignored += 1
            return 0.0
        direction = flow.direction_of(five_tuple)
        return self._deliver(flow, direction, packet.payload, False)

    def _reassembler(self, flow: _UserFlow, direction: int) -> TCPDirectionReassembler:
        reassembler = flow.reassemblers.get(direction)
        if reassembler is None:
            reassembler = TCPDirectionReassembler(mode=self.mode, policy=self.policy)
            flow.reassemblers[direction] = reassembler
        return reassembler

    def _deliver(
        self, flow: _UserFlow, direction: int, data: bytes, had_hole: bool
    ) -> float:
        """Copy reassembled bytes to the stream buffer and hand to the app."""
        if not data:
            return 0.0
        if flow.cutoff_hit[direction]:
            self.counters.discarded_cutoff_bytes += len(data)
            return 0.0
        offset = flow.delivered[direction]
        if self.cutoff is not None:
            remaining = self.cutoff - offset
            if remaining <= 0:
                flow.cutoff_hit[direction] = True
                self.counters.discarded_cutoff_bytes += len(data)
                return 0.0
            if len(data) > remaining:
                self.counters.discarded_cutoff_bytes += len(data) - remaining
                data = data[:remaining]
                flow.cutoff_hit[direction] = True
        flow.delivered[direction] = offset + len(data)
        self.counters.delivered_bytes += len(data)
        cycles = self.app.data_cost_cycles(len(data))
        self.app.on_stream_data(
            flow.tuple_for(direction), direction, offset, data, had_hole
        )
        return cycles

    # ------------------------------------------------------------------
    def _terminate(self, flow: _UserFlow, now: float) -> None:
        key = flow.client_tuple.canonical()
        self._flows.pop(key, None)
        for direction, reassembler in list(flow.reassemblers.items()):
            for piece in reassembler.flush():
                self._deliver(flow, direction, piece.data, piece.follows_hole)
        self.counters.streams_terminated += 1
        self.app.on_stream_terminated(
            flow.client_tuple, flow.delivered[0] + flow.delivered[1]
        )
        self.app.termination_cost_cycles()

    def _sweep(self, now: float) -> None:
        if now - self._last_sweep < 0.05:
            return
        self._last_sweep = now
        while self._flows:
            key = next(iter(self._flows))
            flow = self._flows[key]
            if now - flow.last_access <= self.inactivity_timeout:
                break
            self._terminate(flow, now)

    def drain(self, now: float) -> None:
        """End of capture: flush everything still tracked."""
        for flow in list(self._flows.values()):
            self._terminate(flow, now)

    @property
    def tracked_streams(self) -> int:
        return len(self._flows)
