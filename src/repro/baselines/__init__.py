"""Baseline capture systems: libpcap path, Libnids, Stream5, YAF."""

from .engine import EngineCounters, UserStreamEngine
from .libnids import LIBNIDS_DEFAULT_MAX_STREAMS, LibnidsEngine
from .libpcap import DEFAULT_RING_BYTES, PcapCapture
from .stream5 import STREAM5_DEFAULT_MAX_STREAMS, Stream5Engine
from .system import PcapBasedSystem
from .yaf import YAF_SNAPLEN, YAFEngine, YafFlowRecord

__all__ = [
    "EngineCounters",
    "UserStreamEngine",
    "LIBNIDS_DEFAULT_MAX_STREAMS",
    "LibnidsEngine",
    "DEFAULT_RING_BYTES",
    "PcapCapture",
    "STREAM5_DEFAULT_MAX_STREAMS",
    "Stream5Engine",
    "PcapBasedSystem",
    "YAF_SNAPLEN",
    "YAFEngine",
    "YafFlowRecord",
]
