"""Driver tying a user-level engine to the PF_PACKET capture path."""

from __future__ import annotations

from typing import Any, Optional

from ..results import RunResult
from ..filters.bpf import BPFFilter
from ..kernelsim.cache import LocalityProfile
from ..kernelsim.costmodel import CostModel
from ..netstack.packet import Packet
from .libpcap import DEFAULT_RING_BYTES, PcapCapture

__all__ = ["PcapBasedSystem"]


class PcapBasedSystem:
    """A complete baseline monitor: PF_PACKET capture + user engine.

    ``engine`` is any object with ``handle_packet(packet) -> cycles``
    and ``drain(now)`` (Libnids, Stream5, YAF).
    """

    def __init__(
        self,
        engine: Any,
        name: Optional[str] = None,
        core_count: int = 8,
        cost_model: Optional[CostModel] = None,
        locality: Optional[LocalityProfile] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        snaplen: int = 65535,
        bpf: Optional[BPFFilter] = None,
    ):
        self.engine = engine
        self.name = name or getattr(engine, "name", "pcap-system")
        self.capture = PcapCapture(
            core_count=core_count,
            cost_model=cost_model,
            locality=locality,
            ring_bytes=ring_bytes,
            snaplen=snaplen,
            bpf=bpf,
        )

    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        """Run one packet through kernel capture + the user engine."""
        enqueue_time = self.capture.kernel_stage(packet)
        if enqueue_time is None:
            return
        cycles = self.engine.handle_packet(packet)
        self.capture.user_stage(enqueue_time, self.capture.caplen(packet), cycles)

    def run(self, workload, rate_bps: float, name: Optional[str] = None) -> RunResult:
        """Replay ``workload`` at ``rate_bps`` and collect measurements."""
        last_time = 0.0
        for packet in workload.replay(rate_bps):
            self.process_packet(packet)
            last_time = packet.timestamp
        self.engine.drain(last_time + 1.0)
        return self.result(rate_bps, name=name)

    # ------------------------------------------------------------------
    def result(self, rate_bps: float, name: Optional[str] = None) -> RunResult:
        """Reduce counters to a RunResult for this run."""
        capture = self.capture
        duration = capture.bytes_offered * 8 / rate_bps if rate_bps > 0 else 0.0
        engine_counters = getattr(self.engine, "counters", None)
        delivered = engine_counters.delivered_bytes if engine_counters else 0
        streams = (
            engine_counters.streams_tracked
            if engine_counters
            else len(getattr(self.engine, "exported", []))
            + getattr(self.engine, "tracked_streams", 0)
        )
        rejected = (
            engine_counters.streams_rejected_table_full
            if engine_counters
            else getattr(self.engine, "flows_rejected", 0)
        )
        result = RunResult(
            system=name or self.name,
            rate_bps=rate_bps,
            duration=duration,
            offered_packets=capture.packets_offered,
            offered_bytes=capture.bytes_offered,
            dropped_packets=capture.dropped_packets,
            discarded_packets=capture.filtered_out,
            delivered_bytes=delivered,
            user_utilization=capture.user_utilization(duration),
            softirq_load=capture.softirq_load(duration),
            streams_created=streams,
        )
        result.extra["streams_rejected_table_full"] = float(rejected)
        result.extra["kernel_ring_drops"] = float(capture.kernel_drops)
        result.extra["rx_overflow_drops"] = float(capture.rx_overflow_drops)
        return result
