"""Multi-pattern matching: Aho–Corasick automaton and pattern sets."""

from .aho_corasick import AhoCorasick, Match, StreamMatcher
from .patterns import load_patterns, save_patterns, synthetic_web_attack_patterns
from .snort_rules import SnortRule, extract_contents, parse_rule, parse_rules

__all__ = [
    "AhoCorasick",
    "Match",
    "StreamMatcher",
    "load_patterns",
    "save_patterns",
    "synthetic_web_attack_patterns",
    "SnortRule",
    "extract_contents",
    "parse_rule",
    "parse_rules",
]
