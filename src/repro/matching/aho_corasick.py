"""Aho–Corasick multi-pattern string matching.

The paper's pattern-matching application (§6.5) searches reassembled
streams for 2,120 web-attack strings using the Aho–Corasick algorithm.
This is a full implementation: trie construction, BFS failure links,
output-link merging, and a streaming matcher that carries its state
across chunk boundaries so patterns spanning consecutive chunks are
found when the caller supplies overlapping or continuing data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["Match", "AhoCorasick", "StreamMatcher"]


@dataclass(frozen=True)
class Match:
    """One pattern occurrence: ``end`` is the offset just past the match."""

    pattern_index: int
    pattern: bytes
    end: int

    @property
    def start(self) -> int:
        return self.end - len(self.pattern)


class AhoCorasick:
    """An Aho–Corasick automaton over byte strings.

    Build once with the full pattern set, then call :meth:`search` on
    buffers or :meth:`iter_matches` for streaming use.  The automaton is
    immutable after construction.
    """

    def __init__(self, patterns: Sequence[bytes]):
        if not patterns:
            raise ValueError("need at least one pattern")
        for pattern in patterns:
            if not pattern:
                raise ValueError("empty patterns are not allowed")
        self.patterns: List[bytes] = list(patterns)
        # State 0 is the root.  goto maps (state, byte) via per-state dicts.
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[List[int]] = [[]]
        self._build_trie()
        self._build_failure_links()

    def _build_trie(self) -> None:
        for index, pattern in enumerate(self.patterns):
            state = 0
            for byte in pattern:
                next_state = self._goto[state].get(byte)
                if next_state is None:
                    self._goto.append({})
                    self._fail.append(0)
                    self._output.append([])
                    next_state = len(self._goto) - 1
                    self._goto[state][byte] = next_state
                state = next_state
            self._output[state].append(index)

    def _build_failure_links(self) -> None:
        queue: deque = deque()
        for next_state in self._goto[0].values():
            self._fail[next_state] = 0
            queue.append(next_state)
        while queue:
            state = queue.popleft()
            for byte, next_state in self._goto[state].items():
                queue.append(next_state)
                fallback = self._fail[state]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[next_state] = self._goto[fallback].get(byte, 0)
                if self._fail[next_state] == next_state:
                    self._fail[next_state] = 0
                self._output[next_state] = (
                    self._output[next_state] + self._output[self._fail[next_state]]
                )

    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._goto)

    def step(self, state: int, byte: int) -> int:
        """Advance the automaton by one input byte."""
        goto = self._goto
        fail = self._fail
        while True:
            next_state = goto[state].get(byte)
            if next_state is not None:
                return next_state
            if state == 0:
                return 0
            state = fail[state]

    def iter_matches(
        self, data: bytes, state: int = 0, base_offset: int = 0
    ) -> Iterator[Tuple[Match, int]]:
        """Yield ``(match, state)`` pairs while scanning ``data``.

        ``state`` lets callers resume across buffer boundaries;
        ``base_offset`` shifts reported offsets into stream coordinates.
        """
        goto = self._goto
        fail = self._fail
        output = self._output
        patterns = self.patterns
        for position, byte in enumerate(data):
            while True:
                next_state = goto[state].get(byte)
                if next_state is not None:
                    state = next_state
                    break
                if state == 0:
                    break
                state = fail[state]
            if output[state]:
                end = base_offset + position + 1
                for pattern_index in output[state]:
                    yield Match(pattern_index, patterns[pattern_index], end), state

    def search(self, data: bytes) -> List[Match]:
        """All matches in one buffer."""
        return [match for match, _ in self.iter_matches(data)]

    def final_state(self, data: bytes, state: int = 0) -> int:
        """The automaton state after consuming ``data`` (for streaming)."""
        for byte in data:
            state = self.step(state, byte)
        return state


class StreamMatcher:
    """Streaming wrapper: feed chunks, matches carry stream offsets.

    Scap delivers streams as chunks; a matcher per stream direction
    keeps the automaton state between chunks so patterns spanning chunk
    boundaries are still found (the alternative — Scap's ``overlap``
    parameter — re-scans the tail of the previous chunk instead).
    """

    def __init__(self, automaton: AhoCorasick):
        self._automaton = automaton
        self._state = 0
        self._offset = 0
        self.matches: List[Match] = []

    def feed(self, chunk: bytes) -> List[Match]:
        """Scan one chunk; return (and record) new matches."""
        automaton = self._automaton
        goto = automaton._goto
        fail = automaton._fail
        output = automaton._output
        patterns = automaton.patterns
        state = self._state
        offset = self._offset
        new_matches: List[Match] = []
        for position, byte in enumerate(chunk):
            while True:
                next_state = goto[state].get(byte)
                if next_state is not None:
                    state = next_state
                    break
                if state == 0:
                    break
                state = fail[state]
            if output[state]:
                end = offset + position + 1
                for pattern_index in output[state]:
                    new_matches.append(Match(pattern_index, patterns[pattern_index], end))
        self._state = state
        self._offset = offset + len(chunk)
        self.matches.extend(new_matches)
        return new_matches

    def reset(self) -> None:
        """Restart the matcher at stream offset zero with no matches."""
        self._state = 0
        self._offset = 0
        self.matches.clear()
