"""Pattern sets for the detection experiments.

The paper extracts 2,120 strings from the ``content`` fields of the VRT
Snort "web attack" rules.  That rule set is proprietary-ish and not
shipped here, so :func:`synthetic_web_attack_patterns` generates a
structurally similar set: URL/shell-style byte strings of comparable
length statistics.  Every pattern contains uppercase and punctuation
characters that the traffic generator's filler alphabet (lowercase +
whitespace) can never produce, so planted occurrences are the only
occurrences — ground truth is exact.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = ["synthetic_web_attack_patterns", "load_patterns", "save_patterns"]

_STEMS = (
    b"/cgi-bin/",
    b"/scripts/..%255c",
    b"cmd.exe?/c+",
    b"/etc/passwd",
    b"<script>alert(",
    b"UNION+SELECT+",
    b"xp_cmdshell",
    b"../..//../",
    b"%u9090%u6858",
    b"wget%20http://",
    b"id=1;DROP%20TABLE",
    b"Content-Type:%00",
    b"/awstats.pl?configdir=",
    b"/phpmyadmin/main.php",
    b"PHPSESSID=INJECT",
)

_SUFFIX_ALPHABET = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_%/=+.?-"


def synthetic_web_attack_patterns(
    count: int = 2120, seed: int = 99, min_len: int = 6, max_len: int = 40
) -> List[bytes]:
    """Generate ``count`` distinct web-attack-like byte patterns."""
    rng = random.Random(seed)
    patterns: List[bytes] = []
    seen = set()
    while len(patterns) < count:
        stem = rng.choice(_STEMS)
        suffix_len = rng.randrange(4, max(5, max_len - len(stem)))
        suffix = bytes(rng.choice(_SUFFIX_ALPHABET) for _ in range(suffix_len))
        pattern = (stem + suffix)[:max_len]
        if len(pattern) < min_len or pattern in seen:
            continue
        seen.add(pattern)
        patterns.append(pattern)
    return patterns


def save_patterns(path: str, patterns: Sequence[bytes]) -> None:
    """Write one pattern per line, escaped so newlines round-trip."""
    with open(path, "wb") as handle:
        for pattern in patterns:
            handle.write(pattern.replace(b"\\", b"\\\\").replace(b"\n", b"\\n") + b"\n")


def _unescape(line: bytes) -> bytes:
    """Invert the save_patterns escaping with a left-to-right scan
    (a naive chained replace would corrupt literal backslash-n)."""
    out = bytearray()
    index = 0
    while index < len(line):
        byte = line[index]
        if byte == ord("\\") and index + 1 < len(line):
            nxt = line[index + 1]
            if nxt == ord("n"):
                out.append(ord("\n"))
                index += 2
                continue
            if nxt == ord("\\"):
                out.append(ord("\\"))
                index += 2
                continue
        out.append(byte)
        index += 1
    return bytes(out)


def load_patterns(path: str) -> List[bytes]:
    """Read patterns written by :func:`save_patterns`."""
    patterns: List[bytes] = []
    with open(path, "rb") as handle:
        for line in handle:
            line = line.rstrip(b"\n")
            if line:
                patterns.append(_unescape(line))
    return patterns
