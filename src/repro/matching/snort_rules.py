"""Extracting match patterns from Snort rule files.

The paper built its pattern set by extracting the ``content`` fields of
the 2,120 VRT "web attack" rules (§6.5).  This module does the same
extraction from any Snort-syntax rule file: it parses rule options,
collects every ``content:"..."`` value (handling Snort's escaping and
``|41 42 43|`` hex notation), and optionally honours the ``nocase``
modifier by lower-casing the pattern.

It is a parser for the *option* syntax that matters to pattern
extraction — not a full rule-semantics engine (no PCRE, no flowbits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

__all__ = ["SnortRule", "parse_rule", "parse_rules", "extract_contents"]


class SnortRuleError(ValueError):
    """Raised for malformed rule syntax."""


@dataclass
class SnortRule:
    """One parsed rule: the header string plus its option list."""

    action: str
    header: str
    options: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    @property
    def message(self) -> str:
        for name, value in self.options:
            if name == "msg" and value is not None:
                return value
        return ""

    def contents(self) -> List[bytes]:
        """All content patterns, with nocase applied where specified."""
        patterns: List[bytes] = []
        pending: Optional[bytes] = None
        for name, value in self.options:
            if name == "content" and value is not None:
                if pending is not None:
                    patterns.append(pending)
                pending = _decode_content(value)
            elif name == "nocase" and pending is not None:
                pending = pending.lower()
        if pending is not None:
            patterns.append(pending)
        return patterns


def _decode_content(text: str) -> bytes:
    """Decode a Snort content string: escapes and |hex| runs."""
    out = bytearray()
    index = 0
    while index < len(text):
        char = text[index]
        if char == "|":
            end = text.find("|", index + 1)
            if end < 0:
                raise SnortRuleError(f"unterminated hex block in {text!r}")
            hex_body = text[index + 1 : end].split()
            for token in hex_body:
                if len(token) != 2:
                    raise SnortRuleError(f"bad hex byte {token!r} in {text!r}")
                out.append(int(token, 16))
            index = end + 1
        elif char == "\\":
            if index + 1 >= len(text):
                raise SnortRuleError(f"dangling escape in {text!r}")
            out.append(ord(text[index + 1]))
            index += 2
        else:
            out.append(ord(char))
            index += 1
    return bytes(out)


def _split_options(body: str) -> List[Tuple[str, Optional[str]]]:
    """Split the ``( ... )`` option body on unquoted semicolons."""
    options: List[Tuple[str, Optional[str]]] = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\" and in_quotes:
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == ";" and not in_quotes:
            piece = "".join(current).strip()
            if piece:
                options.append(_parse_option(piece))
            current = []
            continue
        current.append(char)
    trailing = "".join(current).strip()
    if trailing:
        options.append(_parse_option(trailing))
    if in_quotes:
        raise SnortRuleError(f"unterminated quote in options: {body!r}")
    return options


def _parse_option(piece: str) -> Tuple[str, Optional[str]]:
    name, separator, value = piece.partition(":")
    name = name.strip()
    if not separator:
        return name, None
    value = value.strip()
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        value = value[1:-1]
    return name, value


def parse_rule(line: str) -> SnortRule:
    """Parse one rule line."""
    line = line.strip()
    open_paren = line.find("(")
    if open_paren < 0 or not line.endswith(")"):
        raise SnortRuleError(f"rule has no option body: {line!r}")
    header = line[:open_paren].strip()
    if not header:
        raise SnortRuleError("rule has no header")
    action = header.split()[0]
    options = _split_options(line[open_paren + 1 : -1])
    return SnortRule(action=action, header=header, options=options)


def parse_rules(lines: Iterable[str]) -> List[SnortRule]:
    """Parse a rule file: skips blanks and ``#`` comments."""
    rules: List[SnortRule] = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped))
    return rules


def extract_contents(lines: Iterable[str], min_len: int = 1) -> List[bytes]:
    """All content patterns from a rule file, deduplicated, in order —
    the §6.5 extraction."""
    seen = set()
    patterns: List[bytes] = []
    for rule in parse_rules(lines):
        for pattern in rule.contents():
            if len(pattern) >= min_len and pattern not in seen:
                seen.add(pattern)
                patterns.append(pattern)
    return patterns
