"""Pattern matching over reassembled streams — §3.3.2 and Fig 6.

Two functional modes, identical in result on intact input (a test
asserts this):

* ``"ac"`` — a real Aho–Corasick :class:`StreamMatcher` per stream
  direction scans every delivered byte.  Exact, used by tests, examples
  and small runs.
* ``"planted"`` — scores against the workload's planted ground truth: a
  planted occurrence counts as found iff its bytes were delivered at
  the right stream offset and compare equal.  Because the traffic
  generator's filler alphabet cannot produce a pattern by accident,
  this equals the AC result while running at C speed — which keeps the
  large rate sweeps tractable in pure Python.

In both modes the simulated cost is the same (Aho–Corasick cycles per
delivered byte); the mode only changes how the *functional* result is
computed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..matching.aho_corasick import AhoCorasick, StreamMatcher
from ..netstack.flows import FiveTuple
from ..traffic.trace import PlantedMatch
from .base import MonitorApp

__all__ = ["PatternMatchApp"]


class PatternMatchApp(MonitorApp):
    """Searches streams for a pattern set; counts distinct occurrences."""

    name = "pattern-match"

    def __init__(
        self,
        patterns: Sequence[bytes],
        mode: str = "ac",
        planted: Optional[Iterable[PlantedMatch]] = None,
        planted_tuples: Optional[Dict[int, FiveTuple]] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        super().__init__()
        if mode not in ("ac", "planted"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.mode = mode
        self._cost = cost_model
        self.patterns = list(patterns)
        self.matches_found = 0
        self._found_keys: Set[Tuple] = set()
        if mode == "ac":
            self._automaton = AhoCorasick(self.patterns)
            self._matchers: Dict[Tuple[FiveTuple, int], StreamMatcher] = {}
        else:
            if planted is None or planted_tuples is None:
                raise ValueError("planted mode needs the ground truth")
            # Index: directional five-tuple -> [(stream offset, pattern)].
            self._planted: Dict[FiveTuple, List[Tuple[int, bytes]]] = {}
            for match in planted:
                client_tuple = planted_tuples[match.flow_index]
                directional = (
                    client_tuple if match.direction == 0 else client_tuple.reversed()
                )
                self._planted.setdefault(directional, []).append(
                    (match.stream_offset, match.pattern)
                )
            # Per-stream tail of the previous chunk, so patterns that
            # straddle a chunk boundary are scored exactly like the
            # streaming Aho–Corasick matcher would find them.
            self._max_pattern = max(len(p) for p in self.patterns)
            self._tails: Dict[FiveTuple, Tuple[int, bytes]] = {}

    def reset(self) -> None:
        """Clear matches and matcher state for a fresh run."""
        super().reset()
        self.matches_found = 0
        self._found_keys.clear()
        if self.mode == "ac":
            self._matchers.clear()
        else:
            self._tails.clear()

    # ------------------------------------------------------------------
    def on_stream_data(
        self,
        five_tuple: FiveTuple,
        direction: int,
        offset: int,
        data: bytes,
        had_hole: bool = False,
    ) -> None:
        super().on_stream_data(five_tuple, direction, offset, data, had_hole)
        if self.mode == "ac":
            self._scan_ac(five_tuple, direction, offset, data, had_hole)
        else:
            self._scan_planted(five_tuple, offset, data, had_hole)

    def _scan_ac(
        self,
        five_tuple: FiveTuple,
        direction: int,
        offset: int,
        data: bytes,
        had_hole: bool = False,
    ) -> None:
        key = (five_tuple, direction)
        matcher = self._matchers.get(key)
        if matcher is None:
            matcher = StreamMatcher(self._automaton)
            matcher._offset = offset  # resume at the chunk's stream offset
            self._matchers[key] = matcher
        elif had_hole or matcher._offset != offset:
            # Chunk overlap or a hole: realign; a hole (or per-packet
            # delivery) resets the DFA state — matches cannot span it.
            if not had_hole and offset < matcher._offset:
                data = data[matcher._offset - offset :]
            else:
                matcher._state = 0
                matcher._offset = offset
        for match in matcher.feed(data):
            dedupe_key = (five_tuple, direction, match.start, match.pattern_index)
            if dedupe_key not in self._found_keys:
                self._found_keys.add(dedupe_key)
                self.matches_found += 1

    def _scan_planted(
        self, five_tuple: FiveTuple, offset: int, data: bytes, had_hole: bool = False
    ) -> None:
        planted_here = self._planted.get(five_tuple)
        if planted_here:
            # Stitch on the previous chunk's tail when contiguous, so a
            # boundary-straddling occurrence is still visible.  A hole
            # (or per-packet delivery) breaks the stitch, exactly as it
            # resets the streaming matcher's DFA state.
            tail_end, tail = self._tails.get(five_tuple, (None, b""))
            if not had_hole and tail_end == offset and tail:
                data = tail + data
                offset -= len(tail)
            end = offset + len(data)
            for plant_offset, pattern in planted_here:
                if plant_offset < offset or plant_offset + len(pattern) > end:
                    continue
                start = plant_offset - offset
                if data[start : start + len(pattern)] == pattern:
                    dedupe_key = (five_tuple, plant_offset, pattern)
                    if dedupe_key not in self._found_keys:
                        self._found_keys.add(dedupe_key)
                        self.matches_found += 1
            keep = self._max_pattern - 1
            self._tails[five_tuple] = (end, bytes(data[-keep:]) if keep else b"")

    def on_stream_terminated(self, five_tuple: FiveTuple, total_bytes: int) -> None:
        super().on_stream_terminated(five_tuple, total_bytes)
        if self.mode == "ac":
            self._matchers.pop((five_tuple, 0), None)
            self._matchers.pop((five_tuple, 1), None)

    # ------------------------------------------------------------------
    def data_cost_cycles(self, nbytes: int) -> float:
        """Aho-Corasick scanning cost for ``nbytes`` of stream data."""
        return (
            self._cost.pattern_match_per_byte * nbytes
            + self._cost.pattern_match_per_chunk
        )

    # ------------------------------------------------------------------
    @classmethod
    def for_trace(
        cls,
        trace,
        patterns: Sequence[bytes],
        mode: str = "planted",
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> "PatternMatchApp":
        """Build an app wired to ``trace``'s planted ground truth."""
        if mode == "ac":
            return cls(patterns, mode="ac", cost_model=cost_model)
        planted_tuples = {flow.index: flow.five_tuple for flow in trace.flows}
        return cls(
            patterns,
            mode="planted",
            planted=trace.planted_matches,
            planted_tuples=planted_tuples,
            cost_model=cost_model,
        )
