"""The monitoring-application interface.

The paper evaluates the same applications — flow-statistics export,
plain stream delivery, pattern matching — on top of Scap *and* on top
of Libnids/Stream5/YAF.  :class:`MonitorApp` is the common contract:
functional callbacks (what the application computes, which the
experiments score) plus cost hooks (the cycles it charges to the user
stage of whichever capture system hosts it).

Keys are directional five-tuples, so results can be joined with the
workload's ground truth regardless of the capture system.
"""

from __future__ import annotations

from typing import Set

from ..netstack.flows import FiveTuple

__all__ = ["MonitorApp"]


class MonitorApp:
    """Base class: counts delivered data; override to add behaviour."""

    name = "null"

    def __init__(self) -> None:
        self.delivered_bytes = 0
        self.streams_with_data: Set[FiveTuple] = set()
        self.streams_terminated = 0

    def reset(self) -> None:
        """Clear accumulated results for a fresh run."""
        self.delivered_bytes = 0
        self.streams_with_data.clear()
        self.streams_terminated = 0

    # ------------------------------------------------------------------
    # Functional callbacks
    # ------------------------------------------------------------------
    def on_stream_created(self, five_tuple: FiveTuple) -> None:
        """A new stream appeared (called once per connection)."""

    def on_stream_data(
        self,
        five_tuple: FiveTuple,
        direction: int,
        offset: int,
        data: bytes,
        had_hole: bool = False,
    ) -> None:
        """Reassembled stream bytes were delivered."""
        self.delivered_bytes += len(data)
        self.streams_with_data.add(five_tuple)

    def on_stream_terminated(self, five_tuple: FiveTuple, total_bytes: int) -> None:
        """A stream ended (close/reset/timeout)."""
        self.streams_terminated += 1

    # ------------------------------------------------------------------
    # Cost hooks (cycles charged to the hosting capture system)
    # ------------------------------------------------------------------
    def creation_cost_cycles(self) -> float:
        """Cycles this app charges per stream-creation event."""
        return 0.0

    def data_cost_cycles(self, nbytes: int) -> float:
        """Cycles this app charges to process ``nbytes`` of stream data."""
        return 0.0

    def termination_cost_cycles(self) -> float:
        """Cycles this app charges per stream-termination event."""
        return 0.0
