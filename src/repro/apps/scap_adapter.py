"""Wiring a :class:`MonitorApp` onto an Scap socket.

``attach_app`` registers the three callbacks plus matching cost hooks.
``attach_app_packet_based`` instead processes streams packet-by-packet
through ``scap_next_stream_packet`` (the Fig 6 "Scap with packets"
configuration): same stream grouping, but the application looks at
individual packet payloads, so matches spanning consecutive packets
can be missed.
"""

from __future__ import annotations

from ..core.api import ScapSocket, scap_next_stream_packet
from ..core.packet_delivery import ScapPacketHeader
from ..core.stream import StreamDescriptor
from .base import MonitorApp

__all__ = ["attach_app", "attach_app_packet_based"]


def attach_app(socket: ScapSocket, app: MonitorApp) -> None:
    """Register ``app``'s callbacks and cost hooks on ``socket``."""

    def on_creation(stream: StreamDescriptor) -> None:
        app.on_stream_created(stream.five_tuple)

    def on_data(stream: StreamDescriptor) -> None:
        app.on_stream_data(
            stream.five_tuple,
            stream.direction,
            stream.data_offset,
            stream.data,
            stream.data_had_hole,
        )

    def on_termination(stream: StreamDescriptor) -> None:
        # Scap fires one termination event per direction; apps written
        # against MonitorApp expect one per connection (as with the
        # baselines), so forward only the client direction's event.
        if stream.direction == 0:
            total = stream.stats.captured_bytes
            if stream.opposite is not None:
                total += stream.opposite.stats.captured_bytes
            app.on_stream_terminated(stream.five_tuple, total)

    socket.dispatch_creation(on_creation, cost=lambda event: app.creation_cost_cycles())
    socket.dispatch_data(on_data, cost=lambda event: app.data_cost_cycles(event.data_len))
    socket.dispatch_termination(
        on_termination, cost=lambda event: app.termination_cost_cycles()
    )


def attach_app_packet_based(socket: ScapSocket, app: MonitorApp) -> None:
    """Like :func:`attach_app`, but the data callback walks the stream's
    packets via scap_next_stream_packet (requires ``need_pkts``)."""
    if not socket.config.need_pkts:
        raise ValueError("packet-based delivery requires need_pkts=1")

    def on_creation(stream: StreamDescriptor) -> None:
        app.on_stream_created(stream.five_tuple)

    def on_data(stream: StreamDescriptor) -> None:
        header = ScapPacketHeader()
        while True:
            payload = scap_next_stream_packet(stream, header)
            if payload is None:
                break
            cursor = stream._packet_cursor - 1  # type: ignore[attr-defined]
            record = stream.packet_records[cursor]
            # Each packet is presented individually: matcher state does
            # not carry across packets (hence had_hole=True resets it).
            app.on_stream_data(
                stream.five_tuple,
                stream.direction,
                record.stream_offset,
                payload,
                had_hole=True,
            )

    def on_termination(stream: StreamDescriptor) -> None:
        if stream.direction == 0:
            total = stream.stats.captured_bytes
            if stream.opposite is not None:
                total += stream.opposite.stats.captured_bytes
            app.on_stream_terminated(stream.five_tuple, total)

    socket.dispatch_creation(on_creation, cost=lambda event: app.creation_cost_cycles())
    socket.dispatch_data(on_data, cost=lambda event: app.data_cost_cycles(event.data_len))
    socket.dispatch_termination(
        on_termination, cost=lambda event: app.termination_cost_cycles()
    )
