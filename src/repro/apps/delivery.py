"""Plain stream delivery — the Fig 4 workload.

Receives every reassembled stream with no further processing; measures
the pure cost of getting streams to user level (for the baselines this
includes the user-level reassembly copy Scap avoids).
"""

from __future__ import annotations

from typing import Dict

from ..netstack.flows import FiveTuple
from .base import MonitorApp

__all__ = ["StreamDeliveryApp"]


class StreamDeliveryApp(MonitorApp):
    """Counts delivered bytes per stream; zero application cost."""

    name = "stream-delivery"

    def __init__(self) -> None:
        super().__init__()
        self.bytes_per_stream: Dict[FiveTuple, int] = {}

    def reset(self) -> None:
        """Clear accumulated results for a fresh run."""
        super().reset()
        self.bytes_per_stream.clear()

    def on_stream_data(
        self,
        five_tuple: FiveTuple,
        direction: int,
        offset: int,
        data: bytes,
        had_hole: bool = False,
    ) -> None:
        super().on_stream_data(five_tuple, direction, offset, data, had_hole)
        self.bytes_per_stream[five_tuple] = (
            self.bytes_per_stream.get(five_tuple, 0) + len(data)
        )
