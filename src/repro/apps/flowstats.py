"""Flow-statistics export — the §3.3.1 use case and the Fig 3 workload.

The application needs no stream data at all: the capture system already
gathers per-flow counters, so a stream cutoff of zero (on Scap) lets it
export NetFlow-style records from the termination callback alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..netstack.flows import FiveTuple
from .base import MonitorApp

__all__ = ["FlowRecord", "FlowStatsApp"]


@dataclass
class FlowRecord:
    """One exported flow record."""

    five_tuple: FiveTuple
    total_bytes: int


class FlowStatsApp(MonitorApp):
    """Collects per-flow statistics, exporting a record per termination."""

    name = "flow-stats"

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        super().__init__()
        self._cost = cost_model
        self.records: List[FlowRecord] = []

    def reset(self) -> None:
        """Clear accumulated flow records for a fresh run."""
        super().reset()
        self.records.clear()

    def on_stream_terminated(self, five_tuple: FiveTuple, total_bytes: int) -> None:
        super().on_stream_terminated(five_tuple, total_bytes)
        self.records.append(FlowRecord(five_tuple, total_bytes))

    def data_cost_cycles(self, nbytes: int) -> float:
        # The app ignores data; only counter upkeep if any arrives.
        return self._cost.flow_stats_update

    def termination_cost_cycles(self) -> float:
        """Cost of emitting one flow record."""
        return self._cost.flow_export_record
