"""Reusable monitoring applications, runnable on Scap or the baselines."""

from .base import MonitorApp
from .delivery import StreamDeliveryApp
from .flowstats import FlowRecord, FlowStatsApp
from .httpmeta import HttpMetadataApp, HttpTransaction
from .patternmatch import PatternMatchApp
from .recorder import StreamRecorder
from .scap_adapter import attach_app, attach_app_packet_based

__all__ = [
    "MonitorApp",
    "StreamDeliveryApp",
    "FlowRecord",
    "FlowStatsApp",
    "HttpMetadataApp",
    "HttpTransaction",
    "PatternMatchApp",
    "StreamRecorder",
    "attach_app",
    "attach_app_packet_based",
]
