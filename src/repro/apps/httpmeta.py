"""HTTP transaction metadata extraction over reassembled streams.

The paper's introduction motivates stream capture with applications
that "reason about higher-level entities … HTTP headers".  This app is
that consumer: it parses request lines, status lines, and headers out
of the reassembled byte stream (impossible to do robustly on raw
packets: a header can straddle any number of segments), pairing each
request with the response on the opposite direction of the connection.

It is deliberately incremental: data arrives in chunks, and the parser
keeps at most one partial header block per stream direction — bounded
state, as a monitoring application must.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..kernelsim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..netstack.flows import FiveTuple
from .base import MonitorApp

__all__ = ["HttpTransaction", "HttpMetadataApp"]

_MAX_HEADER_BLOCK = 16 * 1024  # defend against unbounded header state


@dataclass
class HttpTransaction:
    """One parsed HTTP message head (request or response)."""

    five_tuple: FiveTuple
    direction: int
    is_request: bool
    method: str = ""
    target: str = ""
    status: int = 0
    version: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    stream_offset: int = 0

    @property
    def host(self) -> str:
        return self.headers.get("host", "")

    @property
    def content_length(self) -> Optional[int]:
        value = self.headers.get("content-length")
        try:
            return int(value) if value is not None else None
        except ValueError:
            return None


@dataclass
class _DirectionParser:
    """Incremental scanner for message heads in one stream direction."""

    buffer: bytearray = field(default_factory=bytearray)
    buffer_offset: int = 0  # stream offset of buffer[0]
    #: Bytes of entity body still to skip before the next message head.
    body_remaining: int = 0
    broken: bool = False  # lost sync (hole / oversized head)


class HttpMetadataApp(MonitorApp):
    """Extracts HTTP transactions from reassembled streams."""

    name = "http-metadata"

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        super().__init__()
        self._cost = cost_model
        self.transactions: List[HttpTransaction] = []
        self._parsers: Dict[Tuple[FiveTuple, int], _DirectionParser] = {}
        self.parse_errors = 0

    def reset(self) -> None:
        """Clear transactions and parser state for a fresh run."""
        super().reset()
        self.transactions.clear()
        self._parsers.clear()
        self.parse_errors = 0

    # ------------------------------------------------------------------
    def on_stream_data(
        self,
        five_tuple: FiveTuple,
        direction: int,
        offset: int,
        data: bytes,
        had_hole: bool = False,
    ) -> None:
        super().on_stream_data(five_tuple, direction, offset, data, had_hole)
        key = (five_tuple, direction)
        parser = self._parsers.get(key)
        if parser is None:
            parser = _DirectionParser(buffer_offset=offset)
            self._parsers[key] = parser
        if had_hole:
            # A hole desynchronizes framing: drop this direction rather
            # than misattribute headers.
            parser.broken = True
        if parser.broken:
            return
        expected = parser.buffer_offset + len(parser.buffer)
        if offset < expected:
            data = data[expected - offset :]  # overlap re-delivery
        elif offset > expected:
            parser.broken = True
            return
        parser.buffer.extend(data)
        self._drain(five_tuple, direction, parser)

    def _drain(
        self, five_tuple: FiveTuple, direction: int, parser: _DirectionParser
    ) -> None:
        while True:
            if parser.body_remaining:
                skip = min(parser.body_remaining, len(parser.buffer))
                del parser.buffer[:skip]
                parser.buffer_offset += skip
                parser.body_remaining -= skip
                if parser.body_remaining:
                    return  # body continues in a later chunk
            head_end = parser.buffer.find(b"\r\n\r\n")
            if head_end < 0:
                if len(parser.buffer) > _MAX_HEADER_BLOCK:
                    parser.broken = True
                    self.parse_errors += 1
                return
            block = bytes(parser.buffer[:head_end])
            consumed = head_end + 4
            del parser.buffer[:consumed]
            head_offset = parser.buffer_offset
            parser.buffer_offset += consumed
            transaction = self._parse_head(five_tuple, direction, block, head_offset)
            if transaction is None:
                parser.broken = True
                self.parse_errors += 1
                return
            self.transactions.append(transaction)
            body = transaction.content_length
            parser.body_remaining = body if body and body > 0 else 0

    def _parse_head(
        self, five_tuple: FiveTuple, direction: int, block: bytes, offset: int
    ) -> Optional[HttpTransaction]:
        try:
            text = block.decode("latin-1")
        except Exception:  # pragma: no cover - latin-1 never fails
            return None
        lines = text.split("\r\n")
        first = lines[0].split(" ", 2)
        transaction = HttpTransaction(
            five_tuple=five_tuple,
            direction=direction,
            is_request=False,
            stream_offset=offset,
        )
        if first[0].startswith("HTTP/"):
            if len(first) < 2 or not first[1].isdigit():
                return None
            transaction.version = first[0]
            transaction.status = int(first[1])
        elif len(first) == 3 and first[2].startswith("HTTP/"):
            transaction.is_request = True
            transaction.method, transaction.target, transaction.version = first
        else:
            return None
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            if not _:
                return None
            transaction.headers[name.strip().lower()] = value.strip()
        return transaction

    # ------------------------------------------------------------------
    def data_cost_cycles(self, nbytes: int) -> float:
        """Header scanning cost: a cheap linear pass over the bytes."""
        # A header scan is a cheap memchr-style pass over the bytes.
        return 0.8 * nbytes + 200.0

    # ------------------------------------------------------------------
    @property
    def requests(self) -> List[HttpTransaction]:
        return [t for t in self.transactions if t.is_request]

    @property
    def responses(self) -> List[HttpTransaction]:
        return [t for t in self.transactions if not t.is_request]

    def transactions_for(self, five_tuple: FiveTuple) -> List[HttpTransaction]:
        """All transactions on either direction of one connection."""
        canonical = five_tuple.canonical()
        return [
            t for t in self.transactions
            if t.five_tuple.canonical() == canonical
        ]
