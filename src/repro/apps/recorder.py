"""Time-machine recording: feed captured streams into a StreamStore.

:class:`StreamRecorder` is the glue between a live capture socket and
the persistent store (§6.6): bound to a socket via
``sc.set_store(recorder)`` / ``scap_set_store``, it interposes on the
runtime's data callback, turning every delivered chunk into a
:class:`~repro.store.segment.StreamRecord` appended to the store.  The
kernel-enforced cutoff has already trimmed each stream to its head, so
what reaches the store is exactly the Time-Machine working set.

The recorder composes with a normal application: it wraps whatever
data callback is already registered, records, then forwards, so e.g. a
pattern matcher keeps running while recording happens underneath.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.runtime import ScapRuntime
from ..core.stream import StreamDescriptor
from ..store.segment import StreamRecord
from ..store.store import StreamStore

__all__ = ["StreamRecorder"]


class StreamRecorder:
    """Records every delivered stream chunk into a :class:`StreamStore`.

    ``retention_every_bytes`` triggers a retention sweep each time that
    many new bytes have been recorded (None = only on ``finish``), so
    long captures stay inside their budget while running.
    """

    def __init__(
        self,
        store: StreamStore,
        retention_every_bytes: Optional[int] = None,
    ):
        self.store = store
        self.retention_every_bytes = retention_every_bytes
        self.recorded_records = 0
        self.recorded_bytes = 0
        #: Next expected stream offset per descriptor, to dedup overlap
        #: bytes re-delivered at chunk boundaries.
        self._next_offset: Dict[int, int] = {}
        self._since_sweep = 0
        self._runtime: Optional[ScapRuntime] = None

    # ------------------------------------------------------------------
    def bind(self, runtime: ScapRuntime) -> None:
        """Interpose on ``runtime``'s callbacks (called by the socket)."""
        self._runtime = runtime
        if runtime.sanitizers is not None:
            self.store.attach_sanitizers(runtime.sanitizers)
        inner_data = runtime.callbacks.on_data
        inner_termination = runtime.callbacks.on_termination

        def recording_on_data(stream: StreamDescriptor) -> None:
            self.record(stream)
            if inner_data is not None:
                inner_data(stream)

        def recording_on_termination(stream: StreamDescriptor) -> None:
            self._next_offset.pop(stream.stream_id, None)
            if inner_termination is not None:
                inner_termination(stream)

        runtime.callbacks.on_data = recording_on_data
        runtime.callbacks.on_termination = recording_on_termination

    # ------------------------------------------------------------------
    def record(self, stream: StreamDescriptor) -> None:
        """Append the chunk currently delivered on ``stream``."""
        data = stream.data
        offset = stream.data_offset
        if not data:
            return
        # Chunk overlap re-delivers the tail of the previous chunk;
        # store each stream byte once.
        expected = self._next_offset.get(stream.stream_id)
        if expected is not None and offset < expected:
            skip = expected - offset
            if skip >= len(data):
                return
            data = data[skip:]
            offset = expected
        self._next_offset[stream.stream_id] = offset + len(data)
        runtime = self._runtime
        event = runtime.workers.current_event if runtime is not None else None
        timestamp = event.created_at if event is not None else 0.0
        record = StreamRecord(
            five_tuple=stream.five_tuple,
            direction=stream.direction,
            stream_offset=offset,
            timestamp=timestamp,
            data=bytes(data),
            priority=stream.priority,
        )
        self.store.append(record, core=self._core_for(stream))
        self.recorded_records += 1
        self.recorded_bytes += len(data)
        if self.retention_every_bytes is not None:
            self._since_sweep += len(data)
            if self._since_sweep >= self.retention_every_bytes:
                self._since_sweep = 0
                self.store.enforce_retention(timestamp)

    def _core_for(self, stream: StreamDescriptor) -> int:
        """Map a stream to a writer queue, same-connection affinity."""
        connection_id = (
            stream.opposite.stream_id
            if stream.direction and stream.opposite is not None
            else stream.stream_id
        )
        return (connection_id >> 1) % self.store.writer.cores

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Flush the store after a capture run (socket calls this)."""
        self._next_offset.clear()
        self.store.flush()
        if self.store.retention_policy.enabled:
            self.store.enforce_retention()

    def close(self) -> None:
        """Seal and close the underlying store."""
        self.store.close()
