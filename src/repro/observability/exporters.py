"""Exporters: Prometheus text format and JSON snapshots.

Both walk the registry's families and serialize every child.  They are
read-only and safe to call mid-run; the timestamp attached to a JSON
snapshot is injected by the caller (simulated clock), never read from
the wall clock.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional

from .registry import Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus", "snapshot", "to_json"]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(names, values, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines = []
    for name in sorted(registry.families):
        family = registry.families[name]
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for label_values, child in family.samples():
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    le = _label_str(
                        family.label_names, label_values,
                        f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                plain = _label_str(family.label_names, label_values)
                lines.append(f"{name}_sum{plain} {_format_value(child.sum)}")
                lines.append(f"{name}_count{plain} {child.total}")
            else:
                plain = _label_str(family.label_names, label_values)
                lines.append(f"{name}{plain} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry, now: Optional[float] = None) -> Dict:
    """The registry as a plain dict (for JSON export / programmatic use)."""
    out: Dict = {"metrics": {}}
    if now is not None:
        out["time"] = now
    for name in sorted(registry.families):
        family = registry.families[name]
        values = []
        for label_values, child in family.samples():
            labels = dict(zip(family.label_names, label_values))
            if isinstance(child, Histogram):
                values.append(
                    {
                        "labels": labels,
                        "buckets": [
                            {"le": bound if bound != math.inf else "+Inf",
                             "count": cumulative}
                            for bound, cumulative in child.cumulative()
                        ],
                        "sum": child.sum,
                        "count": child.total,
                    }
                )
            else:
                value = child.value
                if isinstance(child, Gauge) or value != int(value):
                    values.append({"labels": labels, "value": value})
                else:
                    values.append({"labels": labels, "value": int(value)})
        out["metrics"][name] = {
            "type": family.kind,
            "help": family.help,
            "values": values,
        }
    return out


def to_json(
    registry: MetricsRegistry, now: Optional[float] = None, indent: Optional[int] = None
) -> str:
    """JSON text of :func:`snapshot`."""
    return json.dumps(snapshot(registry, now), indent=indent)
