"""Exporters: Prometheus text format and JSON snapshots.

Both walk the registry's families and serialize every child.  They are
read-only and safe to call mid-run; the timestamp attached to a JSON
snapshot is injected by the caller (simulated clock), never read from
the wall clock.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from .registry import Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus", "snapshot", "to_json", "parity_errors"]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text format: backslash, newline, quote."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", "n": "\n", '"': '"'}.get(nxt, ch + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_label_body(body: str) -> List[Tuple[str, str]]:
    """Parse ``k="v",...`` (no braces), honouring value escapes."""
    pairs: List[Tuple[str, str]] = []
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq]
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        j = eq + 2
        raw: List[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                raw.append(body[j : j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        pairs.append((key, _unescape_label_value("".join(raw))))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return pairs


def _label_str(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines = []
    for name in sorted(registry.families):
        family = registry.families[name]
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for label_values, child in family.samples():
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    le = _label_str(
                        family.label_names, label_values,
                        f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                plain = _label_str(family.label_names, label_values)
                lines.append(f"{name}_sum{plain} {_format_value(child.sum)}")
                lines.append(f"{name}_count{plain} {child.total}")
            else:
                plain = _label_str(family.label_names, label_values)
                lines.append(f"{name}{plain} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry, now: Optional[float] = None) -> Dict:
    """The registry as a plain dict (for JSON export / programmatic use)."""
    out: Dict = {"metrics": {}}
    if now is not None:
        out["time"] = now
    for name in sorted(registry.families):
        family = registry.families[name]
        values = []
        for label_values, child in family.samples():
            labels = dict(zip(family.label_names, label_values))
            if isinstance(child, Histogram):
                values.append(
                    {
                        "labels": labels,
                        "buckets": [
                            {"le": bound if bound != math.inf else "+Inf",
                             "count": cumulative}
                            for bound, cumulative in child.cumulative()
                        ],
                        "sum": child.sum,
                        "count": child.total,
                    }
                )
            else:
                value = child.value
                if isinstance(child, Gauge) or value != int(value):
                    values.append({"labels": labels, "value": value})
                else:
                    values.append({"labels": labels, "value": int(value)})
        out["metrics"][name] = {
            "type": family.kind,
            "help": family.help,
            "values": values,
        }
    return out


def to_json(
    registry: MetricsRegistry, now: Optional[float] = None, indent: Optional[int] = None
) -> str:
    """JSON text of :func:`snapshot`."""
    return json.dumps(snapshot(registry, now), indent=indent)


def parity_errors(registry: MetricsRegistry) -> List[str]:
    """Cross-check the Prometheus and JSON exporters against each other.

    Re-parses :func:`to_prometheus`'s text output into samples and
    compares every one against :func:`snapshot` (and vice versa); any
    value present in one export but missing or different in the other
    is returned as a human-readable mismatch line.  An empty list means
    the two exporters agree sample-for-sample.
    """
    _LabelKey = Tuple[Tuple[str, str], ...]
    prometheus: Dict[Tuple[str, _LabelKey], float] = {}
    for line in to_prometheus(registry).splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value_text = line.rpartition(" ")
        name = name_part
        labels: _LabelKey = ()
        if "{" in name_part:
            name, _, body = name_part.partition("{")
            labels = tuple(sorted(_parse_label_body(body[:-1])))
        value = math.inf if value_text == "+Inf" else float(value_text)
        prometheus[(name, labels)] = value

    errors: List[str] = []

    def check(name: str, labels: List[Tuple[str, str]], expected: float) -> None:
        key = (name, tuple(sorted(labels)))
        actual = prometheus.pop(key, None)
        if actual is None:
            errors.append(f"{name}{dict(labels)}: missing from Prometheus export")
        elif not math.isclose(actual, expected, rel_tol=1e-9, abs_tol=0.0):
            errors.append(
                f"{name}{dict(labels)}: prometheus={actual!r} != json={expected!r}"
            )

    for name, family in snapshot(registry)["metrics"].items():
        for entry in family["values"]:
            labels = list(entry["labels"].items())
            if family["type"] == "histogram":
                for bucket in entry["buckets"]:
                    bound = (
                        "+Inf" if bucket["le"] == "+Inf" else _format_value(bucket["le"])
                    )
                    check(f"{name}_bucket", labels + [("le", bound)], bucket["count"])
                check(f"{name}_sum", labels, entry["sum"])
                check(f"{name}_count", labels, entry["count"])
            else:
                check(name, labels, entry["value"])
    for name, labels in prometheus:
        errors.append(f"{name}{dict(labels)}: missing from JSON snapshot")
    return errors
