"""Time-series telemetry: cadenced snapshots of the metrics registry.

Metrics answer "how many so far"; the telemetry ring answers "how fast
right now" and "what did the last N intervals look like".  On each
sample it flattens every registry child to a ``family{labels}`` key
(histograms contribute ``_sum`` and ``_count`` series), retains a
bounded history, and derives per-second rates from counter deltas
between the newest two samples.

Clock discipline matches the rest of the observability layer: sample
times are injected by the caller.  Library runs pass the simulated
clock (packet timestamps), the daemon's ticker passes
``time.monotonic()``; the ring itself never reads wall time.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .exporters import _label_str
from .registry import Gauge, Histogram, MetricsRegistry

__all__ = ["TelemetrySample", "TelemetryRing"]


@dataclass
class TelemetrySample:
    """One flattened snapshot: injected time plus ``key -> value``."""

    time: float
    values: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The sample as a plain dict (wire/JSON shape)."""
        return {"time": self.time, "values": dict(self.values)}


def _flatten(registry: MetricsRegistry) -> (
    "tuple[Dict[str, float], Dict[str, str], Dict[str, List[str]]]"
):
    """Flatten the registry to sample keys, their kinds, and family map."""
    values: Dict[str, float] = {}
    kinds: Dict[str, str] = {}
    families: Dict[str, List[str]] = {}
    for name, family in list(registry.families.items()):
        keys = families.setdefault(name, [])
        for label_values, child in family.samples():
            labels = _label_str(family.label_names, label_values)
            if isinstance(child, Histogram):
                for suffix, value in (
                    ("_sum", child.sum),
                    ("_count", float(child.total)),
                ):
                    key = f"{name}{suffix}{labels}"
                    values[key] = value
                    kinds[key] = "counter"
                    keys.append(key)
            else:
                key = f"{name}{labels}"
                values[key] = float(child.value)
                kinds[key] = "gauge" if isinstance(child, Gauge) else "counter"
                keys.append(key)
    return values, kinds, families


class TelemetryRing:
    """Bounded ring of registry snapshots with derived rates.

    ``sample`` is unconditional; ``maybe_sample`` applies the cadence
    so hot loops can call it every batch and still pay one snapshot
    per interval.  All access is lock-protected: the daemon's ticker
    thread samples while request handlers read history.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        cadence: float = 1.0,
        capacity: int = 512,
    ):
        if cadence <= 0:
            raise ValueError("telemetry cadence must be positive")
        if capacity < 2:
            raise ValueError("telemetry capacity must be at least 2")
        self.registry = registry
        self.cadence = cadence
        self.capacity = capacity
        self._samples: Deque[TelemetrySample] = deque(maxlen=capacity)
        self._kinds: Dict[str, str] = {}
        self._families: Dict[str, List[str]] = {}
        self._lock = threading.Lock()
        self.sampled = 0
        self.skipped = 0

    def sample(self, now: float) -> TelemetrySample:
        """Snapshot the registry at injected time ``now``."""
        values, kinds, families = _flatten(self.registry)
        entry = TelemetrySample(time=now, values=values)
        with self._lock:
            self._samples.append(entry)
            self._kinds.update(kinds)
            self._families = families
            self.sampled += 1
        return entry

    def maybe_sample(self, now: float) -> Optional[TelemetrySample]:
        """Snapshot only if at least one cadence has elapsed."""
        with self._lock:
            if self._samples and now - self._samples[-1].time < self.cadence:
                self.skipped += 1
                return None
        return self.sample(now)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def history(self) -> List[TelemetrySample]:
        """All retained samples, oldest first."""
        with self._lock:
            return list(self._samples)

    def latest(self) -> Optional[TelemetrySample]:
        """The most recent sample, or None before the first one."""
        with self._lock:
            return self._samples[-1] if self._samples else None

    def window(self) -> "tuple[Optional[TelemetrySample], Optional[TelemetrySample]]":
        """The last two samples ``(previous, latest)``; Nones until both exist."""
        with self._lock:
            if len(self._samples) < 2:
                return None, None
            return self._samples[-2], self._samples[-1]

    def rates(self) -> Dict[str, float]:
        """Per-second rates of every counter key over the last interval.

        Empty until two samples exist or while the interval is zero
        seconds wide.  Counter resets (new value below old) clamp to 0.
        """
        previous, latest = self.window()
        if previous is None or latest is None:
            return {}
        dt = latest.time - previous.time
        if dt <= 0:
            return {}
        with self._lock:
            kinds = dict(self._kinds)
        out: Dict[str, float] = {}
        for key, value in latest.values.items():
            if kinds.get(key) != "counter":
                continue
            delta = value - previous.values.get(key, 0.0)
            out[key] = max(0.0, delta) / dt
        return out

    def rate(self, family: str) -> Optional[float]:
        """Summed per-second rate across one counter family's children.

        ``None`` when fewer than two samples exist (no interval yet);
        0.0 when the family is idle or absent.
        """
        rates = self.rates()
        if not rates and len(self) < 2:
            return None
        with self._lock:
            keys = list(self._families.get(family, ()))
        return sum(rates.get(key, 0.0) for key in keys)

    def gauge_value(self, family: str) -> float:
        """Summed latest value across one family's children (0.0 if absent)."""
        latest = self.latest()
        if latest is None:
            return 0.0
        with self._lock:
            keys = list(self._families.get(family, ()))
        return sum(latest.values.get(key, 0.0) for key in keys)

    def as_dict(self) -> Dict[str, object]:
        """The full history as a plain dict (wire/JSON shape)."""
        return {
            "cadence": self.cadence,
            "capacity": self.capacity,
            "sampled": self.sampled,
            "samples": [entry.as_dict() for entry in self.history()],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON text of :meth:`as_dict` (the forensics export)."""
        return json.dumps(self.as_dict(), indent=indent)
