"""Observability: metrics registry, trace hooks, exporters.

The paper's API surfaces rich per-stream and aggregate statistics
(Table 1); a production sensor additionally needs to observe the
*capture pipeline itself* — per-core packet/byte/drop rates, PPL and
FDIR decisions, pool occupancy — continuously and exportably, the way
AMON and the ntop offload work monitor their own datapaths.  This
package provides that layer:

* :class:`~repro.observability.registry.MetricsRegistry` — counters,
  gauges, and histograms, labeled (e.g. per core, per priority), with
  explicit time injection from the simulated clock;
* :class:`~repro.observability.tracing.TraceBuffer` — a ring buffer of
  named hook-point events (PPL drops, FDIR installs/evictions, cutoff
  hits, hole skips, …);
* :mod:`~repro.observability.exporters` — Prometheus text format and
  JSON snapshots.

Everything is **off by default** and engineered so the disabled fast
path costs one boolean check per hook (see
``benchmarks/bench_observability_overhead.py``).  Enable it per run::

    from repro.observability import Observability

    obs = Observability(enabled=True)
    socket = ScapSocket(trace, rate_bps=2e9, observability=obs)
    socket.start_capture()
    print(socket.export_metrics())          # Prometheus text

See ``docs/OBSERVABILITY.md`` for the metric and hook inventory.
"""

from __future__ import annotations

from .exporters import parity_errors, snapshot, to_json, to_prometheus
from .profiler import (
    ALL_STAGES,
    KERNEL_STAGES,
    STAGE_EVENT_DEQUEUE,
    STAGE_EVENT_ENQUEUE,
    STAGE_FLOW_LOOKUP,
    STAGE_PACKET_RECEIVE,
    STAGE_REASSEMBLY,
    STAGE_STORE_DRAIN,
    STAGE_WORKER_CALLBACK,
    ProfileReport,
    StageProfile,
    StageProfiler,
)
from .registry import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .spans import (
    Span,
    SpanNode,
    SpanRecord,
    SpanRecorder,
    SpanTreeReconstructor,
    span_records,
)
from .telemetry import TelemetryRing, TelemetrySample
from .tracing import (
    ALL_HOOKS,
    HOOK_CUTOFF_REACHED,
    HOOK_EVENT_DROPPED,
    HOOK_FAULT_INJECTED,
    HOOK_FDIR_EVICT,
    HOOK_FDIR_INSTALL,
    HOOK_FDIR_TIMEOUT,
    HOOK_HOLE_SKIPPED,
    HOOK_MEMORY_EXHAUSTED,
    HOOK_OVERLAP_RESOLVED,
    HOOK_PPL_DROP,
    HOOK_SERVICE_CLIENT_EVICTED,
    HOOK_SERVICE_EVENT_DROPPED,
    HOOK_SERVICE_REQUEST,
    HOOK_SPAN,
    HOOK_STREAM_CREATED,
    HOOK_STREAM_TERMINATED,
    TraceBuffer,
    TraceEvent,
)
from .timeline import StreamTimeline, TimelineReconstructor, canonical_tuple_str

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_FRACTION_BUCKETS",
    "TraceBuffer",
    "TraceEvent",
    "ALL_HOOKS",
    "HOOK_STREAM_CREATED",
    "HOOK_STREAM_TERMINATED",
    "HOOK_PPL_DROP",
    "HOOK_MEMORY_EXHAUSTED",
    "HOOK_CUTOFF_REACHED",
    "HOOK_FDIR_INSTALL",
    "HOOK_FDIR_EVICT",
    "HOOK_FDIR_TIMEOUT",
    "HOOK_HOLE_SKIPPED",
    "HOOK_OVERLAP_RESOLVED",
    "HOOK_EVENT_DROPPED",
    "HOOK_FAULT_INJECTED",
    "HOOK_SERVICE_REQUEST",
    "HOOK_SERVICE_EVENT_DROPPED",
    "HOOK_SERVICE_CLIENT_EVICTED",
    "HOOK_SPAN",
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "SpanNode",
    "SpanTreeReconstructor",
    "span_records",
    "TelemetryRing",
    "TelemetrySample",
    "to_prometheus",
    "to_json",
    "snapshot",
    "parity_errors",
    "StageProfiler",
    "StageProfile",
    "ProfileReport",
    "ALL_STAGES",
    "KERNEL_STAGES",
    "STAGE_PACKET_RECEIVE",
    "STAGE_FLOW_LOOKUP",
    "STAGE_REASSEMBLY",
    "STAGE_EVENT_ENQUEUE",
    "STAGE_EVENT_DEQUEUE",
    "STAGE_WORKER_CALLBACK",
    "STAGE_STORE_DRAIN",
    "StreamTimeline",
    "TimelineReconstructor",
    "canonical_tuple_str",
]


class Observability:
    """One run's observability context: a registry plus a trace buffer.

    ``enabled`` is a plain attribute read on every hook, so the
    disabled fast path is a single boolean check.  Flip it through
    :meth:`enable` / :meth:`disable` so the registry and tracer stay in
    sync with it.
    """

    def __init__(self, enabled: bool = False, trace_capacity: int = 4096):
        self.registry = MetricsRegistry(enabled=enabled)
        self.trace = TraceBuffer(capacity=trace_capacity, enabled=enabled)
        #: Per-stage attribution of simulated time; its record() call
        #: sites sit behind the components' ``obs.enabled`` guards.
        self.profiler = StageProfiler(self.registry)
        self.enabled = enabled

    def enable(self) -> None:
        """Turn metric recording and tracing on."""
        self.enabled = True
        self.registry.enabled = True
        self.trace.enabled = True

    def disable(self) -> None:
        """Turn metric recording and tracing off (state is retained)."""
        self.enabled = False
        self.registry.enabled = False
        self.trace.enabled = False

    # Convenience pass-throughs -----------------------------------------
    def export_prometheus(self) -> str:
        """The registry in the Prometheus text format."""
        return to_prometheus(self.registry)

    def export_json(self, now=None, indent=None) -> str:
        """The registry as a JSON snapshot (caller-injected timestamp)."""
        return to_json(self.registry, now=now, indent=indent)


#: Shared always-disabled instance used as the default by every
#: instrumented component, so hot paths never branch on ``None``.
#: Do not enable it; create your own :class:`Observability` instead.
NULL_OBSERVABILITY = Observability(enabled=False)
