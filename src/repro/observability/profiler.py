"""The pipeline stage profiler: where does simulated time go?

The paper's evaluation (Figs. 4-10) is a time-decomposition argument —
Scap wins because kernel reassembly, subzero copy, and PPL remove work
from the hot path.  This module makes that decomposition observable in
the reproduction: every simulated cycle the pipeline charges is
attributed to a named *stage*, so a run can answer "what fraction of
busy time went to reassembly vs. flow lookup vs. the application
callback" the way Figure 7's cache-locality analysis does.

Stages, in pipeline order:

* ``packet_receive`` — per-packet softirq base work: NIC hand-off,
  BPF filter evaluation, FDIR filter management;
* ``flow_lookup``   — flow-table hashing and stream-state updates;
* ``reassembly``    — IP defragmentation, TCP segment ordering, and
  the copy of accepted payload into stream memory;
* ``event_enqueue`` — event construction on the kernel side;
* ``event_dequeue`` — worker-side pop + stub dispatch cost;
* ``worker_callback`` — the application's own per-event work;
* ``store_drain``   — stream-store spill-queue drain (queue-wait only:
  persisting records costs no simulated service time).

Attribution is *exact* for the service stages: the kernel module and
the worker pool charge every cycle through a stage-tagged path, so the
per-stage sums reconstruct the softirq + worker busy time (the
``repro-scap profile`` report asserts >= 95% coverage).  Queue-wait
time (packets waiting in the RX ring, events waiting in a worker
queue, records sitting in a spill queue) is recorded separately per
stage — wait is latency, not load.

Everything follows the registry's cost contract: hook call sites are
guarded by one ``obs.enabled`` boolean and all child instruments are
pre-resolved at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .registry import Histogram, MetricsRegistry

__all__ = [
    "StageProfiler",
    "StageProfile",
    "ProfileReport",
    "STAGE_PACKET_RECEIVE",
    "STAGE_FLOW_LOOKUP",
    "STAGE_REASSEMBLY",
    "STAGE_EVENT_ENQUEUE",
    "STAGE_EVENT_DEQUEUE",
    "STAGE_WORKER_CALLBACK",
    "STAGE_STORE_DRAIN",
    "ALL_STAGES",
    "KERNEL_STAGES",
]

STAGE_PACKET_RECEIVE = "packet_receive"
STAGE_FLOW_LOOKUP = "flow_lookup"
STAGE_REASSEMBLY = "reassembly"
STAGE_EVENT_ENQUEUE = "event_enqueue"
STAGE_EVENT_DEQUEUE = "event_dequeue"
STAGE_WORKER_CALLBACK = "worker_callback"
STAGE_STORE_DRAIN = "store_drain"

#: Every profiled stage, in pipeline order.
ALL_STAGES: Tuple[str, ...] = (
    STAGE_PACKET_RECEIVE,
    STAGE_FLOW_LOOKUP,
    STAGE_REASSEMBLY,
    STAGE_EVENT_ENQUEUE,
    STAGE_EVENT_DEQUEUE,
    STAGE_WORKER_CALLBACK,
    STAGE_STORE_DRAIN,
)

#: The stages charged inside the softirq handler; the kernel module
#: accumulates per-packet cycles in this order (index = position).
KERNEL_STAGES: Tuple[str, ...] = (
    STAGE_PACKET_RECEIVE,
    STAGE_FLOW_LOOKUP,
    STAGE_REASSEMBLY,
    STAGE_EVENT_ENQUEUE,
)


@dataclass
class StageProfile:
    """One stage's share of a run, as reported by :meth:`profile`."""

    stage: str
    service_seconds: float = 0.0
    fraction_of_busy: float = 0.0
    samples: int = 0
    p50: float = 0.0
    p99: float = 0.0
    wait_seconds: float = 0.0
    wait_samples: int = 0
    wait_p99: float = 0.0
    per_core_seconds: Dict[int, float] = field(default_factory=dict)


@dataclass
class ProfileReport:
    """The critical-path breakdown of one profiled run.

    ``busy_seconds`` is the ground truth measured at the virtual-time
    servers (softirq + workers); ``attributed_seconds`` is the sum of
    the stage attributions and ``coverage`` their ratio — a healthy
    profile attributes (nearly) every busy second to a stage.
    """

    stages: List[StageProfile] = field(default_factory=list)
    busy_seconds: float = 0.0
    attributed_seconds: float = 0.0
    coverage: float = 0.0

    def stage(self, name: str) -> Optional[StageProfile]:
        """The named stage's profile, or None if it never ran."""
        for entry in self.stages:
            if entry.stage == name:
                return entry
        return None

    def format(self) -> str:
        """The per-stage breakdown as a printable table."""
        lines = [
            f"{'stage':<16} {'busy%':>7} {'seconds':>12} {'samples':>9} "
            f"{'p50':>10} {'p99':>10} {'wait-s':>10} {'wait-p99':>10}"
        ]
        for entry in self.stages:
            lines.append(
                f"{entry.stage:<16} {100.0 * entry.fraction_of_busy:>6.2f}% "
                f"{entry.service_seconds:>12.6f} {entry.samples:>9} "
                f"{entry.p50:>10.3e} {entry.p99:>10.3e} "
                f"{entry.wait_seconds:>10.4f} {entry.wait_p99:>10.3e}"
            )
        lines.append(
            f"{'total':<16} {100.0 * self.coverage:>6.2f}% "
            f"{self.attributed_seconds:>12.6f}  "
            f"(busy {self.busy_seconds:.6f}s at the servers)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for exporters and the CLI ``--json`` path."""
        return {
            "busy_seconds": self.busy_seconds,
            "attributed_seconds": self.attributed_seconds,
            "coverage": self.coverage,
            "stages": [
                {
                    "stage": entry.stage,
                    "service_seconds": entry.service_seconds,
                    "fraction_of_busy": entry.fraction_of_busy,
                    "samples": entry.samples,
                    "p50": entry.p50,
                    "p99": entry.p99,
                    "wait_seconds": entry.wait_seconds,
                    "wait_samples": entry.wait_samples,
                    "wait_p99": entry.wait_p99,
                    "per_core_seconds": {
                        str(core): seconds
                        for core, seconds in sorted(entry.per_core_seconds.items())
                    },
                }
                for entry in self.stages
            ],
        }


class StageProfiler:
    """Per-stage attribution of simulated service and queue-wait time.

    One instance lives on each :class:`~repro.observability.Observability`
    context (``obs.profiler``).  Components never branch on the
    profiler itself — every ``record``/``record_wait`` call site sits
    inside the component's existing ``if obs.enabled:`` guard, so the
    disabled fast path stays one boolean per hook.  All registry
    children are pre-resolved here, per the registry's contract.
    """

    def __init__(self, registry: MetricsRegistry):
        service_family = registry.histogram(
            "scap_stage_service_seconds",
            "simulated service time attributed per pipeline stage",
            labels=("stage",),
        )
        wait_family = registry.histogram(
            "scap_stage_queue_wait_seconds",
            "simulated queue-wait time before each pipeline stage",
            labels=("stage",),
        )
        busy_family = registry.counter(
            "scap_stage_busy_seconds_total",
            "total simulated seconds attributed per stage",
            labels=("stage",),
        )
        # Pre-resolved children: the enabled path is attribute access.
        self._service: Dict[str, Histogram] = {
            stage: service_family.labels(stage) for stage in ALL_STAGES
        }
        self._wait: Dict[str, Histogram] = {
            stage: wait_family.labels(stage) for stage in ALL_STAGES
        }
        self._busy = {stage: busy_family.labels(stage) for stage in ALL_STAGES}
        # Plain accumulators backing the profile() report (mutated only
        # behind the call sites' enabled guards).
        self.service_seconds: Dict[str, float] = {stage: 0.0 for stage in ALL_STAGES}
        self.wait_seconds: Dict[str, float] = {stage: 0.0 for stage in ALL_STAGES}
        self.samples: Dict[str, int] = {stage: 0 for stage in ALL_STAGES}
        self.wait_samples: Dict[str, int] = {stage: 0 for stage in ALL_STAGES}
        self.per_core_seconds: Dict[str, Dict[int, float]] = {
            stage: {} for stage in ALL_STAGES
        }
        # Open stage_enter() frames, keyed (stage, core).
        self._open: Dict[Tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # Hot-path recording (call sites hold the obs.enabled guard)
    # ------------------------------------------------------------------
    def record(self, stage: str, core: int, seconds: float) -> None:
        """Attribute ``seconds`` of simulated service time to a stage."""
        if seconds < 0.0:
            return
        self.service_seconds[stage] += seconds
        self.samples[stage] += 1
        per_core = self.per_core_seconds[stage]
        per_core[core] = per_core.get(core, 0.0) + seconds
        self._service[stage].observe(seconds)
        self._busy[stage].inc(seconds)

    def record_seq(
        self, stage: str, cores: Sequence[int], values: Sequence[float]
    ) -> None:
        """Replay a batch of :meth:`record` calls in sample order.

        Bit-identical to ``len(values)`` individual ``record`` calls
        with the same (core, seconds) pairs in the same order: the
        stage total, per-core totals, histogram sum, and busy counter
        all accumulate sample-by-sample, so even the float rounding
        matches the per-packet path.  Values must be non-negative
        (cycle-derived); only the per-call overhead is amortized.
        """
        if not values:
            return
        acc = self.service_seconds[stage]
        per_core = self.per_core_seconds[stage]
        get = per_core.get
        for core, seconds in zip(cores, values):
            acc += seconds
            per_core[core] = get(core, 0.0) + seconds
        self.service_seconds[stage] = acc
        self.samples[stage] += len(values)
        self._service[stage].observe_many(values)
        self._busy[stage].inc_many(values)

    def record_wait(self, stage: str, core: int, seconds: float) -> None:
        """Attribute ``seconds`` of simulated queue-wait before a stage."""
        if seconds < 0.0:
            return
        self.wait_seconds[stage] += seconds
        self.wait_samples[stage] += 1
        self._wait[stage].observe(seconds)

    def record_wait_seq(self, stage: str, values: Sequence[float]) -> None:
        """Batched twin of :meth:`record_wait` (see :meth:`record_seq`).

        ``record_wait`` never reads the core, so only the sample order
        matters; callers must pre-filter negative waits (the same
        samples ``record_wait`` would have discarded).
        """
        if not values:
            return
        acc = self.wait_seconds[stage]
        for seconds in values:
            acc += seconds
        self.wait_seconds[stage] = acc
        self.wait_samples[stage] += len(values)
        self._wait[stage].observe_many(values)

    def stage_enter(self, stage: str, core: int, now: float) -> None:
        """Open a guarded stage frame at simulated time ``now``.

        For components that bracket work with enter/exit instead of
        knowing its duration up front; the matching :meth:`stage_exit`
        attributes the elapsed simulated time.  Frames are keyed
        (stage, core), so one core can hold at most one open frame per
        stage — re-entering overwrites the start time.
        """
        self._open[(stage, core)] = now

    def stage_exit(self, stage: str, core: int, now: float) -> float:
        """Close a stage frame; attribute and return the elapsed time."""
        start = self._open.pop((stage, core), None)
        if start is None:
            return 0.0
        elapsed = now - start
        self.record(stage, core, elapsed)
        return elapsed

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    @property
    def attributed_seconds(self) -> float:
        """Total service seconds attributed across all stages."""
        return sum(self.service_seconds.values())

    def report(self, busy_seconds: Optional[float] = None) -> ProfileReport:
        """Reduce the attributions to a :class:`ProfileReport`.

        ``busy_seconds`` is the measured server busy time to score
        coverage against; when omitted, the attributed total is used
        (coverage 1.0 by construction).
        """
        attributed = self.attributed_seconds
        busy = attributed if busy_seconds is None else busy_seconds
        report = ProfileReport(
            busy_seconds=busy,
            attributed_seconds=attributed,
            coverage=(attributed / busy) if busy > 0 else 0.0,
        )
        for stage in ALL_STAGES:
            seconds = self.service_seconds[stage]
            waits = self.wait_seconds[stage]
            if seconds == 0.0 and waits == 0.0 and not self.samples[stage]:
                continue
            report.stages.append(
                StageProfile(
                    stage=stage,
                    service_seconds=seconds,
                    fraction_of_busy=(seconds / busy) if busy > 0 else 0.0,
                    samples=self.samples[stage],
                    p50=self._service[stage].quantile(0.5),
                    p99=self._service[stage].quantile(0.99),
                    wait_seconds=waits,
                    wait_samples=self.wait_samples[stage],
                    wait_p99=self._wait[stage].quantile(0.99),
                    per_core_seconds=dict(self.per_core_seconds[stage]),
                )
            )
        return report
