"""The metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named metric *families*; a family with
label names fans out into one child instrument per label-value tuple
(e.g. ``scap_core_packets_total{core="3"}``), a family without labels
has a single anonymous child returned directly.  Everything is
registered get-or-create, so components can declare the same metric
from several places and share one time series.

Design constraints (matching the in-kernel origin of these hooks):

* **Cheap when disabled.**  Every mutation checks one boolean
  (``registry.enabled``) and returns; no allocation, no dict lookup.
  Hot paths additionally pre-resolve their child instruments once (see
  ``ScapKernelModule``) so the enabled path is a bare attribute bump.
* **No wall-clock calls.**  The registry never reads real time; any
  timestamp attached to an export is injected by the caller from the
  simulated clock.
* **Counters are monotone.**  ``Counter.inc`` rejects negative
  amounts; tests assert this stays true.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_FRACTION_BUCKETS",
]

#: Histogram buckets for service times / latencies, in seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1,
)

#: Histogram buckets for occupancy fractions in [0, 1].
DEFAULT_FRACTION_BUCKETS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_registry", "value")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters are monotone; cannot inc by a negative")
        self.value += amount

    def inc_many(self, amounts: Sequence[float]) -> None:
        """Add several amounts in one call.

        State-identical to calling :meth:`inc` per amount — the value
        accumulates amount-by-amount so even the float rounding
        matches; only the per-call overhead is amortized.
        """
        if not self._registry.enabled or not amounts:
            return
        value = self.value
        for amount in amounts:
            if amount < 0:
                raise ValueError(
                    "counters are monotone; cannot inc by a negative"
                )
            value += amount
        self.value = value


class Gauge:
    """A value that can go up and down (queue depths, table sizes)."""

    __slots__ = ("_registry", "value")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        if not self._registry.enabled:
            return
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        if not self._registry.enabled:
            return
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)


class Histogram:
    """A distribution over fixed, cumulative-exported buckets.

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit +Inf bucket catches the rest.  ``counts[i]`` is the
    *per-bucket* (non-cumulative) count; exporters accumulate.
    """

    __slots__ = ("_registry", "bounds", "counts", "total", "sum")

    def __init__(self, registry: "MetricsRegistry", bounds: Sequence[float]):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self._registry = registry
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if not self._registry.enabled:
            return
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record several samples in one call.

        State-identical to calling :meth:`observe` per sample — the sum
        is accumulated sample-by-sample so even the float rounding
        matches; only the per-call overhead is amortized.
        """
        if not self._registry.enabled or not values:
            return
        counts = self.counts
        bounds = self.bounds
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            self.sum += value
        self.total += len(values)

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket bounds.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q * total`` (the Prometheus convention, without
        intra-bucket interpolation).  Samples past the last finite
        bound are reported as the last finite bound; an empty histogram
        reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= target:
                return bound
        return self.bounds[-1] if self.bounds else 0.0


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "children", "_registry", "_bounds")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        bounds: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.children: Dict[Tuple[str, ...], object] = {}
        self._registry = registry
        self._bounds = tuple(bounds) if bounds is not None else None

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self._registry)
        if self.kind == "gauge":
            return Gauge(self._registry)
        return Histogram(self._registry, self._bounds or DEFAULT_TIME_BUCKETS)

    def labels(self, *values) -> object:
        """The child instrument for one label-value tuple (get-or-create)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self.children.get(key)
        if child is None:
            child = self._make_child()
            self.children[key] = child
        return child

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """(label_values, instrument) pairs in insertion order."""
        return self.children.items()


class MetricsRegistry:
    """Named metric families with a shared on/off switch."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.families: Dict[str, MetricFamily] = {}
        # SCAP_RACE=1: family registration is a structural mutation that
        # must stay on the thread that owns this registry.  Disabled
        # registries are exempt: the module-global NULL registry is a
        # write-only sink that per-shard runtimes share by design.
        # Imported lazily — observability must not depend on sanitizers
        # at import time (sanitizer contexts point back at observability).
        from ..sanitizers.race import race_detector_from_env

        self._race = race_detector_from_env() if enabled else None
        self._race_token = (
            self._race.register("MetricsRegistry.families")
            if self._race is not None
            else 0
        )

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Sequence[str],
        bounds: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self.families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} re-registered as {kind}{tuple(label_names)}, "
                    f"was {family.kind}{family.label_names}"
                )
            return family
        if self._race is not None:
            self._race.check(self._race_token, op="register_family")
        family = MetricFamily(self, name, kind, help_text, tuple(label_names), bounds)
        self.families[name] = family
        return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        """A counter family; with no labels, the sole child directly."""
        family = self._family(name, "counter", help_text, labels)
        return family if labels else family.labels()

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        """A gauge family; with no labels, the sole child directly."""
        family = self._family(name, "gauge", help_text, labels)
        return family if labels else family.labels()

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ):
        """A histogram family; with no labels, the sole child directly."""
        family = self._family(name, "histogram", help_text, labels, bounds)
        return family if labels else family.labels()

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        return self.families.get(name)

    def value(self, name: str, *label_values) -> float:
        """Convenience: the scalar value of one counter/gauge child."""
        family = self.families[name]
        child = family.labels(*label_values)
        if isinstance(child, Histogram):
            raise TypeError(f"{name} is a histogram; read .sum/.total instead")
        return child.value  # type: ignore[union-attr]

    def sum_values(self, name: str) -> float:
        """Sum of a counter/gauge family's children across all labels."""
        family = self.families[name]
        return sum(child.value for _, child in family.samples())  # type: ignore[union-attr]
