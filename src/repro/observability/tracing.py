"""Trace-event ring buffer with named hook points.

Metrics answer "how many"; the trace answers "what happened, in
order".  Hot-path components emit :class:`TraceEvent` records at the
hook points below; the buffer is a fixed-capacity ring, so a long run
keeps only the most recent window (and counts what it overwrote).

Timestamps are always the *simulated* clock, injected by the caller —
the tracer itself never reads wall-clock time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

__all__ = [
    "TraceEvent",
    "TraceBuffer",
    "HOOK_PPL_DROP",
    "HOOK_MEMORY_EXHAUSTED",
    "HOOK_CUTOFF_REACHED",
    "HOOK_FDIR_INSTALL",
    "HOOK_FDIR_EVICT",
    "HOOK_FDIR_TIMEOUT",
    "HOOK_STREAM_CREATED",
    "HOOK_STREAM_TERMINATED",
    "HOOK_HOLE_SKIPPED",
    "HOOK_OVERLAP_RESOLVED",
    "HOOK_EVENT_DROPPED",
    "HOOK_FAULT_INJECTED",
    "HOOK_SERVICE_REQUEST",
    "HOOK_SERVICE_EVENT_DROPPED",
    "HOOK_SERVICE_CLIENT_EVICTED",
    "HOOK_SPAN",
    "ALL_HOOKS",
]

# Named hook points, in pipeline order.
HOOK_STREAM_CREATED = "stream_created"
HOOK_STREAM_TERMINATED = "stream_terminated"
HOOK_PPL_DROP = "ppl_drop"
HOOK_MEMORY_EXHAUSTED = "memory_exhausted"
HOOK_CUTOFF_REACHED = "cutoff_reached"
HOOK_FDIR_INSTALL = "fdir_install"
HOOK_FDIR_EVICT = "fdir_evict"
HOOK_FDIR_TIMEOUT = "fdir_timeout"
HOOK_HOLE_SKIPPED = "hole_skipped"
HOOK_OVERLAP_RESOLVED = "overlap_resolved"
HOOK_EVENT_DROPPED = "event_dropped"
HOOK_FAULT_INJECTED = "fault_injected"
# Service plane (the capture daemon of repro.service).
HOOK_SERVICE_REQUEST = "service_request"
HOOK_SERVICE_EVENT_DROPPED = "service_event_dropped"
HOOK_SERVICE_CLIENT_EVICTED = "service_client_evicted"
# Causal request spans (see repro.observability.spans).
HOOK_SPAN = "span"

ALL_HOOKS = (
    HOOK_STREAM_CREATED,
    HOOK_STREAM_TERMINATED,
    HOOK_PPL_DROP,
    HOOK_MEMORY_EXHAUSTED,
    HOOK_CUTOFF_REACHED,
    HOOK_FDIR_INSTALL,
    HOOK_FDIR_EVICT,
    HOOK_FDIR_TIMEOUT,
    HOOK_HOLE_SKIPPED,
    HOOK_OVERLAP_RESOLVED,
    HOOK_EVENT_DROPPED,
    HOOK_FAULT_INJECTED,
    HOOK_SERVICE_REQUEST,
    HOOK_SERVICE_EVENT_DROPPED,
    HOOK_SERVICE_CLIENT_EVICTED,
    HOOK_SPAN,
)


@dataclass
class TraceEvent:
    """One traced decision: when (simulated), where, and the details."""

    time: float
    hook: str
    fields: Dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        """One human-readable line for the CLI trace dump."""
        details = " ".join(f"{key}={value}" for key, value in self.fields.items())
        return f"{self.time:12.6f}  {self.hook:<18} {details}"


class TraceBuffer:
    """Fixed-capacity ring of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 4096, enabled: bool = False):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.overwritten = 0

    def emit(self, now: float, hook: str, **fields) -> None:
        """Record one event at simulated time ``now`` (no-op when disabled)."""
        if not self.enabled:
            return
        if len(self._events) == self.capacity:
            self.overwritten += 1
        self._events.append(TraceEvent(now, hook, fields))
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, hook: Optional[str] = None) -> List[TraceEvent]:
        """The retained events, optionally restricted to one hook."""
        if hook is None:
            return list(self._events)
        return [event for event in self._events if event.hook == hook]

    def by_hook(self, *hooks: str) -> List[TraceEvent]:
        """The retained events at any of the named hook points."""
        wanted = set(hooks)
        unknown = wanted - set(ALL_HOOKS)
        if unknown:
            raise ValueError(f"unknown hook(s): {sorted(unknown)}")
        return [event for event in self._events if event.hook in wanted]

    def by_stream(self, five_tuple) -> List[TraceEvent]:
        """The retained events carrying a stream's five-tuple.

        ``five_tuple`` is a :class:`~repro.netstack.flows.FiveTuple`
        (either direction) or its string form; events whose
        ``five_tuple`` field matches the tuple or its reverse are
        returned, so both directions of a connection fold together.
        """
        wanted = {str(five_tuple)}
        reverse = getattr(five_tuple, "reversed", None)
        if callable(reverse):
            wanted.add(str(reverse()))
        elif isinstance(five_tuple, str) and " > " in five_tuple:
            # "src:sp > dst:dp/proto" — reverse the textual endpoints.
            src, _, rest = five_tuple.partition(" > ")
            dst, _, proto = rest.rpartition("/")
            wanted.add(f"{dst} > {src}/{proto}")
        return [
            event
            for event in self._events
            if event.fields.get("five_tuple") in wanted
        ]

    def clear(self) -> None:
        """Drop all retained events (counts are kept)."""
        self._events.clear()
