"""Causal request spans recorded over the trace-event ring.

A span is one timed hop of a request — the client call, the daemon
dispatch, the command handler, a store query — linked into a tree by
``trace_id``/``parent_id``.  Finished spans are emitted as ordinary
:data:`HOOK_SPAN` trace events, so they share the ring's capacity
accounting, survive in the same export paths, and cost nothing when
tracing is disabled.

Identifiers are deterministic: each :class:`SpanRecorder` stamps its
ids with a caller-chosen prefix (the client picks a per-connection
prefix, the daemon uses ``d``) followed by a monotonically increasing
counter, so ids are unique within a trace even when client and daemon
live in different processes, and tests see stable values.

Clocks are injected.  Library-mode recorders run on the simulated
clock; the daemon passes ``time.monotonic``.  A span's ``start`` and
``duration`` are therefore only comparable *within* one recorder,
which is why the tree reconstructor attributes time structurally
(parent links) rather than by aligning timestamps across hops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .tracing import HOOK_SPAN, TraceBuffer, TraceEvent

__all__ = [
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "SpanNode",
    "SpanTreeReconstructor",
    "span_records",
]

# Span kinds, loosely following the tracing vernacular.
KIND_CLIENT = "client"
KIND_SERVER = "server"
KIND_INTERNAL = "internal"
KIND_STORE = "store"


@dataclass
class SpanRecord:
    """One finished span, as retained in the ring or shipped on the wire."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    kind: str
    start: float
    duration: float
    status: str = "ok"
    fields: Dict[str, object] = field(default_factory=dict)

    def as_fields(self) -> Dict[str, object]:
        """Flatten to the dict carried by a trace event (and wire JSON)."""
        out: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        out.update(self.fields)
        return out

    @classmethod
    def from_fields(cls, fields: Dict[str, object]) -> "SpanRecord":
        """Rebuild a record from trace-event fields or wire JSON."""
        known = (
            "trace_id", "span_id", "parent_id", "name", "kind",
            "start", "duration", "status",
        )
        extra = {
            key: value for key, value in fields.items() if key not in known
        }
        return cls(
            trace_id=str(fields["trace_id"]),
            span_id=str(fields["span_id"]),
            parent_id=(
                None
                if fields.get("parent_id") is None
                else str(fields["parent_id"])
            ),
            name=str(fields.get("name", "?")),
            kind=str(fields.get("kind", KIND_INTERNAL)),
            start=float(fields.get("start", 0.0)),
            duration=float(fields.get("duration", 0.0)),
            status=str(fields.get("status", "ok")),
            fields=extra,
        )


class Span:
    """An open span handle; :meth:`end` records it."""

    __slots__ = (
        "_recorder", "trace_id", "span_id", "parent_id",
        "name", "kind", "start", "fields", "_ended",
    )

    def __init__(self, recorder, trace_id, span_id, parent_id,
                 name, kind, start, fields):
        self._recorder = recorder
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.fields = fields
        self._ended = False

    def annotate(self, **fields) -> None:
        """Attach extra key/value detail to the eventual record."""
        self.fields.update(fields)

    def end(self, status: str = "ok") -> SpanRecord:
        """Close the span, record it, and return the finished record."""
        record = self._recorder._finish(self, status)
        return record


class SpanRecorder:
    """Allocates span ids and records finished spans into a trace ring.

    The buffer attribute is named ``trace`` and every emission is
    guarded by ``self.trace.enabled`` so the scapcheck SC002
    guarded-hook rule covers these call sites.
    """

    def __init__(
        self,
        trace: TraceBuffer,
        clock: Callable[[], float],
        prefix: str = "s",
    ):
        self.trace = trace
        self.clock = clock
        self.prefix = prefix
        self._lock = threading.Lock()
        self._next_id = 0
        self.recorded = 0

    def _allocate_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{self.prefix}{self._next_id}"

    def new_trace_id(self) -> str:
        """A fresh trace id, unique for this recorder."""
        return f"t-{self._allocate_id()}"

    def start_span(
        self,
        name: str,
        kind: str = KIND_INTERNAL,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **fields,
    ) -> Span:
        """Open a span; a missing ``trace_id`` starts a new trace."""
        if trace_id is None:
            trace_id = self.new_trace_id()
        return Span(
            recorder=self,
            trace_id=trace_id,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=self.clock(),
            fields=dict(fields),
        )

    def _finish(self, span: Span, status: str) -> SpanRecord:
        duration = self.clock() - span.start
        record = SpanRecord(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            kind=span.kind,
            start=span.start,
            duration=max(0.0, duration),
            status=status,
            fields=span.fields,
        )
        if span._ended:
            return record
        span._ended = True
        if self.trace.enabled:
            self.trace.emit(record.start, HOOK_SPAN, **record.as_fields())
        self.recorded += 1
        return record


def span_records(events: Iterable[TraceEvent]) -> List[SpanRecord]:
    """Extract :class:`SpanRecord` items from a trace-event stream."""
    return [
        SpanRecord.from_fields(event.fields)
        for event in events
        if event.hook == HOOK_SPAN and "trace_id" in event.fields
    ]


@dataclass
class SpanNode:
    """One span in a reconstructed tree, with its children attached."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def child_seconds(self) -> float:
        return sum(child.record.duration for child in self.children)

    @property
    def self_seconds(self) -> float:
        """Time attributed to this hop alone (duration minus children).

        Client and daemon clocks are unrelated, so a remote child's
        duration can exceed the local parent's when network time
        dominates; attribution is floored at zero rather than going
        negative.
        """
        return max(0.0, self.record.duration - self.child_seconds)

    def total_seconds(self) -> float:
        """This span's wall duration, children included."""
        return self.record.duration

    def format(self, indent: int = 0) -> List[str]:
        """Indented lines for the CLI tree rendering."""
        record = self.record
        line = (
            f"{'  ' * indent}{record.name} [{record.kind}] "
            f"span={record.span_id} "
            f"{record.duration * 1e3:.3f}ms "
            f"(self {self.self_seconds * 1e3:.3f}ms) "
            f"status={record.status}"
        )
        lines = [line]
        for child in self.children:
            lines.extend(child.format(indent + 1))
        return lines


class SpanTreeReconstructor:
    """Fold span records (events, records, or wire dicts) into trees.

    Mirrors :class:`~repro.observability.timeline.TimelineReconstructor`:
    construct with the raw material, query reconstructed shapes.
    Parents missing from the retained window leave their children as
    additional roots rather than dropping them.
    """

    def __init__(self, sources: Iterable):
        records: List[SpanRecord] = []
        for item in sources:
            if isinstance(item, SpanRecord):
                records.append(item)
            elif isinstance(item, TraceEvent):
                if item.hook == HOOK_SPAN and "trace_id" in item.fields:
                    records.append(SpanRecord.from_fields(item.fields))
            elif isinstance(item, dict) and "trace_id" in item:
                records.append(SpanRecord.from_fields(item))
        # Last write wins for duplicate span ids (client + daemon may
        # both report the same span when merging local and remote).
        by_id: Dict[Tuple[str, str], SpanRecord] = {}
        for record in records:
            by_id[(record.trace_id, record.span_id)] = record
        self._records = list(by_id.values())

    def trace_ids(self) -> List[str]:
        """All trace ids present, in first-seen order."""
        seen: List[str] = []
        for record in self._records:
            if record.trace_id not in seen:
                seen.append(record.trace_id)
        return seen

    def records(self, trace_id: Optional[str] = None) -> List[SpanRecord]:
        """The retained records, optionally for one trace."""
        if trace_id is None:
            return list(self._records)
        return [r for r in self._records if r.trace_id == trace_id]

    def tree(self, trace_id: str) -> List[SpanNode]:
        """Root nodes for one trace, children nested and time-sorted."""
        nodes = {
            record.span_id: SpanNode(record)
            for record in self._records
            if record.trace_id == trace_id
        }
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = node.record.parent_id
            if parent is not None and parent in nodes:
                nodes[parent].children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda child: child.record.start)
        roots.sort(key=lambda node: node.record.start)
        return roots

    def traces(self) -> Dict[str, List[SpanNode]]:
        """Every trace id mapped to its reconstructed roots."""
        return {trace_id: self.tree(trace_id) for trace_id in self.trace_ids()}

    def slowest(self, count: int = 5) -> List[Tuple[str, float]]:
        """``(trace_id, root_seconds)`` pairs, slowest first.

        A trace's cost is the sum of its root spans' durations (client
        and daemon clocks cannot be aligned, so roots are additive).
        """
        totals: Dict[str, float] = {}
        for trace_id in self.trace_ids():
            totals[trace_id] = sum(
                node.record.duration for node in self.tree(trace_id)
            )
        ranked = sorted(totals.items(), key=lambda item: -item[1])
        return ranked[: max(0, count)]

    def format_trace(self, trace_id: str) -> str:
        """The whole tree for one trace as indented text."""
        lines = [f"trace {trace_id}"]
        for root in self.tree(trace_id):
            lines.extend(root.format(indent=1))
        return "\n".join(lines)
