"""The stream flight recorder: per-stream lifecycle timelines.

The trace ring records pipeline decisions in time order; this module
folds it back into *per-stream* stories, so "why did this stream lose
data?" becomes a one-command answer (``repro-scap timeline``).  Every
hook that concerns a specific stream carries its directional
five-tuple (see :mod:`~repro.observability.tracing`); the
reconstructor canonicalizes both directions onto one connection key
and orders each connection's events into a lifecycle:

    created -> [ppl drops, holes, overlaps, memory exhaustion]
            -> cutoff -> fdir install/evict/timeout -> terminated

with byte counters at each transition (captured bytes at the cutoff,
seq-recovered totals at termination).  Reconstruction is offline and
read-only — it never touches the capture hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .tracing import (
    HOOK_CUTOFF_REACHED,
    HOOK_EVENT_DROPPED,
    HOOK_FDIR_EVICT,
    HOOK_FDIR_INSTALL,
    HOOK_FDIR_TIMEOUT,
    HOOK_HOLE_SKIPPED,
    HOOK_MEMORY_EXHAUSTED,
    HOOK_OVERLAP_RESOLVED,
    HOOK_PPL_DROP,
    HOOK_STREAM_CREATED,
    HOOK_STREAM_TERMINATED,
    TraceEvent,
)

__all__ = ["StreamTimeline", "TimelineReconstructor", "canonical_tuple_str"]


def _split_tuple_str(text: str) -> Optional[Tuple[str, str, str]]:
    """``"a:p > b:q/proto"`` -> (src_endpoint, dst_endpoint, proto)."""
    if " > " not in text:
        return None
    src, _, rest = text.partition(" > ")
    dst, _, proto = rest.rpartition("/")
    if not dst or not proto:
        return None
    return src, dst, proto


def canonical_tuple_str(five_tuple) -> str:
    """One direction-independent key for a five-tuple (or its string).

    Both directions of a connection map to the same key: the
    lexicographically smaller endpoint is printed first, mirroring
    :meth:`~repro.netstack.flows.FiveTuple.canonical`.
    """
    text = str(five_tuple)
    parts = _split_tuple_str(text)
    if parts is None:
        return text
    src, dst, proto = parts
    if dst < src:
        src, dst = dst, src
    return f"{src} > {dst}/{proto}"


@dataclass
class StreamTimeline:
    """One connection's reconstructed lifecycle.

    ``events`` is every trace event that named this connection, in
    time order; the summary fields below are derived from them during
    reconstruction.  ``recovered_bytes`` is the seq-recovered flow size
    reported at termination (§5.5: FIN/RST sequence numbers recover
    the length of data the NIC dropped after the cutoff), which is why
    it can exceed ``captured_bytes``.
    """

    key: str
    events: List[TraceEvent] = field(default_factory=list)
    created_at: Optional[float] = None
    cutoff_at: Optional[float] = None
    terminated_at: Optional[float] = None
    status: Optional[str] = None
    captured_bytes: int = 0
    recovered_bytes: int = 0
    ppl_drops: int = 0
    ppl_dropped_bytes: int = 0
    memory_drops: int = 0
    events_dropped: int = 0
    fdir_installs: int = 0
    fdir_evictions: int = 0
    fdir_timeouts: int = 0

    @property
    def complete(self) -> bool:
        """True when both creation and termination were retained."""
        return self.created_at is not None and self.terminated_at is not None

    def lost_data(self) -> bool:
        """Did this stream lose payload anywhere in the pipeline?"""
        return bool(self.ppl_drops or self.memory_drops or self.events_dropped)

    def summary(self) -> str:
        """One line: identity, lifetime, status, loss counters."""
        born = f"{self.created_at:.6f}" if self.created_at is not None else "?"
        died = f"{self.terminated_at:.6f}" if self.terminated_at is not None else "?"
        parts = [
            f"{self.key}",
            f"[{born}, {died}]",
            f"status={self.status or 'active'}",
            f"captured={self.captured_bytes}B",
        ]
        if self.recovered_bytes > self.captured_bytes:
            parts.append(f"recovered={self.recovered_bytes}B")
        if self.cutoff_at is not None:
            parts.append(f"cutoff@{self.cutoff_at:.6f}")
        if self.fdir_installs:
            parts.append(f"fdir={self.fdir_installs}")
        if self.lost_data():
            parts.append(
                f"lost(ppl={self.ppl_drops},mem={self.memory_drops},"
                f"evq={self.events_dropped})"
            )
        return "  ".join(parts)

    def format(self) -> str:
        """The full lifecycle: the summary line plus each transition."""
        lines = [self.summary()]
        for event in self.events:
            lines.append("  " + event.format())
        return "\n".join(lines)


#: Hooks whose events belong to a stream timeline when they carry a
#: ``five_tuple`` field.
_STREAM_HOOKS = frozenset(
    {
        HOOK_STREAM_CREATED,
        HOOK_STREAM_TERMINATED,
        HOOK_CUTOFF_REACHED,
        HOOK_FDIR_INSTALL,
        HOOK_FDIR_EVICT,
        HOOK_FDIR_TIMEOUT,
        HOOK_PPL_DROP,
        HOOK_MEMORY_EXHAUSTED,
        HOOK_EVENT_DROPPED,
        HOOK_HOLE_SKIPPED,
        HOOK_OVERLAP_RESOLVED,
    }
)


class TimelineReconstructor:
    """Folds a trace ring into per-stream :class:`StreamTimeline` objects.

    The source is any iterable of :class:`TraceEvent` records (a
    :class:`~repro.observability.tracing.TraceBuffer` iterates in time
    order).  Events without a ``five_tuple`` field cannot be attributed
    and are counted in ``unattributed``; with the ring sized below the
    run's event volume, early events may have been overwritten — the
    reconstructor works with whatever window was retained.
    """

    def __init__(self, events: Iterable[TraceEvent]):
        self._timelines: Dict[str, StreamTimeline] = {}
        self.unattributed = 0
        for event in events:
            self._fold(event)

    # ------------------------------------------------------------------
    def _fold(self, event: TraceEvent) -> None:
        if event.hook not in _STREAM_HOOKS:
            return
        label = event.fields.get("five_tuple")
        if not label or not isinstance(label, str):
            self.unattributed += 1
            return
        key = canonical_tuple_str(label)
        timeline = self._timelines.get(key)
        if timeline is None:
            timeline = StreamTimeline(key=key)
            self._timelines[key] = timeline
        timeline.events.append(event)
        hook = event.hook
        fields = event.fields
        if hook == HOOK_STREAM_CREATED:
            if timeline.created_at is None:
                timeline.created_at = event.time
        elif hook == HOOK_STREAM_TERMINATED:
            timeline.terminated_at = event.time
            status = fields.get("status")
            if isinstance(status, str):
                timeline.status = status
            timeline.captured_bytes = max(
                timeline.captured_bytes, int(fields.get("captured_bytes", 0) or 0)
            )
            timeline.recovered_bytes = max(
                timeline.recovered_bytes, int(fields.get("bytes", 0) or 0)
            )
        elif hook == HOOK_CUTOFF_REACHED:
            if timeline.cutoff_at is None:
                timeline.cutoff_at = event.time
            timeline.status = timeline.status or "cutoff"
            timeline.captured_bytes = max(
                timeline.captured_bytes, int(fields.get("captured_bytes", 0) or 0)
            )
        elif hook == HOOK_PPL_DROP:
            timeline.ppl_drops += 1
            timeline.ppl_dropped_bytes += int(fields.get("bytes", 0) or 0)
        elif hook == HOOK_MEMORY_EXHAUSTED:
            timeline.memory_drops += 1
        elif hook == HOOK_EVENT_DROPPED:
            timeline.events_dropped += 1
        elif hook == HOOK_FDIR_INSTALL:
            timeline.fdir_installs += 1
        elif hook == HOOK_FDIR_EVICT:
            timeline.fdir_evictions += 1
        elif hook == HOOK_FDIR_TIMEOUT:
            timeline.fdir_timeouts += 1

    # ------------------------------------------------------------------
    def timelines(self) -> List[StreamTimeline]:
        """Every reconstructed timeline, ordered by creation time."""
        return sorted(
            self._timelines.values(),
            key=lambda timeline: (
                timeline.created_at
                if timeline.created_at is not None
                else (timeline.events[0].time if timeline.events else 0.0)
            ),
        )

    def __len__(self) -> int:
        return len(self._timelines)

    def for_stream(self, five_tuple) -> Optional[StreamTimeline]:
        """The timeline of one connection (either direction), or None."""
        return self._timelines.get(canonical_tuple_str(five_tuple))
