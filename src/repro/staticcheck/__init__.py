"""``scapcheck``: repo-specific static analysis.

Ordinary linters check Python; this package checks *Scap*.  The rules
encode invariants the reproduction's correctness rests on — simulated
time only (SC001), zero-cost disabled observability (SC002), declared
concurrency discipline for shared state (SC003), well-formed stream
events (SC004), and a fully documented/typed public API (SC005).

Run it as ``python -m repro.staticcheck src/repro`` or
``repro-scap scapcheck src/repro``; suppress a finding inline with
``# scapcheck: disable=SC00x``.  The rule catalogue lives in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from .framework import (
    RULE_REGISTRY,
    Rule,
    SourceFile,
    Violation,
    check_source,
    register_rule,
)
from .rules import (
    HOT_PATH_PACKAGES,
    EventTransitionRule,
    GuardedHooksRule,
    NoWallClockRule,
    ScapApiContractRule,
    SharedStateRule,
)
from .runner import iter_python_files, list_rules, main, run_paths

__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "SourceFile",
    "Violation",
    "check_source",
    "register_rule",
    "HOT_PATH_PACKAGES",
    "NoWallClockRule",
    "GuardedHooksRule",
    "SharedStateRule",
    "EventTransitionRule",
    "ScapApiContractRule",
    "iter_python_files",
    "list_rules",
    "main",
    "run_paths",
]
