"""The ``scapcheck`` rule framework.

A :class:`Rule` inspects one parsed source file and reports
:class:`Violation` records.  The framework supplies what every rule
needs — the AST, the raw source lines (for comment-based directives),
path scoping, and inline suppressions — so each rule in
:mod:`~repro.staticcheck.rules` is just the check itself.

Directives (written as comments, checked against the raw line text):

* ``# scapcheck: disable=SC001`` — suppress the named rule(s) on this
  line; several ids may be comma-separated, and a bare
  ``# scapcheck: disable`` suppresses every rule on the line.
* ``# scapcheck: disable-file=SC001`` — within the first five lines of
  a file, suppress the named rule(s) for the whole file (fixture files
  full of deliberate violations stay readable this way); a bare
  ``disable-file`` suppresses every rule in the file.
* ``# scapcheck: single-owner`` — on a ``class`` or ``def`` line,
  declares that the object is only ever touched by a single thread
  (the simulation loop), which satisfies rule SC003's shared-state
  discipline without a lock.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Type

__all__ = [
    "Violation",
    "SourceFile",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "check_source",
    "FILE_DIRECTIVE_LINES",
]

_DISABLE_RE = re.compile(r"#\s*scapcheck:\s*disable(?!-file)(?:=([A-Za-z0-9_, ]+))?")
_DISABLE_FILE_RE = re.compile(r"#\s*scapcheck:\s*disable-file(?:=([A-Za-z0-9_, ]+))?")
_SINGLE_OWNER_RE = re.compile(r"#\s*scapcheck:\s*single-owner")

#: How many leading lines a ``disable-file`` directive may appear on.
FILE_DIRECTIVE_LINES = 5


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a file position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: SC00x message`` — the CLI output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class SourceFile:
    """One parsed source file plus its raw lines for directive lookup."""

    def __init__(self, path: str, text: str):
        self.path = path.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        # File-level suppressions: a `# scapcheck: disable-file=...`
        # directive in the first FILE_DIRECTIVE_LINES lines.  None means
        # a bare disable-file (everything suppressed).
        self.file_disabled: Optional[FrozenSet[str]] = frozenset()
        for raw in self.lines[:FILE_DIRECTIVE_LINES]:
            match = _DISABLE_FILE_RE.search(raw)
            if match is None:
                continue
            listed = match.group(1)
            if listed is None:
                self.file_disabled = None
                break
            ids = {item.strip().upper() for item in listed.split(",") if item.strip()}
            self.file_disabled = frozenset(set(self.file_disabled or ()) | ids)

    def line_text(self, line: int) -> str:
        """The raw text of 1-indexed ``line`` ("" when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def file_suppressed(self, rule_id: str) -> bool:
        """True if a leading disable-file directive covers ``rule_id``."""
        if self.file_disabled is None:
            return True
        return rule_id.upper() in self.file_disabled

    def suppressed(self, line: int, rule_id: str) -> bool:
        """True if ``line`` (or the file header) suppresses ``rule_id``."""
        if self.file_suppressed(rule_id):
            return True
        match = _DISABLE_RE.search(self.line_text(line))
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True  # bare "disable": everything on this line
        ids = {item.strip().upper() for item in listed.split(",") if item.strip()}
        return rule_id.upper() in ids

    def single_owner(self, line: int) -> bool:
        """True if ``line`` (a class/def line) is annotated single-owner."""
        return _SINGLE_OWNER_RE.search(self.line_text(line)) is not None


class Rule:
    """Base class for scapcheck rules.

    Subclasses set ``rule_id``/``description``, optionally narrow
    ``packages`` (path substrings such as ``repro/core``; empty means
    the whole tree), and implement :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""
    #: Path fragments the rule is restricted to (empty = everywhere).
    packages: FrozenSet[str] = frozenset()

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects the file at ``path`` at all."""
        if not self.packages:
            return True
        normalized = path.replace("\\", "/")
        return any(fragment in normalized for fragment in self.packages)

    def check(self, source: SourceFile) -> List[Violation]:
        """Inspect one file; return all findings (before suppression)."""
        raise NotImplementedError

    def violation(self, source: SourceFile, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


#: rule_id -> rule class, filled by the @register_rule decorator.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.rule_id:
        raise ValueError("rule class must set rule_id")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def check_source(
    source: SourceFile, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Run ``rules`` (default: all registered) over one file.

    Inline ``# scapcheck: disable=...`` suppressions are applied here,
    so rules themselves never need to know about them.
    """
    if rules is None:
        rules = [cls() for cls in RULE_REGISTRY.values()]
    findings: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(source.path):
            continue
        for finding in rule.check(source):
            if not source.suppressed(finding.line, finding.rule_id):
                findings.append(finding)
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return findings
