"""The scapcheck driver: walk files, run rules, report.

Entry points:

* ``python -m repro.staticcheck [paths...]`` — standalone runner;
* ``repro-scap scapcheck [paths...]`` — the CLI subcommand (same code);
* :func:`run_paths` — the programmatic API the tests use.

``--project`` additionally parses every file into one
:class:`~repro.staticcheck.concurrency.project.Project` and runs the
whole-program concurrency rules (SC006–SC008) on top of the per-file
rules.  ``--format`` selects ``text`` (default), ``json`` (one document
with violations, errors, and per-rule counts), or ``github`` (workflow
``::error`` annotations, so CI failures mark PR lines).

Exit status is 0 when clean, 1 when any violation is reported, 2 on
usage errors (unreadable path, unknown rule id).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .framework import RULE_REGISTRY, Rule, SourceFile, Violation, check_source
from . import rules as _rules  # noqa: F401  (importing registers the rules)
from .concurrency import (
    PROJECT_RULE_REGISTRY,
    ProjectRule,
    build_project,
    check_project,
)

__all__ = [
    "iter_python_files",
    "run_paths",
    "build_parser",
    "main",
    "rule_counts",
    "render_report",
    "FORMATS",
]

FORMATS = ("text", "json", "github")


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Yield every ``.py`` file under ``paths``, each exactly once.

    Overlapping arguments (``src/repro src/repro/core``) and repeated
    files are deduplicated on the real path, so a violation is never
    double-reported; the first spelling of a path wins.
    """
    seen: set = set()
    for path in paths:
        if os.path.isfile(path):
            real = os.path.realpath(path)
            if real not in seen:
                seen.add(real)
                yield path
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if name != "__pycache__"
                )
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    candidate = os.path.join(root, filename)
                    real = os.path.realpath(candidate)
                    if real not in seen:
                        seen.add(real)
                        yield candidate
        else:
            raise FileNotFoundError(path)


def _select_rules(
    select: Optional[Sequence[str]], project: bool
) -> Tuple[List[Rule], Optional[List[ProjectRule]]]:
    """(per-file rules, project rules or None when project mode is off)."""
    if not select:
        file_rules = [cls() for cls in RULE_REGISTRY.values()]
        project_rules = (
            [cls() for cls in PROJECT_RULE_REGISTRY.values()] if project else None
        )
        return file_rules, project_rules
    file_rules = []
    project_rules = [] if project else None
    for rule_id in select:
        normalized = rule_id.strip().upper()
        if normalized in RULE_REGISTRY:
            file_rules.append(RULE_REGISTRY[normalized]())
        elif normalized in PROJECT_RULE_REGISTRY and project:
            assert project_rules is not None
            project_rules.append(PROJECT_RULE_REGISTRY[normalized]())
        else:
            raise KeyError(normalized)
    return file_rules, project_rules


def run_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    project: bool = False,
) -> Tuple[List[Violation], List[str]]:
    """Check every Python file under ``paths``.

    Returns ``(violations, errors)`` where ``errors`` are files that
    could not be parsed (syntax errors are reported, not fatal — a
    linter must survive broken input).  With ``project=True`` the
    whole-program rules (SC006–SC008) run over all parseable files as
    one :class:`Project`; selecting a project rule id without
    ``project=True`` raises ``KeyError`` like any unknown rule.
    """
    file_rules, project_rules = _select_rules(select, project)
    violations: List[Violation] = []
    errors: List[str] = []
    sources: List[SourceFile] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                text = handle.read()
            source = SourceFile(filename, text)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{filename}: {exc}")
            continue
        sources.append(source)
        violations.extend(check_source(source, file_rules))
    if project_rules is not None and sources:
        violations.extend(check_project(build_project(sources), project_rules))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, errors


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the standalone ``python -m repro.staticcheck``."""
    parser = argparse.ArgumentParser(
        prog="scapcheck",
        description="repo-specific static analysis for the Scap reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="SC00x",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program concurrency rules (SC006-SC008)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        dest="fmt",
        help="output format: text (default), json, or github annotations",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def list_rules() -> str:
    """The rule catalogue, one ``SC00x  description`` line per rule."""
    lines = []
    for rule_id in sorted(RULE_REGISTRY):
        lines.append(f"{rule_id}  {RULE_REGISTRY[rule_id].description}")
    for rule_id in sorted(PROJECT_RULE_REGISTRY):
        lines.append(
            f"{rule_id}  {PROJECT_RULE_REGISTRY[rule_id].description}"
            "  [--project]"
        )
    return "\n".join(lines)


def rule_counts(violations: Sequence[Violation]) -> Dict[str, int]:
    """Findings per rule id, sorted by id."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def _summary_line(violations: Sequence[Violation]) -> str:
    counts = rule_counts(violations)
    per_rule = ", ".join(f"{rule_id}={n}" for rule_id, n in counts.items())
    return f"scapcheck: {len(violations)} violation(s) ({per_rule})"


def render_report(
    violations: Sequence[Violation], errors: Sequence[str], fmt: str = "text"
) -> Tuple[str, str]:
    """(stdout text, stderr text) for one run in the chosen format."""
    if fmt == "json":
        document = {
            "violations": [
                {
                    "rule": v.rule_id,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in violations
            ],
            "errors": list(errors),
            "counts": rule_counts(violations),
        }
        return json.dumps(document, indent=2), ""
    out_lines: List[str] = []
    if fmt == "github":
        for v in violations:
            # Workflow command: annotates the PR line in the Files tab.
            out_lines.append(
                f"::error file={v.path},line={v.line},col={v.col},"
                f"title={v.rule_id}::{v.rule_id} {v.message}"
            )
    else:
        out_lines.extend(v.format() for v in violations)
    if violations:
        out_lines.append(_summary_line(violations))
    elif not errors:
        out_lines.append("scapcheck: clean")
    err_lines = [f"error: {error}" for error in errors]
    return "\n".join(out_lines), "\n".join(err_lines)


def report(
    violations: Sequence[Violation],
    errors: Sequence[str],
    fmt: str = "text",
) -> int:
    """Print findings to stdout/stderr; return the process exit code."""
    out, err = render_report(violations, errors, fmt)
    if out:
        print(out)
    if err:
        print(err, file=sys.stderr)
    if violations:
        return 1
    if errors:
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        violations, errors = run_paths(
            args.paths, select=args.select, project=args.project
        )
    except FileNotFoundError as exc:
        print(f"scapcheck: no such path: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"scapcheck: unknown rule {exc.args[0]}", file=sys.stderr)
        return 2
    return report(violations, errors, fmt=args.fmt)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
