"""The scapcheck driver: walk files, run rules, report.

Entry points:

* ``python -m repro.staticcheck [paths...]`` — standalone runner;
* ``repro-scap scapcheck [paths...]`` — the CLI subcommand (same code);
* :func:`run_paths` — the programmatic API the tests use.

Exit status is 0 when clean, 1 when any violation is reported, 2 on
usage errors (unreadable path, unknown rule id).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, List, Optional, Sequence, Tuple

from .framework import RULE_REGISTRY, Rule, SourceFile, Violation, check_source
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = ["iter_python_files", "run_paths", "build_parser", "main"]


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if name != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(root, filename)
        else:
            raise FileNotFoundError(path)


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if not select:
        return [cls() for cls in RULE_REGISTRY.values()]
    chosen: List[Rule] = []
    for rule_id in select:
        normalized = rule_id.strip().upper()
        if normalized not in RULE_REGISTRY:
            raise KeyError(normalized)
        chosen.append(RULE_REGISTRY[normalized]())
    return chosen


def run_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> Tuple[List[Violation], List[str]]:
    """Check every Python file under ``paths``.

    Returns ``(violations, errors)`` where ``errors`` are files that
    could not be parsed (syntax errors are reported, not fatal — a
    linter must survive broken input).
    """
    rules = _select_rules(select)
    violations: List[Violation] = []
    errors: List[str] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                text = handle.read()
            source = SourceFile(filename, text)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{filename}: {exc}")
            continue
        violations.extend(check_source(source, rules))
    return violations, errors


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the standalone ``python -m repro.staticcheck``."""
    parser = argparse.ArgumentParser(
        prog="scapcheck",
        description="repo-specific static analysis for the Scap reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="SC00x",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def list_rules() -> str:
    """The rule catalogue, one ``SC00x  description`` line per rule."""
    lines = []
    for rule_id in sorted(RULE_REGISTRY):
        lines.append(f"{rule_id}  {RULE_REGISTRY[rule_id].description}")
    return "\n".join(lines)


def report(violations: Sequence[Violation], errors: Sequence[str]) -> int:
    """Print findings to stdout; return the process exit code."""
    for violation in violations:
        print(violation.format())
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if violations:
        print(f"scapcheck: {len(violations)} violation(s)")
        return 1
    if errors:
        return 2
    print("scapcheck: clean")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        violations, errors = run_paths(args.paths, select=args.select)
    except FileNotFoundError as exc:
        print(f"scapcheck: no such path: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"scapcheck: unknown rule {exc.args[0]}", file=sys.stderr)
        return 2
    return report(violations, errors)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
