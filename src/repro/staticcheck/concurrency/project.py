"""The multi-file ``Project`` model behind scapcheck's SC006–SC008.

A :class:`Project` parses every file once, then exposes:

* a **symbol table** — every class (with its single-owner annotation,
  lock attributes, attribute types, and methods) and every module-level
  function, indexed by bare name across all files;
* a **type-guided call graph** — call sites are resolved through a
  deliberately conservative local type inference (parameter and return
  annotations, ``x = ClassName(...)`` locals, ``self.attr`` types
  harvested from the class body).  An unresolvable receiver produces
  *no* edge: the graph is incomplete by design, because a name-only
  resolution of methods like ``append`` or ``close`` would connect
  everything to everything and drown the rules in false positives;
* the **concurrent roots** — functions handed to ``threading.Thread``
  targets or submitted to thread/process pool executors, each tagged
  with the execution kinds it can run under;
* **reachability** — BFS over the call graph from a root, tracking
  which classes are constructed *inside* the reachable region (objects
  a concurrent job builds for itself are thread-local and exempt from
  the single-owner escape rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..framework import SourceFile
from ..rules import _dotted_chain, _lock_attributes, _mutation_nodes

__all__ = [
    "ClassModel",
    "FunctionModel",
    "ConcurrentRoot",
    "Reachable",
    "Project",
    "build_project",
]

#: Executor classes and the execution kind a submit to them implies.
_EXECUTOR_KINDS = {
    "ThreadPoolExecutor": "thread",
    "ProcessPoolExecutor": "process",
}

MODULE_BODY = "<module>"


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Plausible class names named by an annotation (Optional unwrapped)."""
    names: Set[str] = set()
    if node is None:
        return names
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the trailing identifier.
        tail = node.value.strip().rsplit(".", 1)[-1].strip("'\"[] ")
        if tail.isidentifier():
            names.add(tail)
        return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    # Typing containers are not instance types.
    return names - {"Optional", "Union", "None", "Any", "List", "Dict",
                    "Tuple", "Set", "Sequence", "Iterable", "Callable"}


@dataclass
class FunctionModel:
    """One function or method (or a module body) in the project."""

    name: str
    qualname: str
    source: SourceFile
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Module
    cls: Optional["ClassModel"] = None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    def body(self) -> List[ast.stmt]:
        """The function's statement list (module statements for ``<module>``)."""
        return list(self.node.body)  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((self.source.path, self.qualname))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionModel)
            and self.source.path == other.source.path
            and self.qualname == other.qualname
        )


@dataclass
class ClassModel:
    """One class definition plus the facts the rules need about it."""

    name: str
    source: SourceFile
    node: ast.ClassDef
    single_owner: bool
    lock_attrs: FrozenSet[str]
    methods: Dict[str, FunctionModel] = field(default_factory=dict)
    #: self.<attr> -> candidate class names, harvested from assignments
    #: and annotations anywhere in the class body.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.source.path}::{self.name}"


@dataclass
class ConcurrentRoot:
    """One function that can run on another thread or process.

    ``kinds`` is a subset of {"thread", "process"}: a ``threading.Thread``
    target is a thread root; a pool submit inherits the executor's
    kind(s) — when an alias may name either executor (as
    ``ShardedCapture`` imports either pool under one name), both kinds
    apply.
    """

    kinds: FrozenSet[str]
    targets: Tuple[FunctionModel, ...]
    description: str  # e.g. "threading.Thread target at writer.py:411"
    site_source: SourceFile
    site: ast.AST
    #: Argument expressions captured by the job (submit/Thread args).
    captured_args: Tuple[ast.expr, ...] = ()
    #: The function whose body contains the spawn site.
    spawner: Optional[FunctionModel] = None


@dataclass
class Reachable:
    """BFS closure from one concurrent root."""

    functions: Set[FunctionModel]
    constructed: Set[str]  # class names constructed inside the closure


class Project:
    """Symbol table + call graph over a set of parsed source files."""

    def __init__(self, sources: Sequence[SourceFile]):
        self.sources = list(sources)
        self.classes: Dict[str, List[ClassModel]] = {}
        self.functions: Dict[str, List[FunctionModel]] = {}
        self.methods: Dict[str, List[FunctionModel]] = {}
        self.module_bodies: List[FunctionModel] = []
        self.roots: List[ConcurrentRoot] = []
        self._edges: Dict[FunctionModel, Tuple[Set[FunctionModel], Set[str]]] = {}
        for source in self.sources:
            self._index_source(source)
        for source in self.sources:
            self._find_roots(source)

    # ------------------------------------------------------------------
    # Symbol table
    # ------------------------------------------------------------------
    def _index_source(self, source: SourceFile) -> None:
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(source, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                model = FunctionModel(
                    name=node.name, qualname=node.name, source=source, node=node
                )
                self.functions.setdefault(node.name, []).append(model)
        self.module_bodies.append(
            FunctionModel(
                name=MODULE_BODY, qualname=MODULE_BODY, source=source,
                node=source.tree,
            )
        )

    def _index_class(self, source: SourceFile, node: ast.ClassDef) -> None:
        model = ClassModel(
            name=node.name,
            source=source,
            node=node,
            single_owner=source.single_owner(node.lineno),
            lock_attrs=frozenset(_lock_attributes(node)),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionModel(
                    name=item.name,
                    qualname=f"{node.name}.{item.name}",
                    source=source,
                    node=item,
                    cls=model,
                )
                model.methods[item.name] = method
                self.methods.setdefault(item.name, []).append(method)
        model.attr_types = self._harvest_attr_types(node)
        self.classes.setdefault(node.name, []).append(model)

    def _harvest_attr_types(self, cls: ast.ClassDef) -> Dict[str, Set[str]]:
        """``self.<attr>`` -> candidate class names, from the class body."""
        types: Dict[str, Set[str]] = {}
        param_annotations: Dict[str, Set[str]] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = item.args
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                names = _annotation_names(arg.annotation)
                if names:
                    param_annotations[arg.arg] = names
            for sub in ast.walk(item):
                if isinstance(sub, ast.AnnAssign) and self._is_self_attr(sub.target):
                    attr = sub.target.attr  # type: ignore[union-attr]
                    types.setdefault(attr, set()).update(
                        _annotation_names(sub.annotation)
                    )
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if not self._is_self_attr(target):
                            continue
                        attr = target.attr  # type: ignore[union-attr]
                        inferred = self._value_type_names(
                            sub.value, param_annotations
                        )
                        if inferred:
                            types.setdefault(attr, set()).update(inferred)
        return types

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _value_type_names(
        self, value: ast.AST, params: Dict[str, Set[str]]
    ) -> Set[str]:
        """Candidate class names for the value of an assignment."""
        if isinstance(value, ast.BoolOp):
            # `observability or NULL_OBSERVABILITY`: try every operand.
            names: Set[str] = set()
            for operand in value.values:
                names |= self._value_type_names(operand, params)
            return names
        if isinstance(value, ast.Name):
            return set(params.get(value.id, ()))
        if isinstance(value, (ast.ListComp, ast.List)):
            elements = (
                [value.elt] if isinstance(value, ast.ListComp) else value.elts
            )
            names = set()
            for element in elements:
                names |= self._value_type_names(element, params)
            return names
        if isinstance(value, ast.Call):
            chain = _dotted_chain(value.func)
            if not chain:
                return set()
            tail = chain[-1]
            if tail in self.classes:
                return {tail}
            returns = self._return_types(tail)
            return returns
        return set()

    def _return_types(self, func_name: str) -> Set[str]:
        """Class names named by return annotations of ``func_name``."""
        names: Set[str] = set()
        for model in self.functions.get(func_name, []) + self.methods.get(
            func_name, []
        ):
            returns = getattr(model.node, "returns", None)
            for candidate in _annotation_names(returns):
                if candidate in self.classes:
                    names.add(candidate)
        return names

    # ------------------------------------------------------------------
    # Local environments and call resolution
    # ------------------------------------------------------------------
    def _local_env(self, fn: FunctionModel) -> Dict[str, Set[str]]:
        """Variable name -> candidate class names inside ``fn``."""
        env: Dict[str, Set[str]] = {}
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                names = _annotation_names(arg.annotation)
                if names:
                    env[arg.arg] = names
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                inferred = self._value_type_names(sub.value, env)
                if not inferred and isinstance(sub.value, ast.Attribute):
                    inferred = self._attr_expr_types(fn, sub.value, env)
                if inferred:
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            env.setdefault(target.id, set()).update(inferred)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is None or not isinstance(
                        item.optional_vars, ast.Name
                    ):
                        continue
                    inferred = self._value_type_names(item.context_expr, env)
                    if inferred:
                        env.setdefault(item.optional_vars.id, set()).update(inferred)
        return env

    def _attr_expr_types(
        self,
        fn: FunctionModel,
        expr: ast.Attribute,
        env: Dict[str, Set[str]],
    ) -> Set[str]:
        """Types of ``<recv>.<attr>`` via the receiver's attr_types."""
        receiver_types = self._receiver_types(fn, expr.value, env)
        names: Set[str] = set()
        for type_name in receiver_types:
            for cls in self.classes.get(type_name, []):
                names |= cls.attr_types.get(expr.attr, set())
        return names

    def _receiver_types(
        self, fn: FunctionModel, recv: ast.AST, env: Dict[str, Set[str]]
    ) -> Set[str]:
        """Candidate class names for a call/attribute receiver."""
        if isinstance(recv, ast.Name):
            if recv.id == "self" and fn.cls is not None:
                return {fn.cls.name}
            return set(env.get(recv.id, ()))
        if isinstance(recv, ast.Attribute):
            return self._attr_expr_types(fn, recv, env)
        if isinstance(recv, ast.Subscript):
            # Element of a typed container: list-of-ClassName attrs.
            return self._receiver_types(fn, recv.value, env)
        if isinstance(recv, ast.Call):
            chain = _dotted_chain(recv.func)
            if chain:
                tail = chain[-1]
                if tail in self.classes:
                    return {tail}
                return self._return_types(tail)
        return set()

    def resolve_call(
        self,
        fn: FunctionModel,
        call: ast.Call,
        env: Dict[str, Set[str]],
    ) -> Tuple[Set[FunctionModel], Set[str]]:
        """(callee models, constructed class names) for one call site."""
        func = call.func
        callees: Set[FunctionModel] = set()
        constructed: Set[str] = set()
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.classes:
                constructed.add(name)
                for cls in self.classes[name]:
                    init = cls.methods.get("__init__")
                    if init is not None:
                        callees.add(init)
            else:
                callees.update(self.functions.get(name, ()))
            return callees, constructed
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in self.classes and not self._receiver_types(
                fn, func.value, env
            ):
                # module.ClassName(...) style construction.
                constructed.add(attr)
                for cls in self.classes[attr]:
                    init = cls.methods.get("__init__")
                    if init is not None:
                        callees.add(init)
                return callees, constructed
            receiver_types = self._receiver_types(fn, func.value, env)
            for type_name in receiver_types:
                for cls in self.classes.get(type_name, []):
                    method = cls.methods.get(attr)
                    if method is not None:
                        callees.add(method)
            if not receiver_types:
                # Unresolved receiver: resolve module-level functions by
                # name (cross-module helpers), but never methods — a
                # name-only method match would connect everything.
                callees.update(self.functions.get(attr, ()))
            return callees, constructed
        return callees, constructed

    # ------------------------------------------------------------------
    # Concurrent roots
    # ------------------------------------------------------------------
    def _executor_aliases(self, source: SourceFile) -> Dict[str, Set[str]]:
        """Imported name -> executor kinds it may refer to."""
        aliases: Dict[str, Set[str]] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    kind = _EXECUTOR_KINDS.get(alias.name)
                    if kind is not None:
                        aliases.setdefault(alias.asname or alias.name, set()).add(
                            kind
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "concurrent.futures":
                        aliases.setdefault(alias.asname or "concurrent", set())
        return aliases

    def _functions_of(self, source: SourceFile) -> List[FunctionModel]:
        """Every function/method model plus the module body of one file."""
        out: List[FunctionModel] = []
        for models in self.functions.values():
            out.extend(m for m in models if m.source is source)
        for models in self.methods.values():
            out.extend(m for m in models if m.source is source)
        out.extend(m for m in self.module_bodies if m.source is source)
        return out

    def _find_roots(self, source: SourceFile) -> None:
        executor_aliases = self._executor_aliases(source)
        for fn in self._functions_of(source):
            env = self._local_env(fn)
            pool_kinds = self._pool_bindings(fn, executor_aliases, env)
            own_nodes = self._own_nodes(fn)
            for sub in own_nodes:
                if not isinstance(sub, ast.Call):
                    continue
                self._root_from_thread(source, fn, sub, env)
                self._root_from_submit(
                    source, fn, sub, executor_aliases, pool_kinds, env
                )

    def _own_nodes(self, fn: FunctionModel) -> List[ast.AST]:
        """AST nodes belonging to ``fn`` itself.

        For a module body, nested function/class bodies are excluded —
        they are modeled as their own functions.
        """
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(fn.node.body)  # type: ignore[attr-defined]
        while stack:
            node = stack.pop()
            if fn.name == MODULE_BODY and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _pool_bindings(
        self,
        fn: FunctionModel,
        executor_aliases: Dict[str, Set[str]],
        env: Dict[str, Set[str]],
    ) -> Dict[str, Set[str]]:
        """Local variable -> executor kinds ({"thread"}, {"process"}, or both)."""
        kinds: Dict[str, Set[str]] = {}

        def value_kinds(value: ast.AST) -> Set[str]:
            if isinstance(value, ast.Call):
                chain = _dotted_chain(value.func)
                if chain:
                    tail = chain[-1]
                    direct = _EXECUTOR_KINDS.get(tail)
                    if direct is not None:
                        return {direct}
                    if tail in executor_aliases and executor_aliases[tail]:
                        return set(executor_aliases[tail])
            return set()

        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Assign):
                found = value_kinds(sub.value)
                if found:
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            kinds.setdefault(target.id, set()).update(found)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is None or not isinstance(
                        item.optional_vars, ast.Name
                    ):
                        continue
                    found = value_kinds(item.context_expr)
                    if found:
                        kinds.setdefault(item.optional_vars.id, set()).update(
                            found
                        )
        return kinds

    def _callable_targets(
        self, fn: FunctionModel, expr: ast.AST
    ) -> Tuple[FunctionModel, ...]:
        """Function models a callable expression may name."""
        if isinstance(expr, ast.Name):
            return tuple(self.functions.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn.cls is not None
            ):
                method = fn.cls.methods.get(expr.attr)
                return (method,) if method is not None else ()
            # obj.method as a target: resolve by method name across all
            # classes that define it — spawning another object's method
            # on a thread is exactly what SC006 wants to see.
            return tuple(self.methods.get(expr.attr, ()))
        return ()

    def _root_from_thread(
        self,
        source: SourceFile,
        fn: FunctionModel,
        call: ast.Call,
        env: Dict[str, Set[str]],
    ) -> None:
        chain = _dotted_chain(call.func)
        if not chain or chain[-1] != "Thread":
            return
        target_expr = None
        args_expr: Tuple[ast.expr, ...] = ()
        for kw in call.keywords:
            if kw.arg == "target":
                target_expr = kw.value
            elif kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                args_expr = tuple(kw.value.elts)
        if target_expr is None:
            return
        targets = self._callable_targets(fn, target_expr)
        if not targets:
            return
        self.roots.append(
            ConcurrentRoot(
                kinds=frozenset({"thread"}),
                targets=targets,
                description=(
                    f"threading.Thread target at {source.path}:{call.lineno}"
                ),
                site_source=source,
                site=call,
                captured_args=args_expr,
                spawner=fn,
            )
        )

    def _root_from_submit(
        self,
        source: SourceFile,
        fn: FunctionModel,
        call: ast.Call,
        executor_aliases: Dict[str, Set[str]],
        pool_kinds: Dict[str, Set[str]],
        env: Dict[str, Set[str]],
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in ("submit", "map"):
            return
        kinds: Set[str] = set()
        recv = func.value
        if isinstance(recv, ast.Name):
            kinds = set(pool_kinds.get(recv.id, ()))
        elif isinstance(recv, ast.Call):
            chain = _dotted_chain(recv.func)
            if chain:
                tail = chain[-1]
                if tail in _EXECUTOR_KINDS:
                    kinds = {_EXECUTOR_KINDS[tail]}
                elif tail in executor_aliases:
                    kinds = set(executor_aliases[tail])
        if not kinds or not call.args:
            return
        targets = self._callable_targets(fn, call.args[0])
        if not targets:
            return
        kind_label = "/".join(sorted(kinds))
        self.roots.append(
            ConcurrentRoot(
                kinds=frozenset(kinds),
                targets=targets,
                description=(
                    f"{kind_label}-pool {func.attr} at {source.path}:{call.lineno}"
                ),
                site_source=source,
                site=call,
                captured_args=tuple(call.args[1:]),
                spawner=fn,
            )
        )

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def edges(self, fn: FunctionModel) -> Tuple[Set[FunctionModel], Set[str]]:
        """(callees, constructed class names) of one function, cached."""
        cached = self._edges.get(fn)
        if cached is not None:
            return cached
        callees: Set[FunctionModel] = set()
        constructed: Set[str] = set()
        env = self._local_env(fn)
        for sub in self._own_nodes(fn):
            if isinstance(sub, ast.Call):
                found, built = self.resolve_call(fn, sub, env)
                callees |= found
                constructed |= built
        self._edges[fn] = (callees, constructed)
        return self._edges[fn]

    def reachable(self, root: ConcurrentRoot) -> Reachable:
        """The call-graph closure of one concurrent root."""
        seen: Set[FunctionModel] = set()
        constructed: Set[str] = set()
        frontier: List[FunctionModel] = list(root.targets)
        while frontier:
            fn = frontier.pop()
            if fn in seen:
                continue
            seen.add(fn)
            callees, built = self.edges(fn)
            constructed |= built
            frontier.extend(callees - seen)
        return Reachable(functions=seen, constructed=constructed)

    # ------------------------------------------------------------------
    def mutations(self, fn: FunctionModel) -> List[ast.AST]:
        """``self``-state mutation nodes inside a method."""
        hits: List[ast.AST] = []
        for stmt in fn.body():
            hits.extend(_mutation_nodes(stmt))
        return hits


def build_project(sources: Sequence[SourceFile]) -> Project:
    """Parse ``sources`` into a :class:`Project` (symbol table + roots)."""
    return Project(sources)
