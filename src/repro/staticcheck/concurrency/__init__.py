"""Whole-program concurrency analysis for scapcheck (SC006–SC008).

The per-file rules in :mod:`repro.staticcheck.rules` can prove local
properties; this package parses the *entire* ``src/repro`` tree into a
:class:`~repro.staticcheck.concurrency.project.Project` — a symbol
table plus a type-guided call graph — and checks the cross-module
concurrency discipline the sharded hot path depends on:

* **SC006** — a class annotated ``# scapcheck: single-owner`` whose
  state is mutated from code reachable from a concurrent root (a
  ``threading.Thread`` target, a thread-pool submit such as
  ``ShardedCapture``'s executor, or a store writer thread) without the
  instance being constructed inside that root's own call tree.
* **SC007** — lockset inconsistency: an attribute mutated under
  ``with self.<lock>:`` in one method of a class but bare in another.
* **SC008** — fork-safety: a live single-owner object captured as an
  argument by a ``ProcessPoolExecutor`` job.

See ``docs/STATIC_ANALYSIS.md`` for the catalogue entry of each rule.
"""

from __future__ import annotations

from .project import Project, build_project
from .rules import (
    PROJECT_RULE_REGISTRY,
    ProjectRule,
    check_project,
    register_project_rule,
)

__all__ = [
    "Project",
    "build_project",
    "ProjectRule",
    "PROJECT_RULE_REGISTRY",
    "register_project_rule",
    "check_project",
]
