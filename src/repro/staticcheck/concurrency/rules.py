"""Project-level scapcheck rules: SC006, SC007, SC008.

Unlike the per-file rules in :mod:`repro.staticcheck.rules`, these see a
whole :class:`~repro.staticcheck.concurrency.project.Project` at once
and reason across files through the call graph.  Inline and file-level
``# scapcheck: disable`` directives still apply — suppression is
resolved against the file each violation is anchored in.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from ..framework import SourceFile, Violation
from ..rules import _mutation_nodes
from .project import ClassModel, FunctionModel, Project

__all__ = [
    "ProjectRule",
    "PROJECT_RULE_REGISTRY",
    "register_project_rule",
    "check_project",
]


class ProjectRule:
    """Base class for whole-program rules."""

    rule_id: str = ""
    description: str = ""

    def check(self, project: Project) -> List[Violation]:
        """Analyze the whole project and return every violation found."""
        raise NotImplementedError

    def violation(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` in ``source``."""
        return Violation(
            rule_id=self.rule_id,
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


PROJECT_RULE_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a rule to :data:`PROJECT_RULE_REGISTRY`."""
    if not cls.rule_id:
        raise ValueError("project rule class must set rule_id")
    PROJECT_RULE_REGISTRY[cls.rule_id] = cls
    return cls


def _self_attr_name(node: ast.AST) -> Optional[str]:
    """The root ``self.<attr>`` name a target expression reaches, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _mutated_attrs(node: ast.AST) -> Set[str]:
    """``self`` attributes a mutation node (from ``_mutation_nodes``) touches."""
    attrs: Set[str] = set()
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = _self_attr_name(target)
            if name is not None:
                attrs.add(name)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        name = _self_attr_name(node.func.value)
        if name is not None:
            attrs.add(name)
    return attrs


# ----------------------------------------------------------------------
# SC006 — single-owner objects must not escape into concurrent code
# ----------------------------------------------------------------------
@register_project_rule
class SingleOwnerEscapeRule(ProjectRule):
    """SC006: mutation of a single-owner class from a concurrent root.

    A class annotated ``# scapcheck: single-owner`` promises that one
    thread owns every instance.  If a method of such a class that
    mutates ``self`` state is reachable from a thread target or a pool
    submit, *and* the class is not constructed anywhere inside that
    root's own call tree (which would make the instance thread-local),
    the promise is broken cross-module.
    """

    rule_id = "SC006"
    description = (
        "single-owner class state mutated from code reachable from a "
        "thread/pool concurrent root without a root-local construction"
    )

    def check(self, project: Project) -> List[Violation]:
        """Flag single-owner mutations reachable from concurrent roots."""
        findings: List[Violation] = []
        seen: Set[Tuple[str, int]] = set()
        for root in project.roots:
            closure = project.reachable(root)
            for fn in sorted(
                closure.functions, key=lambda f: (f.source.path, f.lineno)
            ):
                cls = fn.cls
                if cls is None or not cls.single_owner:
                    continue
                if cls.name in closure.constructed:
                    continue  # built inside the root: thread-local instance
                mutations = project.mutations(fn)
                if not mutations:
                    continue
                anchor = mutations[0]
                key = (fn.source.path, getattr(anchor, "lineno", fn.lineno))
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    self.violation(
                        fn.source,
                        anchor,
                        f"single-owner class {cls.name} is mutated in "
                        f"{fn.qualname}, reachable from {root.description}, "
                        "but no instance is constructed inside that root's "
                        "call tree; pass a root-local instance, add locking, "
                        "or drop the single-owner annotation",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# SC007 — lockset consistency inside a class
# ----------------------------------------------------------------------
@register_project_rule
class LocksetConsistencyRule(ProjectRule):
    """SC007: an attribute locked in one method must be locked in all.

    Classic Eraser-style lockset discipline at class granularity: if
    ``self.x`` is only ever mutated under ``with self._lock:`` in some
    method, a bare mutation of ``self.x`` in a *different* method of the
    same class is a candidate race.  ``__init__`` (runs before the
    object is shared) and methods annotated ``# scapcheck:
    single-owner`` are exempt.
    """

    rule_id = "SC007"
    description = (
        "attribute mutated under `with self.<lock>:` in one method but "
        "bare in another method of the same class"
    )

    def check(self, project: Project) -> List[Violation]:
        """Check every class's lockset discipline method by method."""
        findings: List[Violation] = []
        for models in project.classes.values():
            for cls in models:
                findings.extend(self._check_class(cls))
        return findings

    def _check_class(self, cls: ClassModel) -> List[Violation]:
        if not cls.lock_attrs or cls.single_owner:
            return []
        locked_by_method: Dict[str, Set[str]] = {}
        bare_sites: List[Tuple[str, str, ast.AST]] = []  # (method, attr, node)
        for name, method in cls.methods.items():
            if name == "__init__":
                continue
            if method.source.single_owner(method.lineno):
                continue
            for attr, node, locked in self._classified_mutations(cls, method):
                if locked:
                    locked_by_method.setdefault(attr, set()).add(name)
                else:
                    bare_sites.append((name, attr, node))
        findings: List[Violation] = []
        for method_name, attr, node in bare_sites:
            locked_in = locked_by_method.get(attr, set()) - {method_name}
            if not locked_in:
                continue
            others = ", ".join(sorted(locked_in))
            findings.append(
                self.violation(
                    cls.source,
                    node,
                    f"{cls.name}.{method_name} mutates self.{attr} without a "
                    f"lock, but {cls.name}.{others} mutates it under "
                    "`with self.<lock>:`; lock this site too or annotate the "
                    "method `# scapcheck: single-owner`",
                )
            )
        return findings

    def _classified_mutations(
        self, cls: ClassModel, method: FunctionModel
    ) -> List[Tuple[str, ast.AST, bool]]:
        """(attr, node, held-a-lock) for every mutation in ``method``."""
        out: List[Tuple[str, ast.AST, bool]] = []

        def is_lock_expr(expr: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Attribute) and sub.attr in cls.lock_attrs
                for sub in ast.walk(expr)
            )

        def walk(stmts: Sequence[ast.stmt], locked: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    holds = locked or any(
                        is_lock_expr(item.context_expr) for item in stmt.items
                    )
                    walk(stmt.body, holds)
                elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                    walk(stmt.body, locked)
                    walk(getattr(stmt, "orelse", []), locked)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, locked)
                    for handler in stmt.handlers:
                        walk(handler.body, locked)
                    walk(stmt.orelse, locked)
                    walk(stmt.finalbody, locked)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(stmt.body, locked)
                else:
                    for hit in _mutation_nodes(stmt):
                        for attr in _mutated_attrs(hit):
                            if attr in cls.lock_attrs:
                                continue  # assigning the lock itself
                            out.append((attr, hit, locked))

        walk(method.body(), False)
        return out


# ----------------------------------------------------------------------
# SC008 — process-pool jobs must not capture live single-owner objects
# ----------------------------------------------------------------------
@register_project_rule
class ForkCaptureRule(ProjectRule):
    """SC008: a ProcessPoolExecutor job aliasing a live single-owner object.

    Submitting an argument whose inferred type is a single-owner class
    to a process pool pickles a *snapshot* of the object: mutations the
    job makes are silently lost, and mutations the parent makes race the
    pickling.  Jobs must receive plain data and build their own
    single-owner objects on the far side (as ``_run_shard`` does).
    """

    rule_id = "SC008"
    description = (
        "ProcessPoolExecutor submit captures an argument aliasing a live "
        "single-owner object; pass plain data and construct in the child"
    )

    def check(self, project: Project) -> List[Violation]:
        """Flag single-owner objects captured by process-pool submits."""
        findings: List[Violation] = []
        for root in project.roots:
            if "process" not in root.kinds or root.spawner is None:
                continue
            env = project._local_env(root.spawner)
            for arg in root.captured_args:
                expr: ast.AST = arg
                if isinstance(expr, ast.Starred):
                    expr = expr.value
                for type_name in sorted(
                    project._receiver_types(root.spawner, expr, env)
                ):
                    for cls in project.classes.get(type_name, []):
                        if not cls.single_owner:
                            continue
                        findings.append(
                            self.violation(
                                root.site_source,
                                arg,
                                f"argument of {root.description} aliases a "
                                f"live single-owner {cls.name} instance; "
                                "process jobs get a pickled copy — pass "
                                "plain data and construct the object in "
                                "the child",
                            )
                        )
                        break  # one finding per (arg, type name)
        return findings


def check_project(
    project: Project, rules: Optional[Sequence[ProjectRule]] = None
) -> List[Violation]:
    """Run project rules (default: all registered), apply suppressions."""
    if rules is None:
        rules = [cls() for cls in PROJECT_RULE_REGISTRY.values()]
    by_path = {source.path: source for source in project.sources}
    findings: List[Violation] = []
    for rule in rules:
        for finding in rule.check(project):
            source = by_path.get(finding.path)
            if source is not None and source.suppressed(
                finding.line, finding.rule_id
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    # The same site can be implicated via several roots across rules;
    # keep the first report per (path, line, rule).
    deduped: List[Violation] = []
    seen: Set[Tuple[str, int, str]] = set()
    for finding in findings:
        key = (finding.path, finding.line, finding.rule_id)
        if key in seen:
            continue
        seen.add(key)
        deduped.append(finding)
    return deduped
