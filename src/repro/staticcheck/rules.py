"""The repo-specific scapcheck rules (SC001–SC005).

Each rule encodes one invariant of this codebase that ordinary linters
cannot express (see ``docs/STATIC_ANALYSIS.md`` for the catalogue and
the rationale behind each):

* SC001 — simulated-time code must never read the wall clock.
* SC002 — observability hook calls must sit behind the disabled fast
  path (``if <obs>.enabled:``), so monitoring is free when off.
* SC003 — shared worker/queue state must declare its concurrency
  discipline: lock-protected mutation or an explicit single-owner
  annotation.
* SC004 — every :class:`~repro.core.events.Event` construction must
  name a valid stream-state transition with the fields it requires.
* SC005 — public ``scap_*`` API functions need docstrings and full
  type hints.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .framework import Rule, SourceFile, Violation, register_rule

__all__ = [
    "NoWallClockRule",
    "GuardedHooksRule",
    "SharedStateRule",
    "EventTransitionRule",
    "ScapApiContractRule",
    "HOT_PATH_PACKAGES",
]

#: Packages that run in simulated time on the capture hot path.
HOT_PATH_PACKAGES = frozenset(
    {
        "repro/core",
        "repro/nic",
        "repro/kernelsim",
        "repro/netstack",
        "repro/store",
        "repro/faultinject",
    }
)


# ----------------------------------------------------------------------
# SC001 — no wall clock in simulated-time code
# ----------------------------------------------------------------------
_WALL_CLOCK_ATTRS: Dict[str, Set[str]] = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    },
    "datetime": {"now", "utcnow", "today"},  # the datetime class
    "date": {"today"},
}


def _dotted_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ["a", "b", "c"]; [] when not a pure name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


@register_rule
class NoWallClockRule(Rule):
    """SC001: hot-path code must use the injected simulated clock."""

    rule_id = "SC001"
    description = (
        "no wall-clock reads (time.time, datetime.now, time.monotonic, ...) "
        "in simulated-time packages; use the injected clock"
    )
    packages = HOT_PATH_PACKAGES

    def check(self, source: SourceFile) -> List[Violation]:
        module_aliases: Dict[str, str] = {}  # local name -> "time" | "datetime" module
        class_aliases: Dict[str, str] = {}  # local name -> "datetime" | "date" class
        direct_calls: Dict[str, Tuple[str, str]] = {}  # local name -> (base, attr)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_ATTRS["time"]:
                            direct_calls[alias.asname or alias.name] = ("time", alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            class_aliases[alias.asname or alias.name] = alias.name

        findings: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve(node.func, module_aliases, class_aliases, direct_calls)
            if resolved is None:
                continue
            base, attr = resolved
            if attr == "monotonic" and (node.args or node.keywords):
                continue  # only the argless form reads the wall clock here
            findings.append(
                self.violation(
                    source,
                    node,
                    f"wall-clock read {base}.{attr}() in simulated-time code; "
                    "take `now` from the injected clock instead",
                )
            )
        return findings

    def _resolve(
        self,
        func: ast.AST,
        module_aliases: Dict[str, str],
        class_aliases: Dict[str, str],
        direct_calls: Dict[str, Tuple[str, str]],
    ) -> Optional[Tuple[str, str]]:
        if isinstance(func, ast.Name):
            return direct_calls.get(func.id)
        chain = _dotted_chain(func)
        if len(chain) < 2:
            return None
        attr = chain[-1]
        base = chain[-2]
        if len(chain) == 2:
            # time.time() / dt.now() — base is a module alias or a class alias.
            module = module_aliases.get(base)
            if module == "time" and attr in _WALL_CLOCK_ATTRS["time"]:
                return ("time", attr)
            if module == "datetime" and attr in _WALL_CLOCK_ATTRS["datetime"]:
                # datetime-module functions don't exist; "datetime.now" only
                # resolves when `import datetime` shadows the class use —
                # still a wall-clock read, still flagged.
                return ("datetime", attr)
            cls = class_aliases.get(base)
            if cls is not None and attr in _WALL_CLOCK_ATTRS.get(cls, set()):
                return (cls, attr)
            return None
        # datetime.datetime.now() / dt.date.today() — chain[-3] is the module.
        module = module_aliases.get(chain[-3])
        if module == "datetime" and base in ("datetime", "date"):
            if attr in _WALL_CLOCK_ATTRS.get(base, set()):
                return (base, attr)
        return None


# ----------------------------------------------------------------------
# SC002 — observability hooks must be guarded by the disabled fast path
# ----------------------------------------------------------------------
_HOOK_METHODS = {"inc", "observe", "set"}


def _receiver_is_metric(expr: ast.AST) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and (
            sub.attr.startswith("_m_") or sub.attr == "_core"
        ):
            return True
        if isinstance(sub, ast.Name) and sub.id.startswith("_m_"):
            return True
    return False


def _receiver_is_trace(expr: ast.AST) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr == "trace":
            return True
        if isinstance(sub, ast.Name) and sub.id == "trace":
            return True
    return False


def _is_hook_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _HOOK_METHODS:
        return _receiver_is_metric(func.value)
    if func.attr == "emit":
        return _receiver_is_trace(func.value)
    return False


def _mentions_enabled(test: ast.AST) -> bool:
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id == "enabled":
            return True
    return False


def _is_not_enabled(test: ast.AST) -> bool:
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _mentions_enabled(test.operand)
    )


def _suite_exits(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@register_rule
class GuardedHooksRule(Rule):
    """SC002: metric/trace emission must branch on ``.enabled`` first."""

    rule_id = "SC002"
    description = (
        "observability hook calls (metric .inc/.observe/.set, trace .emit) "
        "must be inside an `if <obs>.enabled:` fast-path guard"
    )
    # Beyond the simulated hot path, the service layer and the span /
    # telemetry recorders emit into the same registry and trace ring, so
    # their call sites carry the same guarded-fast-path contract.  (SC001
    # stays scoped to HOT_PATH_PACKAGES: the daemon legitimately reads
    # the wall clock.)
    packages = HOT_PATH_PACKAGES | frozenset(
        {"repro/service", "repro/observability/spans",
         "repro/observability/telemetry"}
    )

    def check(self, source: SourceFile) -> List[Violation]:
        self._findings: List[Violation] = []
        self._source = source
        self._suite(source.tree.body, guarded=False)
        return self._findings

    # Statement-list walker carrying the "are we behind an enabled
    # guard" flag; an `if not X.enabled: return` early exit guards the
    # remainder of the suite.
    def _suite(self, stmts: List[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            guarded = self._statement(stmt, guarded)

    def _statement(self, stmt: ast.stmt, guarded: bool) -> bool:
        if isinstance(stmt, ast.If):
            positive = _mentions_enabled(stmt.test) and not _is_not_enabled(stmt.test)
            negative = _is_not_enabled(stmt.test)
            self._scan(stmt.test, guarded)
            self._suite(stmt.body, guarded or positive)
            self._suite(stmt.orelse, guarded or negative)
            if negative and _suite_exits(stmt.body):
                return True
            return guarded
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._suite(stmt.body, False)
            return guarded
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter, guarded)
            self._suite(stmt.body, guarded)
            self._suite(stmt.orelse, guarded)
            return guarded
        if isinstance(stmt, ast.While):
            self._scan(stmt.test, guarded)
            self._suite(stmt.body, guarded)
            self._suite(stmt.orelse, guarded)
            return guarded
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan(item.context_expr, guarded)
            self._suite(stmt.body, guarded)
            return guarded
        if isinstance(stmt, ast.Try):
            self._suite(stmt.body, guarded)
            for handler in stmt.handlers:
                self._suite(handler.body, guarded)
            self._suite(stmt.orelse, guarded)
            self._suite(stmt.finalbody, guarded)
            return guarded
        self._scan(stmt, guarded)
        return guarded

    def _scan(self, node: ast.AST, guarded: bool) -> None:
        if guarded:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _is_hook_call(sub):
                self._findings.append(
                    self.violation(
                        self._source,
                        sub,
                        "observability hook call outside an `if <obs>.enabled:` "
                        "guard; the disabled fast path must cost one boolean",
                    )
                )


# ----------------------------------------------------------------------
# SC003 — shared worker/queue state needs a declared discipline
# ----------------------------------------------------------------------
#: Classes whose instances are reachable from more than one logical
#: execution context (kernel cores and worker threads in the real
#: system); they must either lock their mutations or declare that a
#: single owner drives them.
_SHARED_CLASS_NAMES = frozenset(
    {"WorkerPool", "QueueServer", "MemoryPool", "FlowDirectorTable", "FlowTable"}
)
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "discard",
        "clear",
        "update",
        "setdefault",
    }
)


def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
    """Names of ``self.<x>`` attributes assigned a threading Lock/RLock."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        chain = _dotted_chain(value.func)
        if not chain or chain[-1] not in ("Lock", "RLock"):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _touches_self(expr: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "self" for sub in ast.walk(expr)
    )


def _mutation_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """Sub-nodes of ``stmt`` that mutate ``self`` state, if any."""
    hits: List[ast.AST] = []
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            if isinstance(sub, ast.AnnAssign) and sub.value is None:
                continue
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and _touches_self(
                    target
                ):
                    hits.append(sub)
                    break
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and _touches_self(func.value)
            ):
                hits.append(sub)
    return hits


@register_rule
class SharedStateRule(Rule):
    """SC003: lightweight race detector for shared pool/queue classes."""

    rule_id = "SC003"
    description = (
        "shared WorkerPool/queue state must be mutated under a lock or in a "
        "class/method annotated `# scapcheck: single-owner`"
    )
    packages = HOT_PATH_PACKAGES

    def check(self, source: SourceFile) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(self, source: SourceFile, cls: ast.ClassDef) -> List[Violation]:
        locks = _lock_attributes(cls)
        shared = cls.name in _SHARED_CLASS_NAMES or bool(locks)
        if not shared:
            return []
        if source.single_owner(cls.lineno):
            return []  # discipline declared: one owner, no locking needed
        if not locks:
            return [
                self.violation(
                    source,
                    cls,
                    f"shared class {cls.name} declares no concurrency discipline: "
                    "add a lock around mutations or annotate the class "
                    "`# scapcheck: single-owner`",
                )
            ]
        findings: List[Violation] = []
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or source.single_owner(item.lineno):
                continue
            findings.extend(self._check_method(source, cls, item, locks))
        return findings

    def _check_method(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        locks: Set[str],
    ) -> List[Violation]:
        findings: List[Violation] = []

        def walk(stmts: List[ast.stmt], locked: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    holds = locked or any(
                        self._is_lock_expr(item.context_expr, locks)
                        for item in stmt.items
                    )
                    walk(stmt.body, holds)
                elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                    for suite in (
                        stmt.body,
                        getattr(stmt, "orelse", []),
                    ):
                        walk(suite, locked)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, locked)
                    for handler in stmt.handlers:
                        walk(handler.body, locked)
                    walk(stmt.orelse, locked)
                    walk(stmt.finalbody, locked)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(stmt.body, locked)
                elif not locked:
                    for hit in _mutation_nodes(stmt):
                        findings.append(
                            self.violation(
                                source,
                                hit,
                                f"{cls.name}.{method.name} mutates shared state "
                                "outside `with self.<lock>:`; lock it or annotate "
                                "the method `# scapcheck: single-owner`",
                            )
                        )

        walk(method.body, False)
        return findings

    @staticmethod
    def _is_lock_expr(expr: ast.AST, locks: Set[str]) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute) and sub.attr in locks:
                return True
        return False


# ----------------------------------------------------------------------
# SC004 — Event constructions must carry a valid stream transition
# ----------------------------------------------------------------------
_EVENT_TYPES = frozenset({"STREAM_CREATED", "STREAM_DATA", "STREAM_TERMINATED"})


@register_rule
class EventTransitionRule(Rule):
    """SC004: ``Event(...)`` must name an ``EventType`` member correctly."""

    rule_id = "SC004"
    description = (
        "Event() must be constructed with an EventType.* member; STREAM_DATA "
        "events must carry chunk= and reason=, others must not carry chunk="
    )
    packages = HOT_PATH_PACKAGES

    def check(self, source: SourceFile) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name != "Event":
                continue
            findings.extend(self._check_event(source, node))
        return findings

    def _check_event(self, source: SourceFile, node: ast.Call) -> List[Violation]:
        event_type: Optional[ast.AST] = node.args[0] if node.args else None
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}
        if event_type is None:
            event_type = keywords.get("event_type")
        if event_type is None:
            return [
                self.violation(source, node, "Event() constructed without an event type")
            ]
        if not (
            isinstance(event_type, ast.Attribute)
            and isinstance(event_type.value, ast.Name)
            and event_type.value.id == "EventType"
        ):
            return [
                self.violation(
                    source,
                    node,
                    "Event() type must be an EventType.* member, not an arbitrary "
                    "expression or bare string",
                )
            ]
        member = event_type.attr
        if member not in _EVENT_TYPES:
            return [
                self.violation(
                    source, node, f"EventType.{member} is not a stream-state transition"
                )
            ]
        findings: List[Violation] = []
        if member == "STREAM_DATA":
            for required in ("chunk", "reason"):
                if required not in keywords:
                    findings.append(
                        self.violation(
                            source,
                            node,
                            f"STREAM_DATA event must carry {required}=",
                        )
                    )
        elif "chunk" in keywords:
            findings.append(
                self.violation(
                    source,
                    node,
                    f"{member} event must not carry chunk= (data travels only on "
                    "STREAM_DATA)",
                )
            )
        return findings


# ----------------------------------------------------------------------
# SC005 — scap_* API contract: docstrings + type hints
# ----------------------------------------------------------------------
@register_rule
class ScapApiContractRule(Rule):
    """SC005: public ``scap_*`` functions are the paper-facing API."""

    rule_id = "SC005"
    description = "scap_* functions must have a docstring and complete type hints"
    # Applies to the whole tree: the API surface is not hot-path-only.

    def check(self, source: SourceFile) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith("scap_"):
                continue
            if ast.get_docstring(node) is None:
                findings.append(
                    self.violation(
                        source, node, f"{node.name} has no docstring (public API)"
                    )
                )
            if node.returns is None:
                findings.append(
                    self.violation(
                        source, node, f"{node.name} is missing a return annotation"
                    )
                )
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            if positional and positional[0].arg in ("self", "cls"):
                positional = positional[1:]
            for arg in positional + list(args.kwonlyargs):
                if arg.annotation is None:
                    findings.append(
                        self.violation(
                            source,
                            node,
                            f"{node.name} parameter {arg.arg!r} is missing a type hint",
                        )
                    )
            for vararg in (args.vararg, args.kwarg):
                if vararg is not None and vararg.annotation is None:
                    findings.append(
                        self.violation(
                            source,
                            node,
                            f"{node.name} parameter {vararg.arg!r} is missing a "
                            "type hint",
                        )
                    )
        return findings
