"""The stream store facade: one directory, one API.

:class:`StreamStore` ties the pieces together — the writer pipeline
appends records to per-core segment series, sealed segments flow into
the in-memory index, the retention engine prunes by age/quota/bytes,
and queries reassemble stored streams (optionally re-materialized as a
replay trace).  Opening a directory that already holds segments
rebuilds the index by scanning them, so crash recovery and a normal
open are the same operation.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import List, Optional

from ..netstack.flows import FiveTuple
from ..observability import NULL_OBSERVABILITY, Observability
from .index import StoreIndex
from .query import QueryResult, run_query
from .replay import StoredStreamSource
from .retention import RetentionEngine, RetentionPolicy, RetentionReport
from .segment import SegmentInfo, StreamRecord
from .writer import DEFAULT_QUEUE_BYTES, DEFAULT_SEGMENT_BYTES, StoreWriter

__all__ = ["StoreStats", "StreamStore"]


@dataclass
class StoreStats:
    """A snapshot of one store's accounting counters."""

    #: Live payload bytes currently indexed (stored and queryable).
    stored_bytes: int = 0
    #: On-disk footprint of all segment files.
    disk_bytes: int = 0
    #: Records currently indexed.
    record_count: int = 0
    #: Segment files currently live.
    segment_count: int = 0
    #: Payload bytes ever offered to the writer queues.
    enqueued_bytes: int = 0
    #: Payload bytes written into segment files.
    written_bytes: int = 0
    #: Payload bytes dropped by writer-queue overflow.
    writer_queue_drop_bytes: int = 0
    #: Records dropped by writer-queue overflow.
    writer_queue_drops: int = 0
    #: Payload bytes sitting in the writer queues right now.
    queue_depth_bytes: int = 0
    #: Payload bytes evicted by retention so far.
    evicted_bytes: int = 0
    #: Records evicted by retention so far.
    evicted_records: int = 0
    #: Segments sealed over the store's lifetime.
    segments_sealed: int = 0
    #: Bytes saved by zlib compression so far.
    compressed_saved_bytes: int = 0


class StreamStore:
    """A persistent, indexed, retained store of captured streams.

    All public methods are safe to call from the capture path and from
    writer threads; index mutations happen under ``_lock``.
    """

    def __init__(
        self,
        directory: str,
        cores: int = 1,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compress: bool = False,
        fsync: bool = False,
        retention: Optional[RetentionPolicy] = None,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
        use_threads: bool = False,
    ):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self.index = StoreIndex()
        recovered = self.index.scan_directory(directory)
        start_sequence = _next_sequence(directory)
        self.retention_policy = retention or RetentionPolicy()
        self._retention = RetentionEngine(self.index, self.retention_policy)
        self.evicted_bytes = 0
        self.evicted_records = 0
        self.last_ts = max(
            (segment.info.last_ts for segment in recovered if segment.records),
            default=0.0,
        )
        self._obs = observability or NULL_OBSERVABILITY
        self._m_evicted = self._obs.registry.counter(
            "scap_store_evicted_bytes_total", "payload bytes evicted by retention"
        )
        self._m_stored = self._obs.registry.gauge(
            "scap_store_stored_bytes", "live payload bytes indexed in the store"
        )
        self.writer = StoreWriter(
            directory,
            cores=cores,
            queue_bytes=queue_bytes,
            segment_bytes=segment_bytes,
            compress=compress,
            fsync=fsync,
            observability=observability,
            sanitizers=sanitizers,
            on_seal=self._on_seal,
            start_sequence=start_sequence,
        )
        if use_threads:
            self.writer.start_threads()
        self._closed = False

    # ------------------------------------------------------------------
    def attach_sanitizers(self, sanitizers: Optional[object]) -> None:
        """Late-bind a sanitizer context to the writer pipeline."""
        self.writer.attach_sanitizers(sanitizers)

    def attach_fault_injector(self, fault_injector: Optional[object]) -> None:
        """Late-bind a fault injector (store plane) to the writer."""
        self.writer.attach_fault_injector(fault_injector)

    # ------------------------------------------------------------------
    def _on_seal(self, info: SegmentInfo) -> None:
        with self._lock:
            self.index.add_segment_file(info.path)
            if self._obs.enabled:
                self._m_stored.set(self.index.payload_bytes)

    # ------------------------------------------------------------------
    def append(self, record: StreamRecord, core: int = 0) -> bool:  # scapcheck: single-owner
        """Offer one record to the writer pipeline (False if dropped)."""
        if record.timestamp > self.last_ts:
            self.last_ts = record.timestamp
        return self.writer.enqueue(core, record)

    def flush(self) -> None:
        """Drain the queues and seal every active segment."""
        self.writer.seal_all()

    def adopt_obs_owner(self) -> None:
        """Declare the calling thread the writer's metrics owner.

        See :meth:`StoreWriter.adopt_obs_owner`: call it after taking
        whatever lock serializes this store across threads.
        """
        self.writer.adopt_obs_owner()

    # ------------------------------------------------------------------
    def query(
        self,
        five_tuple: Optional[FiveTuple] = None,
        start_ts: Optional[float] = None,
        end_ts: Optional[float] = None,
    ) -> QueryResult:
        """Reassembled streams matching a five-tuple / time-range."""
        with self._lock:
            return run_query(self.index, five_tuple, start_ts, end_ts)

    def replay_source(
        self,
        five_tuple: Optional[FiveTuple] = None,
        start_ts: Optional[float] = None,
        end_ts: Optional[float] = None,
        name: str = "stored-replay",
    ) -> StoredStreamSource:
        """A replayable trace source for the matching streams."""
        return StoredStreamSource(self.query(five_tuple, start_ts, end_ts), name=name)

    def connections(self) -> List[FiveTuple]:
        """Distinct stored connections (client-perspective tuples)."""
        with self._lock:
            return self.index.connections()

    # ------------------------------------------------------------------
    def enforce_retention(self, now_ts: Optional[float] = None) -> RetentionReport:
        """Run the retention policies; ``now_ts`` defaults to newest seen."""
        with self._lock:
            report = self._retention.enforce(self.last_ts if now_ts is None else now_ts)
            self.evicted_bytes += report.evicted_bytes
            self.evicted_records += report.evicted_records
            if self._obs.enabled and report.evicted_bytes:
                self._m_evicted.inc(report.evicted_bytes)
                self._m_stored.set(self.index.payload_bytes)
            return report

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """A consistent snapshot of the store's counters."""
        with self._lock:
            return StoreStats(
                stored_bytes=self.index.payload_bytes,
                disk_bytes=self.index.disk_bytes,
                record_count=self.index.record_count,
                segment_count=len(self.index.segments),
                enqueued_bytes=self.writer.enqueued_bytes,
                written_bytes=self.writer.written_bytes,
                writer_queue_drop_bytes=self.writer.dropped_bytes,
                writer_queue_drops=self.writer.dropped_records,
                queue_depth_bytes=self.writer.queue_depth_bytes,
                evicted_bytes=self.evicted_bytes,
                evicted_records=self.evicted_records,
                segments_sealed=self.writer.segments_sealed,
                compressed_saved_bytes=self.writer.compressed_saved,
            )

    # ------------------------------------------------------------------
    def close(self, enforce_retention: bool = True) -> StoreStats:  # scapcheck: single-owner
        """Seal everything, run a final retention sweep, check ledgers."""
        if self._closed:
            return self.stats()
        self.writer.close()
        if enforce_retention and self.retention_policy.enabled:
            self.enforce_retention()
        self._closed = True
        return self.stats()


def _next_sequence(directory: str) -> int:
    """First unused segment sequence number in ``directory``."""
    highest = -1
    for name in os.listdir(directory):
        if name.startswith("seg-") and name.endswith(".scap"):
            try:
                highest = max(highest, int(name[:-5].rsplit("-", 1)[1]))
            except (IndexError, ValueError):
                continue
    return highest + 1
