"""The store's async writer pipeline: spill queues + writer threads.

Recording must never stall the capture path, so deliveries are
*enqueued* on bounded per-core spill queues and written to segment
files by writer threads — the same decoupling the PF_RING/n2disk dump
pipelines use.  Three properties are enforced here:

* **bounded memory** — each queue holds at most ``queue_bytes`` of
  payload; an enqueue that does not fit evicts queued records
  *oldest-lowest-priority first* (mirroring PPL semantics: under
  pressure, high-priority streams and stream heads survive), and if
  the incoming record's priority is below everything queued, the
  incoming record itself is dropped;
* **balanced accounting** — every enqueued byte is eventually either
  written to a segment or counted as dropped; the ledger
  ``enqueued == written + dropped`` must balance to zero outstanding
  at teardown (checked by the store sanitizer);
* **deterministic tests** — writer threads are optional.  Without
  ``start_threads()`` the queues drain synchronously whenever they
  cross half their bound (and on ``drain()``/``close()``), which makes
  every byte's fate a pure function of the input sequence.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from threading import Event as _StopFlag
from typing import Deque, List, Optional, Tuple

from ..observability import NULL_OBSERVABILITY, STAGE_STORE_DRAIN, Observability
from ..sanitizers.race import race_detector_from_env
from .segment import SegmentInfo, SegmentWriter, StreamRecord

__all__ = ["SpillQueue", "StoreWriter", "DEFAULT_QUEUE_BYTES", "DEFAULT_SEGMENT_BYTES"]

DEFAULT_QUEUE_BYTES = 4 << 20
DEFAULT_SEGMENT_BYTES = 16 << 20


class SpillQueue:
    """One core's bounded spill queue of pending stream records.

    All mutations happen under the queue's lock so the optional writer
    threads and the enqueueing capture path never race; payload bytes
    are tracked so the bound is a *byte* budget, not a record count.
    """

    def __init__(self, core: int, queue_bytes: int):
        if queue_bytes <= 0:
            raise ValueError("queue_bytes must be positive")
        self.core = core
        self.queue_bytes = queue_bytes
        self._lock = threading.Lock()
        # SCAP_RACE=1: every queue mutation must hold self._lock — the
        # lockset-mode twin of the class docstring's locking claim.
        self._race = race_detector_from_env()
        self._race_token = (
            self._race.register(f"SpillQueue[{core}]", mode="lockset")
            if self._race is not None
            else 0
        )
        self._records: Deque[StreamRecord] = deque()
        self.depth_bytes = 0
        self.enqueued_records = 0
        self.enqueued_bytes = 0
        self.dropped_records = 0
        self.dropped_bytes = 0

    def __len__(self) -> int:
        return len(self._records)

    def offer(self, record: StreamRecord) -> Tuple[bool, List[StreamRecord]]:
        """Enqueue ``record``; return (accepted, victims_evicted).

        Overflow policy mirrors PPL: evict the queued record with the
        lowest priority (oldest among equals) until the newcomer fits;
        if the newcomer's priority is strictly below every queued
        record's, drop the newcomer instead.
        """
        size = len(record.data)
        victims: List[StreamRecord] = []
        with self._lock:
            if self._race is not None:
                self._race.check(self._race_token, op="offer", locks=("_lock",))
            self.enqueued_records += 1
            self.enqueued_bytes += size
            if size > self.queue_bytes:
                self.dropped_records += 1
                self.dropped_bytes += size
                return False, victims
            while self.depth_bytes + size > self.queue_bytes:
                victim_index = self._lowest_priority_index()
                victim = self._records[victim_index]
                if victim.priority > record.priority:
                    # Everything queued outranks the newcomer: drop it.
                    self.dropped_records += 1
                    self.dropped_bytes += size
                    return False, victims
                del self._records[victim_index]
                self.depth_bytes -= len(victim.data)
                self.dropped_records += 1
                self.dropped_bytes += len(victim.data)
                victims.append(victim)
            self._records.append(record)
            self.depth_bytes += size
            return True, victims

    def _lowest_priority_index(self) -> int:
        """Index of the oldest record among the lowest priority queued."""
        best_index = 0
        best_priority = self._records[0].priority
        for index in range(1, len(self._records)):
            if self._records[index].priority < best_priority:
                best_priority = self._records[index].priority
                best_index = index
        return best_index

    def pop_all(self) -> List[StreamRecord]:
        """Remove and return everything queued (drain step)."""
        with self._lock:
            if self._race is not None:
                self._race.check(self._race_token, op="pop_all", locks=("_lock",))
            drained = list(self._records)
            self._records.clear()
            self.depth_bytes = 0
            return drained


class StoreWriter:
    """Per-core spill queues feeding per-core segment series on disk.

    Each core owns its own segment series (``seg-<core>-<nnnnnn>``), so
    concurrent writer threads never contend on a file.  Segments roll
    at ``segment_bytes`` and sealed segments are reported through
    ``on_seal`` (the store wires this to its index).
    """

    def __init__(
        self,
        directory: str,
        cores: int = 1,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compress: bool = False,
        fsync: bool = False,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
        on_seal=None,
        start_sequence: int = 0,
        fault_injector: Optional[object] = None,
    ):
        if cores < 1:
            raise ValueError("need at least one core queue")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.compress = compress
        self.fsync = fsync
        self.queues = [SpillQueue(core, queue_bytes) for core in range(cores)]
        self.written_records = 0
        self.written_bytes = 0
        self.disk_bytes_sealed = 0
        self.compressed_saved = 0
        self.segments_sealed = 0
        self._fault = fault_injector
        # Store-plane fault accounting.  Errored records count as
        # dropped in the byte ledger (enqueued == written + dropped).
        self.write_errors = 0
        self.write_error_bytes = 0
        self.fsync_stall_seconds_total = 0.0
        self.segments_torn = 0
        self._last_record_ts = 0.0
        self._active: List[Optional[SegmentWriter]] = [None] * cores
        self._sequence = start_sequence
        self._io_lock = threading.Lock()
        self._on_seal = on_seal
        self._san = sanitizers
        self._obs = observability or NULL_OBSERVABILITY
        registry = self._obs.registry
        self._m_enqueued = registry.counter(
            "scap_store_enqueued_bytes_total", "payload bytes offered to the spill queues"
        )
        self._m_written = registry.counter(
            "scap_store_written_bytes_total", "payload bytes appended to segment files"
        )
        self._m_dropped = registry.counter(
            "scap_store_dropped_bytes_total",
            "payload bytes dropped by spill-queue overflow",
        )
        self._m_sealed = registry.counter(
            "scap_store_segments_sealed_total", "segments sealed (footer + fsync)"
        )
        self._m_depth_family = registry.gauge(
            "scap_store_queue_depth_bytes",
            "spill-queue occupancy in payload bytes, per core",
            labels=("core",),
        )
        self._m_depth = [self._m_depth_family.labels(core) for core in range(cores)]
        # Counters are plain `value += n` with no lock of their own, so
        # writer threads must never touch them: drains *buffer* their
        # observability under _obs_lock and the owner thread emits it
        # on its next enqueue/drain/seal (see _flush_obs).
        self._obs_lock = threading.Lock()
        self._pending_written = 0
        self._pending_dropped = 0
        self._pending_sealed = 0
        self._pending_depth: dict = {}
        self._pending_waits: List[Tuple[int, float]] = []
        # SCAP_RACE=1: the emission sites stay owner-thread state.
        self._race = race_detector_from_env()
        self._race_token = (
            self._race.register("StoreWriter.obs")
            if self._race is not None
            else 0
        )
        self._threads: List[threading.Thread] = []
        self._stop = _StopFlag()
        self._wakeup = threading.Condition()

    # ------------------------------------------------------------------
    def attach_sanitizers(self, sanitizers: Optional[object]) -> None:  # scapcheck: single-owner
        """Late-bind a sanitizer context (e.g. the capture runtime's).

        Only valid before any bytes were enqueued — the ledger must see
        the writer's whole lifetime or teardown balance is meaningless.
        """
        if sanitizers is None or self._san is not None:
            return
        if self.enqueued_bytes or self.written_bytes:
            raise ValueError("cannot attach sanitizers to a writer already in use")
        self._san = sanitizers

    def attach_fault_injector(self, fault_injector: Optional[object]) -> None:  # scapcheck: single-owner
        """Late-bind the run's fault injector (store plane).

        Like :meth:`attach_sanitizers`, only valid before any bytes
        were enqueued, so the whole lifetime runs under one plan.
        """
        if fault_injector is None or self._fault is not None:
            return
        if self.enqueued_bytes or self.written_bytes:
            raise ValueError("cannot attach a fault injector to a writer already in use")
        self._fault = fault_injector

    def adopt_obs_owner(self) -> None:
        """Declare the calling thread the metrics-emission owner.

        The metric counters are owner-thread state (plain ``+=`` with
        no lock; see ``_flush_obs``).  A host that serializes writer
        use across threads with its own lock — the daemon's capture
        lock — calls this after taking that lock so ``SCAP_RACE``
        tracks the ownership handoff instead of convicting threads
        that are in fact serialized.
        """
        if self._race is not None:
            self._race.adopt(self._race_token)

    @property
    def cores(self) -> int:
        """Number of per-core spill queues."""
        return len(self.queues)

    @property
    def enqueued_bytes(self) -> int:
        """Total payload bytes ever offered to the queues."""
        return sum(queue.enqueued_bytes for queue in self.queues)

    @property
    def dropped_bytes(self) -> int:
        """Total payload bytes dropped (queue overflow + write errors)."""
        return (
            sum(queue.dropped_bytes for queue in self.queues)
            + self.write_error_bytes
        )

    @property
    def dropped_records(self) -> int:
        """Records dropped (queue overflow + write errors)."""
        return (
            sum(queue.dropped_records for queue in self.queues) + self.write_errors
        )

    @property
    def queue_depth_bytes(self) -> int:
        """Payload bytes currently sitting in the spill queues."""
        return sum(queue.depth_bytes for queue in self.queues)

    @property
    def outstanding_bytes(self) -> int:
        """Ledger balance: enqueued minus (written + dropped)."""
        return self.enqueued_bytes - self.written_bytes - self.dropped_bytes

    # ------------------------------------------------------------------
    def enqueue(self, core: int, record: StreamRecord) -> bool:
        """Offer a record to ``core``'s queue; False if it was dropped.

        In synchronous mode (no threads running) the queue is drained
        inline once it crosses half its byte bound, so memory stays
        bounded without any background machinery.
        """
        queue = self.queues[core % len(self.queues)]
        accepted, _victims = queue.offer(record)
        if self._san is not None:
            self._san.store.on_enqueue(len(record.data))
            if not accepted:
                self._san.store.on_drop(len(record.data))
            for victim in _victims:
                self._san.store.on_drop(len(victim.data))
        if self._obs.enabled:
            self._flush_obs()
            if self._race is not None:
                self._race.check(self._race_token, op="enqueue-metrics")
            self._m_enqueued.inc(len(record.data))
            dropped = (0 if accepted else len(record.data)) + sum(
                len(victim.data) for victim in _victims
            )
            if dropped:
                self._m_dropped.inc(dropped)
            self._m_depth[queue.core].set(queue.depth_bytes)
        if self._threads:
            with self._wakeup:
                self._wakeup.notify_all()
        elif queue.depth_bytes * 2 >= queue.queue_bytes:
            self.drain(queue.core)
        return accepted

    def drain(self, core: Optional[int] = None) -> int:
        """Write queued records to segments; return records written."""
        cores = range(len(self.queues)) if core is None else [core]
        written = 0
        for index in cores:
            written += self._drain_one(index)
        if self._obs.enabled:
            self._flush_obs()
        return written

    def _drain_one(self, core: int) -> int:
        queue = self.queues[core]
        records = queue.pop_all()
        if not records:
            return 0
        written_payload = 0
        errored_payload = 0
        with self._io_lock:
            writer = self._writer_for(core)
            for record in records:
                self._last_record_ts = max(self._last_record_ts, record.timestamp)
                if self._fault is not None and self._fault.store_write_error(
                    record.timestamp, len(record.data)
                ):
                    # Simulated EIO: the record is lost; its bytes move
                    # to the dropped side of the ledger so accounting
                    # still balances at teardown.
                    self.write_errors += 1
                    self.write_error_bytes += len(record.data)
                    errored_payload += len(record.data)
                    if self._san is not None:
                        self._san.store.on_drop(len(record.data))
                    continue
                writer.append(record)
                self.written_records += 1
                self.written_bytes += len(record.data)
                written_payload += len(record.data)
                if self._san is not None:
                    self._san.store.on_write(len(record.data))
                if writer.disk_bytes >= self.segment_bytes:
                    self._seal_active(core)
                    writer = self._writer_for(core)
        if self._obs.enabled:
            # Spill-queue wait, in *simulated* time: the drain happens no
            # earlier than the newest record in the batch, so each
            # record waited at least (newest - its own timestamp).  The
            # drain itself costs no simulated service time (writer
            # threads are off the capture path), so store_drain is a
            # wait-only stage.  All of it is *buffered* here — this
            # method runs on writer threads, which must not touch the
            # lock-free metric objects the capture thread mutates.
            drained_at = max(record.timestamp for record in records)
            waits = [
                (core, drained_at - record.timestamp) for record in records
            ]
            with self._obs_lock:
                self._pending_written += written_payload
                self._pending_dropped += errored_payload
                self._pending_depth[core] = queue.depth_bytes
                self._pending_waits.extend(waits)
        return len(records)

    def _flush_obs(self) -> None:
        """Emit buffered drain/seal observability (owner thread only)."""
        with self._obs_lock:
            written, self._pending_written = self._pending_written, 0
            dropped, self._pending_dropped = self._pending_dropped, 0
            sealed, self._pending_sealed = self._pending_sealed, 0
            depths, self._pending_depth = self._pending_depth, {}
            waits, self._pending_waits = self._pending_waits, []
        if not (written or dropped or sealed or depths or waits):
            return
        if self._obs.enabled:
            if self._race is not None:
                self._race.check(self._race_token, op="flush-metrics")
            if written:
                self._m_written.inc(written)
            if dropped:
                self._m_dropped.inc(dropped)
            if sealed:
                self._m_sealed.inc(sealed)
            for core, depth in depths.items():
                self._m_depth[core].set(depth)
            profiler = self._obs.profiler
            for core, wait in waits:
                profiler.record_wait(STAGE_STORE_DRAIN, core, wait)

    def _writer_for(self, core: int) -> SegmentWriter:  # scapcheck: single-owner
        writer = self._active[core]
        if writer is None:
            name = f"seg-{core}-{self._sequence:06d}.scap"
            self._sequence += 1
            writer = SegmentWriter(
                os.path.join(self.directory, name),
                core=core,
                compress=self.compress,
                fsync=self.fsync,
            )
            self._active[core] = writer
        return writer

    def _seal_active(self, core: int) -> Optional[SegmentInfo]:  # scapcheck: single-owner
        writer = self._active[core]
        if writer is None or writer.record_count == 0:
            if writer is not None:
                # Empty segment: remove the header-only file.
                writer.close()
                os.unlink(writer.path)
                self._active[core] = None
            return None
        self.compressed_saved += writer.compressed_saved
        if self._fault is not None:
            tear = self._fault.store_torn_write(self._last_record_ts)
            if tear:
                # Simulated crash mid-seal: close without a footer and
                # chop the tail, leaving exactly the torn segment the
                # reader's truncation recovery is built for.
                writer.close()
                size = os.path.getsize(writer.path)
                with open(writer.path, "r+b") as handle:
                    handle.truncate(max(size - tear, 1))
                self._active[core] = None
                self.segments_torn += 1
                return None
            self.fsync_stall_seconds_total += self._fault.store_fsync_stall(
                self._last_record_ts
            )
        info = writer.seal()
        self._active[core] = None
        self.segments_sealed += 1
        self.disk_bytes_sealed += info.disk_bytes
        if self._obs.enabled:
            # Sealing can happen on a writer thread mid-drain; buffer
            # the tick and let the owner thread emit it.
            with self._obs_lock:
                self._pending_sealed += 1
        if self._on_seal is not None:
            self._on_seal(info)
        return info

    def seal_all(self) -> List[SegmentInfo]:
        """Drain every queue and seal every active segment."""
        self.drain()
        infos = []
        with self._io_lock:
            for core in range(len(self.queues)):
                info = self._seal_active(core)
                if info is not None:
                    infos.append(info)
        if self._obs.enabled:
            self._flush_obs()
        return infos

    # ------------------------------------------------------------------
    # Optional background writer threads
    # ------------------------------------------------------------------
    def start_threads(self) -> None:  # scapcheck: single-owner
        """Start one writer thread per core queue."""
        if self._threads:
            return
        self._stop.clear()
        for core in range(len(self.queues)):
            thread = threading.Thread(
                target=self._thread_main, args=(core,), name=f"store-writer-{core}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop_threads(self) -> None:  # scapcheck: single-owner
        """Stop the writer threads after draining their queues."""
        if not self._threads:
            return
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        self.drain()

    def _thread_main(self, core: int) -> None:
        while not self._stop.is_set():
            if self._drain_one(core) == 0:
                with self._wakeup:
                    self._wakeup.wait(timeout=0.05)
        self._drain_one(core)

    # ------------------------------------------------------------------
    def close(self) -> List[SegmentInfo]:
        """Stop threads, drain, seal; verify the byte ledger balances."""
        self.stop_threads()
        infos = self.seal_all()
        if self._san is not None:
            self._san.store.check_teardown(self)
        return infos
