"""Replay: a stored query result becomes a trace source again.

The store persists *reassembled stream bytes*, not packets, so replay
synthesizes clean sessions around the stored payloads: for every TCP
connection in a :class:`~repro.store.query.QueryResult` a full
handshake/data/teardown session is rebuilt with
:class:`~repro.traffic.tcpsession.TCPSessionBuilder` (no impairments —
the stored bytes are already the reassembled truth), and every UDP
connection becomes a datagram sequence.  The resulting
:class:`~repro.traffic.trace.Trace` plugs into ``scap_create`` /
``runtime.run`` exactly like a generated workload, closing the
record → query → replay loop.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netstack.flows import FiveTuple
from ..netstack.ip import IPProtocol
from ..netstack.packet import Packet
from ..traffic.tcpsession import SessionMessage, TCPSessionBuilder, build_udp_flow
from ..traffic.trace import FlowSpec, Trace
from .query import StreamPayload

__all__ = ["StoredStreamSource", "UDP_REPLAY_MTU"]

#: Stored UDP stream bytes are re-chunked into datagrams of this size.
UDP_REPLAY_MTU = 1400


class StoredStreamSource:
    """Adapts a query result into a replayable :class:`Trace`.

    Connections are emitted in first-timestamp order, each starting at
    its original simulated capture time, so the replayed trace keeps
    the recorded timeline (rescale with ``Trace.replay`` as usual).
    """

    def __init__(self, result, name: str = "stored-replay"):
        self.result = result
        self.name = name

    def as_trace(self) -> Trace:
        """Synthesize the replay trace from the stored streams."""
        connections: Dict[
            Tuple[int, int, int, int, int], Dict[int, StreamPayload]
        ] = {}
        order: List[Tuple[float, FiveTuple]] = []
        for stream in self.result:
            key = _key(stream.client_tuple)
            if key not in connections:
                connections[key] = {}
                order.append((stream.first_ts, stream.client_tuple))
            connections[key][stream.direction] = stream
        order.sort(key=lambda item: (item[0], item[1]))
        packets: List[Packet] = []
        flows: List[FlowSpec] = []
        for index, (start_ts, client_tuple) in enumerate(order):
            directions = connections[_key(client_tuple)]
            client = directions.get(0)
            server = directions.get(1)
            messages = _interleave(client, server)
            if client_tuple.protocol == IPProtocol.UDP:
                flow_packets = build_udp_flow(
                    client_tuple,
                    [
                        (direction, chunk)
                        for direction, data in messages
                        for chunk in _chunks(data, UDP_REPLAY_MTU)
                    ],
                    start_time=start_ts,
                )
            else:
                builder = TCPSessionBuilder(client_tuple, start_time=start_ts)
                flow_packets = builder.build(
                    [SessionMessage(direction, data) for direction, data in messages]
                )
            packets.extend(flow_packets)
            flows.append(
                FlowSpec(
                    index=index,
                    five_tuple=client_tuple,
                    protocol=client_tuple.protocol,
                    client_bytes=len(client.data) if client else 0,
                    server_bytes=len(server.data) if server else 0,
                    start_time=start_ts,
                    packet_count=len(flow_packets),
                )
            )
        return Trace(packets, flows, name=self.name)


def _key(five_tuple: FiveTuple) -> Tuple[int, int, int, int, int]:
    return (
        five_tuple.src_ip,
        five_tuple.src_port,
        five_tuple.dst_ip,
        five_tuple.dst_port,
        five_tuple.protocol,
    )


def _interleave(client, server) -> List[Tuple[int, bytes]]:
    """Order the two directions' payloads by their first timestamps.

    The store keeps one reassembled payload per direction, so the finest
    replay granularity is direction-level: the direction captured first
    sends first, request/response style.
    """
    messages: List[Tuple[float, int, bytes]] = []
    if client is not None and client.data:
        messages.append((client.first_ts, 0, client.data))
    if server is not None and server.data:
        messages.append((server.first_ts, 1, server.data))
    messages.sort(key=lambda item: (item[0], item[1]))
    return [(direction, data) for _ts, direction, data in messages]


def _chunks(data: bytes, size: int) -> List[bytes]:
    return [data[index : index + size] for index in range(0, len(data), size)] or []
