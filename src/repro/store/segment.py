"""The on-disk segment format of the stream store (docs/STORE.md).

A *segment* is one append-only file of length-prefixed stream records.
Each record frame carries a CRC32 of its body and an optional
zlib-compression flag; a segment that has been cleanly finished is
*sealed* with a footer (record count, time range, payload bytes, its
own CRC, and a trailing magic) so readers can verify completeness
without rescanning.  A segment whose writer died mid-append has a
*torn tail*: recovery replays frames from the front and stops at the
first frame whose length or CRC does not check out, so every record
written before the tear survives and only the torn frame is lost —
the same contract as a write-ahead log.

Layout::

    header   "SCAPSEG\\x01" + u32 core + u32 reserved        (16 bytes)
    frame    u32 body_len | u32 crc32(body) | u8 flags | body
    footer   u32 0xFFFFFFFF | u32 crc32(fbody) | fbody | "SCAPEND\\x01"
             fbody = u64 records | f64 first_ts | f64 last_ts
                     | u64 payload_bytes                      (32 bytes)

``flags`` bit 0 marks a zlib-compressed body.  ``body_len`` is capped
at 2^31-1, so the footer sentinel can never be mistaken for a record.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator, List, Optional, Tuple

from ..netstack.flows import FiveTuple

__all__ = [
    "SEGMENT_MAGIC",
    "FOOTER_MAGIC",
    "StreamRecord",
    "SegmentInfo",
    "SegmentWriter",
    "read_segment",
    "scan_records",
]

SEGMENT_MAGIC = b"SCAPSEG\x01"
FOOTER_MAGIC = b"SCAPEND\x01"

_HEADER = struct.Struct("!8sII")
_FRAME = struct.Struct("!IIB")
_BODY = struct.Struct("!IHIHBBdQH")  # five-tuple, direction, ts, offset, priority
_FOOTER_BODY = struct.Struct("!QddQ")
_FOOTER_SENTINEL = 0xFFFFFFFF
_FLAG_ZLIB = 0x01
_MAX_BODY = (1 << 31) - 1


@dataclass
class StreamRecord:
    """One recorded piece of a stream direction: identity + payload.

    ``five_tuple`` is the *directional* tuple (source = the sender of
    these bytes); ``direction`` says which side of the connection that
    is (0 = client-to-server), so the client-perspective tuple can
    always be reconstructed.  ``stream_offset`` positions ``data``
    inside the reassembled stream, ``timestamp`` is the simulated
    capture time of the delivery, ``priority`` is the stream's PPL
    priority at record time (retention evicts low priorities first).
    """

    five_tuple: FiveTuple
    direction: int
    stream_offset: int
    timestamp: float
    data: bytes
    priority: int = 0

    @property
    def client_tuple(self) -> FiveTuple:
        """The connection's five-tuple from the client's perspective."""
        return self.five_tuple if self.direction == 0 else self.five_tuple.reversed()

    def encode(self) -> bytes:
        """Serialize to the (uncompressed) frame body."""
        ft = self.five_tuple
        return (
            _BODY.pack(
                ft.src_ip,
                ft.src_port,
                ft.dst_ip,
                ft.dst_port,
                ft.protocol,
                self.direction,
                self.timestamp,
                self.stream_offset,
                self.priority,
            )
            + self.data
        )

    @classmethod
    def decode(cls, body: bytes) -> "StreamRecord":
        """Parse a frame body back into a record."""
        (
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            protocol,
            direction,
            timestamp,
            stream_offset,
            priority,
        ) = _BODY.unpack_from(body)
        return cls(
            five_tuple=FiveTuple(src_ip, src_port, dst_ip, dst_port, protocol),
            direction=direction,
            stream_offset=stream_offset,
            timestamp=timestamp,
            data=body[_BODY.size :],
            priority=priority,
        )


@dataclass
class SegmentInfo:
    """What a scan (or a seal) learned about one segment file."""

    path: str
    core: int = 0
    sealed: bool = False
    record_count: int = 0
    payload_bytes: int = 0
    disk_bytes: int = 0
    first_ts: float = 0.0
    last_ts: float = 0.0
    #: Bytes of torn tail discarded by recovery (0 for clean segments).
    torn_bytes: int = 0
    #: (file_offset, frame_bytes) of every recovered record, in order.
    frames: List[Tuple[int, int]] = field(default_factory=list)


class SegmentWriter:
    """Appends records to one segment file; ``seal`` finishes it.

    The writer owns the file handle; ``append`` returns the frame's
    file offset so the index can point straight at it.  ``fsync=True``
    makes every append durable individually (slow, used by tests that
    model crash points); otherwise data is flushed on seal/close.
    """

    def __init__(
        self,
        path: str,
        core: int = 0,
        compress: bool = False,
        fsync: bool = False,
    ):
        self.path = path
        self.core = core
        self.compress = compress
        self.fsync = fsync
        self.record_count = 0
        self.payload_bytes = 0
        self.compressed_saved = 0
        self.first_ts = 0.0
        self.last_ts = 0.0
        self._file: Optional[BinaryIO] = open(path, "wb")
        self._file.write(_HEADER.pack(SEGMENT_MAGIC, core, 0))
        self._offset = _HEADER.size

    @property
    def disk_bytes(self) -> int:
        """Bytes written to the file so far (header + frames)."""
        return self._offset

    @property
    def closed(self) -> bool:
        """True once the writer was sealed or closed."""
        return self._file is None

    def append(self, record: StreamRecord) -> int:
        """Write one record frame; return its file offset."""
        if self._file is None:
            raise ValueError(f"segment {self.path} is closed")
        body = record.encode()
        flags = 0
        if self.compress:
            packed = zlib.compress(body, 6)
            if len(packed) < len(body):
                self.compressed_saved += len(body) - len(packed)
                body = packed
                flags |= _FLAG_ZLIB
        if len(body) > _MAX_BODY:
            raise ValueError(f"record body too large: {len(body)} bytes")
        offset = self._offset
        frame = _FRAME.pack(len(body), zlib.crc32(body), flags) + body
        self._file.write(frame)
        if self.fsync:
            self._file.flush()
            os.fsync(self._file.fileno())
        self._offset += len(frame)
        if self.record_count == 0:
            self.first_ts = record.timestamp
        self.last_ts = max(self.last_ts, record.timestamp)
        self.record_count += 1
        self.payload_bytes += len(record.data)
        return offset

    def seal(self) -> SegmentInfo:
        """Write the footer, fsync, close; return the segment's info."""
        if self._file is None:
            raise ValueError(f"segment {self.path} is closed")
        fbody = _FOOTER_BODY.pack(
            self.record_count, self.first_ts, self.last_ts, self.payload_bytes
        )
        self._file.write(
            struct.pack("!II", _FOOTER_SENTINEL, zlib.crc32(fbody)) + fbody + FOOTER_MAGIC
        )
        self._offset += 8 + len(fbody) + len(FOOTER_MAGIC)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None
        return SegmentInfo(
            path=self.path,
            core=self.core,
            sealed=True,
            record_count=self.record_count,
            payload_bytes=self.payload_bytes,
            disk_bytes=self._offset,
            first_ts=self.first_ts,
            last_ts=self.last_ts,
        )

    def close(self) -> None:
        """Close without sealing (leaves a recoverable, unsealed file)."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None


def scan_records(path: str) -> Iterator[Tuple[int, StreamRecord]]:
    """Yield ``(file_offset, record)`` for every intact record.

    Tolerates truncation anywhere: a frame whose header is short, whose
    body is short, or whose CRC mismatches ends the scan — everything
    before it is returned.  A sealed footer also ends the scan cleanly.
    """
    for offset, record in _scan(path)[0]:
        yield offset, record


def _scan(path: str) -> Tuple[List[Tuple[int, StreamRecord]], SegmentInfo]:
    """Scan one segment; return its records and a SegmentInfo."""
    info = SegmentInfo(path=path)
    records: List[Tuple[int, StreamRecord]] = []
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            info.torn_bytes = len(header)
            return records, info
        magic, core, _reserved = _HEADER.unpack(header)
        if magic != SEGMENT_MAGIC:
            raise ValueError(f"{path}: not a scap segment (bad magic)")
        info.core = core
        position = _HEADER.size
        while True:
            frame_header = handle.read(_FRAME.size)
            if len(frame_header) < _FRAME.size:
                info.torn_bytes = size - position
                break
            body_len, crc, flags = _FRAME.unpack(frame_header)
            if body_len == _FOOTER_SENTINEL:
                # _FRAME reads one byte past the footer's length+crc pair;
                # that byte is the first byte of the footer body.
                rest = handle.read(_FOOTER_BODY.size - 1 + len(FOOTER_MAGIC))
                fbody = bytes([flags]) + rest[: _FOOTER_BODY.size - 1]
                tail = rest[_FOOTER_BODY.size - 1 :]
                if (
                    len(rest) == _FOOTER_BODY.size - 1 + len(FOOTER_MAGIC)
                    and tail == FOOTER_MAGIC
                    and zlib.crc32(fbody) == crc
                ):
                    count, first_ts, last_ts, payload = _FOOTER_BODY.unpack(fbody)
                    if count == len(records):
                        info.sealed = True
                        info.first_ts = first_ts
                        info.last_ts = last_ts
                        position = size
                        break
                info.torn_bytes = size - position
                break
            body = handle.read(body_len)
            if len(body) < body_len or zlib.crc32(body) != crc:
                info.torn_bytes = size - position
                break
            if flags & _FLAG_ZLIB:
                body = zlib.decompress(body)
            record = StreamRecord.decode(body)
            records.append((position, record))
            info.frames.append((position, _FRAME.size + body_len))
            info.payload_bytes += len(record.data)
            if info.record_count == 0:
                info.first_ts = record.timestamp
            info.last_ts = max(info.last_ts, record.timestamp)
            info.record_count += 1
            position += _FRAME.size + body_len
    info.disk_bytes = size
    return records, info


def read_segment(path: str) -> Tuple[List[StreamRecord], SegmentInfo]:
    """Recover a segment: all intact records plus what the scan learned.

    Works on sealed and torn segments alike; ``info.sealed`` says which
    it was and ``info.torn_bytes`` how much tail (if any) was discarded.
    """
    pairs, info = _scan(path)
    return [record for _, record in pairs], info
