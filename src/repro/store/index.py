"""In-memory index over the store's segments, rebuilt by scanning.

The index is *derived* state: opening a store directory scans every
``seg-*.scap`` file with the truncation-tolerant reader, so recovery
after a crash and a normal open are the same code path.  Per record we
keep a small :class:`RecordMeta` (identity, time, offset into both the
stream and the file) grouped per segment, plus two lookup maps — by
canonical five-tuple and a time-sorted list — so queries never touch
disk until they need payload bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..netstack.flows import FiveTuple
from .segment import SegmentInfo, StreamRecord, read_segment

__all__ = ["RecordMeta", "SegmentMeta", "StoreIndex"]


@dataclass
class RecordMeta:
    """Index entry for one stored record (payload stays on disk)."""

    five_tuple: FiveTuple
    direction: int
    stream_offset: int
    timestamp: float
    length: int
    priority: int
    file_offset: int

    @property
    def client_tuple(self) -> FiveTuple:
        """The connection's five-tuple from the client's perspective."""
        return self.five_tuple if self.direction == 0 else self.five_tuple.reversed()


@dataclass
class SegmentMeta:
    """One segment file plus the metadata of every record inside it."""

    info: SegmentInfo
    records: List[RecordMeta] = field(default_factory=list)

    @property
    def path(self) -> str:
        """Path of the segment file."""
        return self.info.path

    @property
    def payload_bytes(self) -> int:
        """Live payload bytes indexed in this segment."""
        return sum(record.length for record in self.records)


class StoreIndex:
    """Lookup structure over all indexed segments of one store.

    Mutated only by the store under its lock (`` # scapcheck: single-owner ``
    applies to callers); supports add/remove of whole segments (sealing,
    retention) and in-place replacement after compaction rewrites.
    """

    def __init__(self):
        self.segments: Dict[str, SegmentMeta] = {}
        self._by_tuple: Dict[Tuple[int, int, int, int, int], List[RecordMeta]] = {}

    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Total records indexed across all segments."""
        return sum(len(segment.records) for segment in self.segments.values())

    @property
    def payload_bytes(self) -> int:
        """Total live payload bytes indexed across all segments."""
        return sum(segment.payload_bytes for segment in self.segments.values())

    @property
    def disk_bytes(self) -> int:
        """Total on-disk bytes of all indexed segment files."""
        return sum(segment.info.disk_bytes for segment in self.segments.values())

    # ------------------------------------------------------------------
    def scan_directory(self, directory: str) -> List[SegmentMeta]:
        """(Re)build the index from every segment file in ``directory``."""
        self.segments.clear()
        self._by_tuple.clear()
        added = []
        for name in sorted(os.listdir(directory)):
            if not (name.startswith("seg-") and name.endswith(".scap")):
                continue
            added.append(self.add_segment_file(os.path.join(directory, name)))
        return added

    def add_segment_file(self, path: str) -> SegmentMeta:
        """Scan one segment file and index everything recoverable."""
        records, info = read_segment(path)
        metas = [
            RecordMeta(
                five_tuple=record.five_tuple,
                direction=record.direction,
                stream_offset=record.stream_offset,
                timestamp=record.timestamp,
                length=len(record.data),
                priority=record.priority,
                file_offset=offset,
            )
            for (offset, _length), record in zip(info.frames, records)
        ]
        return self._install(SegmentMeta(info=info, records=metas))

    def add_sealed(self, info: SegmentInfo, records: List[Tuple[int, StreamRecord]]) -> SegmentMeta:
        """Index a segment the writer just sealed, without rescanning."""
        metas = [
            RecordMeta(
                five_tuple=record.five_tuple,
                direction=record.direction,
                stream_offset=record.stream_offset,
                timestamp=record.timestamp,
                length=len(record.data),
                priority=record.priority,
                file_offset=offset,
            )
            for offset, record in records
        ]
        return self._install(SegmentMeta(info=info, records=metas))

    def _install(self, segment: SegmentMeta) -> SegmentMeta:
        self.segments[segment.path] = segment
        for meta in segment.records:
            key = self._key(meta.client_tuple)
            self._by_tuple.setdefault(key, []).append(meta)
        return segment

    def remove_segment(self, path: str) -> Optional[SegmentMeta]:
        """Drop one segment (and its records) from the index."""
        segment = self.segments.pop(path, None)
        if segment is None:
            return None
        doomed = {id(meta) for meta in segment.records}
        for key in {self._key(meta.client_tuple) for meta in segment.records}:
            bucket = [meta for meta in self._by_tuple.get(key, []) if id(meta) not in doomed]
            if bucket:
                self._by_tuple[key] = bucket
            else:
                self._by_tuple.pop(key, None)
        return segment

    def replace_segment(self, path: str, replacement: SegmentMeta) -> None:
        """Swap a segment's index entry after a compaction rewrite."""
        self.remove_segment(path)
        self._install(replacement)

    # ------------------------------------------------------------------
    @staticmethod
    def _key(five_tuple: FiveTuple) -> Tuple[int, int, int, int, int]:
        canonical = five_tuple.canonical()
        return (
            canonical.src_ip,
            canonical.src_port,
            canonical.dst_ip,
            canonical.dst_port,
            canonical.protocol,
        )

    def lookup(
        self,
        five_tuple: Optional[FiveTuple] = None,
        start_ts: Optional[float] = None,
        end_ts: Optional[float] = None,
    ) -> Iterator[Tuple[SegmentMeta, RecordMeta]]:
        """Yield ``(segment, record)`` matches for a tuple/time query.

        ``five_tuple`` matches either direction of the connection;
        ``start_ts``/``end_ts`` bound the record timestamp inclusively.
        With no arguments, everything is yielded.
        """
        wanted = self._key(five_tuple) if five_tuple is not None else None
        for segment in self._segments_in_time_order():
            info = segment.info
            if start_ts is not None and info.record_count and info.last_ts < start_ts:
                continue
            if end_ts is not None and info.record_count and info.first_ts > end_ts:
                continue
            for meta in segment.records:
                if wanted is not None and self._key(meta.client_tuple) != wanted:
                    continue
                if start_ts is not None and meta.timestamp < start_ts:
                    continue
                if end_ts is not None and meta.timestamp > end_ts:
                    continue
                yield segment, meta

    def _segments_in_time_order(self) -> List[SegmentMeta]:
        return sorted(
            self.segments.values(),
            key=lambda segment: (segment.info.first_ts, segment.info.path),
        )

    def connections(self) -> List[FiveTuple]:
        """All distinct connections stored, as client-perspective tuples."""
        seen: Dict[Tuple[int, int, int, int, int], FiveTuple] = {}
        for segment in self._segments_in_time_order():
            for meta in segment.records:
                key = self._key(meta.client_tuple)
                if key not in seen:
                    seen[key] = meta.client_tuple
        return list(seen.values())
