"""Retention and eviction for the stream store.

Three policies, enforced in order of decreasing certainty:

1. **max-age** — segments whose newest record is older than
   ``max_age`` simulated seconds (relative to the enforcement time)
   are deleted whole.
2. **per-class quotas** — byte budgets keyed by the same BPF
   expressions as `scap_set_cutoff` classes; a class over budget has
   records evicted from its streams until it fits.
3. **max-bytes** — a global cap on the store's on-disk footprint.

Eviction is *heavy-tail aware*: victims are chosen highest stream
offset first (then lowest priority, then oldest), so a stream's tail
is always dropped before its head — the same asymmetry that makes the
paper's per-stream cutoff effective on heavy-tailed traffic, applied
after the fact.  Record eviction from sealed (immutable) segments is
implemented by compaction: the segment is rewritten without the
victims and atomically swapped in with ``os.replace``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..filters.bpf import BPFFilter
from .index import RecordMeta, SegmentMeta, StoreIndex
from .segment import SegmentWriter, scan_records

__all__ = ["ClassQuota", "RetentionPolicy", "RetentionReport", "RetentionEngine"]


@dataclass
class ClassQuota:
    """A byte budget for streams matching one BPF class expression."""

    expression: str
    max_bytes: int
    _filter: Optional[BPFFilter] = field(default=None, repr=False, compare=False)

    @property
    def bpf(self) -> BPFFilter:
        """The compiled filter for :attr:`expression` (cached)."""
        if self._filter is None:
            self._filter = BPFFilter(self.expression)
        return self._filter


@dataclass
class RetentionPolicy:
    """What the retention engine enforces on each sweep."""

    #: Global cap on the store's on-disk bytes (None = unbounded).
    max_bytes: Optional[int] = None
    #: Maximum record age in simulated seconds (None = keep forever).
    max_age: Optional[float] = None
    #: Per-BPF-class payload-byte budgets, checked most-specific first.
    class_quotas: List[ClassQuota] = field(default_factory=list)

    @property
    def enabled(self) -> bool:
        """True if any policy is active."""
        return (
            self.max_bytes is not None
            or self.max_age is not None
            or bool(self.class_quotas)
        )


@dataclass
class RetentionReport:
    """What one enforcement sweep evicted."""

    evicted_records: int = 0
    #: Payload bytes of evicted records.
    evicted_bytes: int = 0
    segments_deleted: int = 0
    segments_compacted: int = 0

    def merge(self, other: "RetentionReport") -> None:
        """Accumulate another sweep's counts into this report."""
        self.evicted_records += other.evicted_records
        self.evicted_bytes += other.evicted_bytes
        self.segments_deleted += other.segments_deleted
        self.segments_compacted += other.segments_compacted


class RetentionEngine:
    """Applies a :class:`RetentionPolicy` to an indexed store directory.

    The engine mutates both the filesystem and the index; the owning
    store serializes calls.  # scapcheck: single-owner
    """

    def __init__(self, index: StoreIndex, policy: RetentionPolicy):
        self.index = index
        self.policy = policy

    # ------------------------------------------------------------------
    def enforce(self, now_ts: float) -> RetentionReport:
        """Run all active policies; return what was evicted."""
        report = RetentionReport()
        if not self.policy.enabled:
            return report
        if self.policy.max_age is not None:
            report.merge(self._enforce_age(now_ts))
        for quota in self.policy.class_quotas:
            report.merge(self._enforce_quota(quota))
        if self.policy.max_bytes is not None:
            report.merge(self._enforce_bytes(self.policy.max_bytes))
        return report

    # ------------------------------------------------------------------
    def _enforce_age(self, now_ts: float) -> RetentionReport:
        report = RetentionReport()
        horizon = now_ts - self.policy.max_age
        for segment in list(self.index.segments.values()):
            if segment.records and segment.info.last_ts < horizon:
                report.merge(self._delete_segment(segment))
        return report

    def _enforce_quota(self, quota: ClassQuota) -> RetentionReport:
        matcher = quota.bpf

        def in_class(meta: RecordMeta) -> bool:
            return matcher.matches_five_tuple(meta.client_tuple)

        live = sum(
            meta.length
            for segment in self.index.segments.values()
            for meta in segment.records
            if in_class(meta)
        )
        if live <= quota.max_bytes:
            return RetentionReport()
        return self._evict(live - quota.max_bytes, predicate=in_class)

    def _enforce_bytes(self, max_bytes: int) -> RetentionReport:
        report = RetentionReport()
        excess = self.index.disk_bytes - max_bytes
        if excess <= 0:
            return report
        # Tail-first record eviction shrinks payload; frame/seal overhead
        # stays, so fall back to deleting whole oldest segments if the
        # disk footprint is still over after compaction.
        report.merge(self._evict(excess))
        for segment in sorted(
            self.index.segments.values(),
            key=lambda seg: (seg.info.first_ts, seg.info.path),
        ):
            if self.index.disk_bytes <= max_bytes:
                break
            report.merge(self._delete_segment(segment))
        return report

    # ------------------------------------------------------------------
    def _evict(self, want_bytes: int, predicate=None) -> RetentionReport:
        """Evict ≥ ``want_bytes`` of payload, tails before heads."""
        candidates: List[Tuple[SegmentMeta, RecordMeta]] = [
            (segment, meta)
            for segment in self.index.segments.values()
            for meta in segment.records
            if predicate is None or predicate(meta)
        ]
        # Heavy-tail order: deepest stream offset first, then lowest
        # priority, then oldest timestamp.
        candidates.sort(
            key=lambda pair: (-pair[1].stream_offset, pair[1].priority, pair[1].timestamp)
        )
        doomed: Dict[str, Set[int]] = {}
        gathered = 0
        for segment, meta in candidates:
            if gathered >= want_bytes:
                break
            doomed.setdefault(segment.path, set()).add(meta.file_offset)
            gathered += meta.length
        report = RetentionReport()
        for path, offsets in doomed.items():
            report.merge(self._compact(self.index.segments[path], offsets))
        return report

    def _compact(self, segment: SegmentMeta, doomed_offsets: Set[int]) -> RetentionReport:
        """Rewrite ``segment`` without the doomed records (atomic swap)."""
        report = RetentionReport()
        survivors = [
            meta for meta in segment.records if meta.file_offset not in doomed_offsets
        ]
        victims = [meta for meta in segment.records if meta.file_offset in doomed_offsets]
        if not victims:
            return report
        if not survivors:
            return self._delete_segment(segment)
        path = segment.path
        tmp_path = path + ".tmp"
        writer = SegmentWriter(tmp_path, core=segment.info.core, compress=False)
        for offset, record in scan_records(path):
            if offset in doomed_offsets:
                continue
            writer.append(record)
        writer.seal()
        os.replace(tmp_path, path)
        self.index.remove_segment(path)
        self.index.add_segment_file(path)
        report.segments_compacted += 1
        report.evicted_records += len(victims)
        report.evicted_bytes += sum(meta.length for meta in victims)
        return report

    def _delete_segment(self, segment: SegmentMeta) -> RetentionReport:
        report = RetentionReport()
        self.index.remove_segment(segment.path)
        if os.path.exists(segment.path):
            os.unlink(segment.path)
        report.segments_deleted += 1
        report.evicted_records += len(segment.records)
        report.evicted_bytes += sum(meta.length for meta in segment.records)
        return report
