"""Persistent stream store: record, index, retain, query, replay.

See ``docs/STORE.md`` for the on-disk format, retention semantics, and
failure model.  The usual entry point is :class:`StreamStore`; the
:class:`~repro.apps.recorder.StreamRecorder` app feeds one from a live
capture socket.
"""

from .index import RecordMeta, SegmentMeta, StoreIndex
from .query import QueryResult, StreamPayload, run_query
from .replay import StoredStreamSource
from .retention import ClassQuota, RetentionEngine, RetentionPolicy, RetentionReport
from .segment import (
    SegmentInfo,
    SegmentWriter,
    StreamRecord,
    read_segment,
    scan_records,
)
from .store import StoreStats, StreamStore
from .writer import SpillQueue, StoreWriter

__all__ = [
    "StreamRecord",
    "SegmentInfo",
    "SegmentWriter",
    "read_segment",
    "scan_records",
    "SpillQueue",
    "StoreWriter",
    "StoreIndex",
    "SegmentMeta",
    "RecordMeta",
    "QueryResult",
    "StreamPayload",
    "run_query",
    "ClassQuota",
    "RetentionPolicy",
    "RetentionReport",
    "RetentionEngine",
    "StoredStreamSource",
    "StoreStats",
    "StreamStore",
]
