"""Query API: turn indexed records back into reassembled streams.

A query selects records by five-tuple and/or time range through the
:class:`~repro.store.index.StoreIndex`, reads the matching payloads
from their segments, and assembles them per stream direction.  Records
carry their ``stream_offset``, so assembly sorts by offset and trims
any overlap between adjacent records — re-recorded bytes (chunk
overlap, retransmission re-delivery) never appear twice in the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..netstack.flows import FiveTuple
from .index import RecordMeta, SegmentMeta, StoreIndex
from .segment import StreamRecord, scan_records

__all__ = ["StreamPayload", "QueryResult", "run_query"]


@dataclass
class StreamPayload:
    """One reassembled stream direction returned by a query."""

    #: Connection identity from the client's perspective.
    client_tuple: FiveTuple
    #: 0 = client-to-server bytes, 1 = server-to-client bytes.
    direction: int
    #: Reassembled payload (offset-sorted, overlap-deduplicated).
    data: bytes
    #: Simulated timestamp of the first contributing record.
    first_ts: float
    #: Simulated timestamp of the last contributing record.
    last_ts: float
    #: Stream offset of the first stored byte (0 unless the head was evicted).
    base_offset: int
    #: Bytes missing to gaps between stored records (eviction holes).
    gap_bytes: int = 0

    @property
    def directional_tuple(self) -> FiveTuple:
        """Five-tuple with the sender of these bytes as the source."""
        return self.client_tuple if self.direction == 0 else self.client_tuple.reversed()


@dataclass
class QueryResult:
    """All streams matched by one query, in first-timestamp order."""

    streams: List[StreamPayload] = field(default_factory=list)

    def __iter__(self) -> Iterator[StreamPayload]:
        return iter(self.streams)

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def total_bytes(self) -> int:
        """Total reassembled payload bytes across all matched streams."""
        return sum(len(stream.data) for stream in self.streams)

    def connections(self) -> List[FiveTuple]:
        """Distinct client-perspective connections in this result."""
        seen = []
        for stream in self.streams:
            if stream.client_tuple not in seen:
                seen.append(stream.client_tuple)
        return seen


def run_query(
    index: StoreIndex,
    five_tuple: Optional[FiveTuple] = None,
    start_ts: Optional[float] = None,
    end_ts: Optional[float] = None,
) -> QueryResult:
    """Select, load, and reassemble matching streams from the store.

    Payloads are read segment-by-segment (one sequential scan per
    segment that contributed a match), then grouped by connection and
    direction, offset-sorted, and overlap-trimmed.
    """
    matches: Dict[str, List[RecordMeta]] = {}
    segments: Dict[str, SegmentMeta] = {}
    for segment, meta in index.lookup(five_tuple, start_ts, end_ts):
        matches.setdefault(segment.path, []).append(meta)
        segments[segment.path] = segment
    groups: Dict[Tuple[Tuple[int, int, int, int, int], int], List[StreamRecord]] = {}
    group_tuple: Dict[Tuple[Tuple[int, int, int, int, int], int], FiveTuple] = {}
    for path, metas in matches.items():
        wanted = {meta.file_offset for meta in metas}
        for offset, record in scan_records(path):
            if offset not in wanted:
                continue
            key = (StoreIndex._key(record.client_tuple), record.direction)
            groups.setdefault(key, []).append(record)
            group_tuple.setdefault(key, record.client_tuple)
    streams = [
        _assemble(group_tuple[key], key[1], records) for key, records in groups.items()
    ]
    streams.sort(key=lambda stream: (stream.first_ts, stream.client_tuple, stream.direction))
    return QueryResult(streams=streams)


def _assemble(
    client_tuple: FiveTuple, direction: int, records: List[StreamRecord]
) -> StreamPayload:
    """Offset-sort, dedup overlap, and concatenate one direction."""
    records = sorted(records, key=lambda record: (record.stream_offset, -len(record.data)))
    parts: List[bytes] = []
    base_offset = records[0].stream_offset
    next_offset = base_offset
    gap_bytes = 0
    first_ts = min(record.timestamp for record in records)
    last_ts = max(record.timestamp for record in records)
    for record in records:
        end = record.stream_offset + len(record.data)
        if end <= next_offset:
            continue  # fully duplicated bytes
        if record.stream_offset > next_offset:
            gap_bytes += record.stream_offset - next_offset
            parts.append(record.data)
        else:
            parts.append(record.data[next_offset - record.stream_offset :])
        next_offset = end
    return StreamPayload(
        client_tuple=client_tuple,
        direction=direction,
        data=b"".join(parts),
        first_ts=first_ts,
        last_ts=last_ts,
        base_offset=base_offset,
        gap_bytes=gap_bytes,
    )
