"""Common result records for capture-system runs.

Every capture system (Scap and the baselines) reduces one replay run to
a :class:`RunResult`, so the experiment harness can print the same
columns for each figure regardless of the system measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Measurements from one (system, workload, rate) run."""

    system: str
    rate_bps: float
    duration: float

    offered_packets: int = 0
    offered_bytes: int = 0

    #: Unintentional loss (ring overflow, PPL, memory exhaustion).
    dropped_packets: int = 0
    #: Intentional early discards: NIC FDIR drops + in-kernel cutoff
    #: discards + BPF-filtered packets.
    discarded_packets: int = 0
    nic_filter_drops: int = 0

    delivered_bytes: int = 0
    delivered_events: int = 0

    user_utilization: float = 0.0
    softirq_load: float = 0.0

    streams_created: int = 0
    streams_delivered: int = 0
    streams_lost: int = 0
    streams_total_ground_truth: int = 0

    matches_found: int = 0
    matches_planted: int = 0

    #: Per-priority offered/dropped packet counts (PPL experiments).
    packets_by_priority: Dict[int, int] = field(default_factory=dict)
    drops_by_priority: Dict[int, int] = field(default_factory=dict)

    memory_peak_fraction: float = 0.0
    cache_misses_per_packet: Optional[float] = None

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets lost unintentionally."""
        if self.offered_packets == 0:
            return 0.0
        return self.dropped_packets / self.offered_packets

    @property
    def stream_loss_rate(self) -> float:
        if self.streams_total_ground_truth == 0:
            return 0.0
        return self.streams_lost / self.streams_total_ground_truth

    @property
    def match_rate(self) -> float:
        if self.matches_planted == 0:
            return 0.0
        return self.matches_found / self.matches_planted

    def priority_drop_rate(self, priority: int) -> float:
        """Drop fraction within one PPL priority class."""
        total = self.packets_by_priority.get(priority, 0)
        if total == 0:
            return 0.0
        return self.drops_by_priority.get(priority, 0) / total

    def row(self) -> str:
        """One formatted line for harness output."""
        return (
            f"{self.system:<22} rate={self.rate_bps / 1e9:5.2f}G "
            f"drop={self.drop_rate * 100:6.2f}% "
            f"cpu={self.user_utilization * 100:6.2f}% "
            f"softirq={self.softirq_load * 100:5.2f}% "
            f"streams_lost={self.stream_loss_rate * 100:6.2f}% "
            f"matches={self.match_rate * 100:6.2f}%"
        )
