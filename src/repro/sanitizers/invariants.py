"""Runtime invariant checkers ("sanitizers") for the capture pipeline.

Static analysis (``scapcheck``) proves structural properties; these
checkers watch the *dynamic* invariants the paper's correctness
arguments rest on, while the pipeline runs:

* **memory** — every byte charged to the stream-memory pool is
  eventually returned, and the pool balances to zero at teardown
  (kernel-side accounting, §5.3);
* **reassembly** — each TCP direction delivers strictly advancing,
  non-overlapping stream ranges (normalization, §5.2);
* **fdir** — the Flow Director table state machine stays legal:
  consistent counts, capacity respected, minimum-timeout eviction, and
  exact timeout doubling on re-install (§5.5);
* **ppl** — the Prioritized Packet Loss watermark bands stay monotone
  in priority and every drop decision is consistent with its band (§2.2).

Everything is **off by default**; enable it with ``SCAP_SANITIZE=1``
(every :class:`~repro.core.runtime.ScapRuntime` then builds a
:class:`SanitizerContext`) or pass a context explicitly.  A failed
invariant raises :class:`InvariantViolation` with the tail of the
observability trace ring attached, so the violation arrives with the
pipeline decisions that led to it.
"""

from __future__ import annotations

import os
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SANITIZE_ENV",
    "TRACE_TAIL_ENV",
    "InvariantViolation",
    "SanitizerContext",
    "MemoryAccountingChecker",
    "ReassemblyOrderChecker",
    "FdirStateChecker",
    "PplBandChecker",
    "StoreAccountingChecker",
    "sanitize_enabled",
    "sanitizers_from_env",
]

#: Environment flag that turns the sanitizers on for every runtime.
SANITIZE_ENV = "SCAP_SANITIZE"
#: Environment override for how many trace events a violation attaches.
TRACE_TAIL_ENV = "SCAP_SANITIZE_TRACE_TAIL"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitize_enabled() -> bool:
    """True when ``SCAP_SANITIZE`` asks for always-on invariant checks."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


class InvariantViolation(AssertionError):
    """A runtime invariant of the capture pipeline was broken.

    Carries the invariant's name, structured ``details``, and
    ``trace_tail`` — the most recent events of the observability trace
    ring at the moment of failure (empty when tracing was off).
    Subclassing :class:`AssertionError` keeps the contract obvious:
    this is a bug in the pipeline (or a deliberately broken test
    harness), never an input error.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        details: Optional[Dict[str, Any]] = None,
        trace_tail: Sequence[Any] = (),
    ):
        self.invariant = invariant
        self.details = dict(details or {})
        self.trace_tail = tuple(trace_tail)
        parts = [f"[{invariant}] {message}"]
        if self.details:
            rendered = " ".join(f"{key}={value}" for key, value in self.details.items())
            parts.append(f"  details: {rendered}")
        if self.trace_tail:
            parts.append(f"  trace tail ({len(self.trace_tail)} events):")
            for event in self.trace_tail:
                formatted = event.format() if hasattr(event, "format") else str(event)
                parts.append(f"    {formatted}")
        super().__init__("\n".join(parts))


class SanitizerContext:
    """One run's sanitizers plus the observability link for trace tails.

    Components hold ``Optional[SanitizerContext]`` and call their
    checker behind an ``is not None`` test, so the disabled fast path
    costs a single comparison — the same engineering rule the
    observability layer follows.
    """

    def __init__(self, observability: Any = None, trace_tail: Optional[int] = None):
        self.obs = observability
        if trace_tail is None:
            try:
                trace_tail = int(os.environ.get(TRACE_TAIL_ENV, "16"))
            except ValueError:
                trace_tail = 16
        self.trace_tail = max(0, trace_tail)
        self.memory = MemoryAccountingChecker(self)
        self.reassembly = ReassemblyOrderChecker(self)
        self.fdir = FdirStateChecker(self)
        self.ppl = PplBandChecker(self)
        self.store = StoreAccountingChecker(self)
        self.violations_raised = 0

    def fail(self, invariant: str, message: str, **details: Any) -> None:
        """Raise :class:`InvariantViolation` with the trace-ring tail."""
        tail: Tuple[Any, ...] = ()
        trace = getattr(self.obs, "trace", None)
        if trace is not None and self.trace_tail:
            events = trace.events()
            tail = tuple(events[-self.trace_tail :])
        self.violations_raised += 1
        raise InvariantViolation(invariant, message, details=details, trace_tail=tail)


def sanitizers_from_env(observability: Any = None) -> Optional[SanitizerContext]:
    """A fresh context when ``SCAP_SANITIZE`` is set, else None."""
    if sanitize_enabled():
        return SanitizerContext(observability=observability)
    return None


# ----------------------------------------------------------------------
# Memory accounting
# ----------------------------------------------------------------------
class MemoryAccountingChecker:
    """Ledger over the stream-memory pool: stores minus releases.

    ``on_store``/``on_release`` mirror every pool charge and return;
    the outstanding balance can never go negative mid-run and must be
    exactly zero at teardown, or chunk bytes leaked (e.g. a kept chunk
    whose accounting was dropped on merge).
    """

    invariant = "memory-accounting"

    def __init__(self, context: SanitizerContext):
        self._context = context
        self.stored_total = 0
        self.released_total = 0

    @property
    def outstanding(self) -> int:
        return self.stored_total - self.released_total

    def on_store(self, nbytes: int) -> None:
        """A successful pool charge of ``nbytes``."""
        if nbytes < 0:
            self._context.fail(self.invariant, "negative store", nbytes=nbytes)
        self.stored_total += nbytes

    def on_release(self, nbytes: int, origin: str = "release") -> None:
        """``nbytes`` scheduled for return (or returned) to the pool."""
        if nbytes < 0:
            self._context.fail(
                self.invariant, "negative release", nbytes=nbytes, origin=origin
            )
        self.released_total += nbytes
        if self.released_total > self.stored_total:
            self._context.fail(
                self.invariant,
                "released more bytes than were ever stored",
                stored=self.stored_total,
                released=self.released_total,
                origin=origin,
            )

    def check_teardown(self, pool: Any = None) -> None:
        """At end of capture the ledger (and the pool) must balance."""
        if self.outstanding != 0:
            self._context.fail(
                self.invariant,
                "stream-memory accounting did not balance to zero at teardown",
                stored=self.stored_total,
                released=self.released_total,
                outstanding=self.outstanding,
            )
        if pool is not None:
            pool.advance(float("inf"))
            if pool.used > 1e-9:
                self._context.fail(
                    self.invariant,
                    "memory pool still holds bytes after all releases drained",
                    pool_used=pool.used,
                )


# ----------------------------------------------------------------------
# Reassembly ordering
# ----------------------------------------------------------------------
class ReassemblyOrderChecker:
    """Per-direction delivery must advance strictly and never overlap."""

    invariant = "reassembly-order"

    def __init__(self, context: SanitizerContext):
        self._context = context
        self._last_end: "weakref.WeakKeyDictionary[Any, int]" = (
            weakref.WeakKeyDictionary()
        )

    def on_deliver(self, reassembler: Any, start: int, end: int) -> None:
        """One in-order range ``[start, end)`` released to the assembler."""
        if end <= start:
            self._context.fail(
                self.invariant,
                "delivered range is empty or reversed",
                start=start,
                end=end,
            )
        last_end = self._last_end.get(reassembler, 0)
        if start < last_end:
            self._context.fail(
                self.invariant,
                "delivered range regresses into already-delivered data",
                start=start,
                last_end=last_end,
            )
        self._last_end[reassembler] = end

    def on_intervals(self, reassembler: Any, intervals: Sequence[Any], expected: int) -> None:
        """The out-of-order buffer must stay sorted, disjoint, and
        strictly beyond the in-order delivery point."""
        previous_end: Optional[int] = None
        for interval in intervals:
            if interval.start <= expected:
                self._context.fail(
                    self.invariant,
                    "buffered interval does not lie beyond the delivery point",
                    interval_start=interval.start,
                    expected=expected,
                )
            if previous_end is not None and interval.start < previous_end:
                self._context.fail(
                    self.invariant,
                    "out-of-order buffer holds overlapping or unsorted intervals",
                    interval_start=interval.start,
                    previous_end=previous_end,
                )
            previous_end = interval.end


# ----------------------------------------------------------------------
# FDIR filter state machine
# ----------------------------------------------------------------------
class FdirStateChecker:
    """Install/evict/timeout legality for the Flow Director table."""

    invariant = "fdir-state"

    def __init__(self, context: SanitizerContext):
        self._context = context

    def on_table(self, table: Any) -> None:
        """After any mutation: counts consistent, capacity respected."""
        actual = sum(len(bucket) for bucket in table._by_tuple.values())
        if table._count != actual:
            self._context.fail(
                self.invariant,
                "filter count diverged from the table contents",
                count=table._count,
                actual=actual,
            )
        if not 0 <= table._count <= table.capacity:
            self._context.fail(
                self.invariant,
                "filter count escaped [0, capacity]",
                count=table._count,
                capacity=table.capacity,
            )

    def on_evict(self, victim: Any, table: Any) -> None:
        """Scap's policy evicts the filter with the smallest timeout."""
        smallest = min(
            (
                candidate.timeout_at
                for bucket in table._by_tuple.values()
                for candidate in bucket
            ),
            default=None,
        )
        if smallest is not None and victim.timeout_at > smallest:
            self._context.fail(
                self.invariant,
                "evicted a filter that was not the smallest-timeout one",
                victim_timeout=victim.timeout_at,
                smallest_timeout=smallest,
            )

    def on_install(
        self, key: Any, interval: float, previous: float, initial: float
    ) -> None:
        """First install uses the initial timeout; re-installs double it."""
        if previous <= 0:
            if interval != initial:
                self._context.fail(
                    self.invariant,
                    "first install must use the configured initial timeout",
                    key=str(key),
                    interval=interval,
                    initial=initial,
                )
        elif abs(interval - 2 * previous) > 1e-9 * max(1.0, abs(interval)):
            self._context.fail(
                self.invariant,
                "re-install must exactly double the timeout interval",
                key=str(key),
                interval=interval,
                previous=previous,
            )

    def on_timeout(self, nic_filter: Any, now: float) -> None:
        """A timeout removal must not fire before the filter's deadline."""
        if nic_filter.timeout_at > now:
            self._context.fail(
                self.invariant,
                "filter removed by timeout before its deadline",
                timeout_at=nic_filter.timeout_at,
                now=now,
            )


# ----------------------------------------------------------------------
# Stream-store writer accounting
# ----------------------------------------------------------------------
class StoreAccountingChecker:
    """Ledger over the store's writer queues: enqueues vs writes+drops.

    Every payload byte offered to a spill queue must end up either
    written into a segment file or counted as an overflow drop — the
    store's backpressure contract.  ``on_enqueue``/``on_write``/
    ``on_drop`` mirror the writer pipeline; the outstanding balance can
    never go negative mid-run and must be exactly zero at teardown
    (``StoreWriter.close``), or queued bytes silently vanished.
    """

    invariant = "store-accounting"

    def __init__(self, context: SanitizerContext):
        self._context = context
        self.enqueued_total = 0
        self.written_total = 0
        self.dropped_total = 0

    @property
    def outstanding(self) -> int:
        return self.enqueued_total - self.written_total - self.dropped_total

    def on_enqueue(self, nbytes: int) -> None:
        """``nbytes`` of payload offered to a spill queue."""
        if nbytes < 0:
            self._context.fail(self.invariant, "negative enqueue", nbytes=nbytes)
        self.enqueued_total += nbytes

    def on_write(self, nbytes: int) -> None:
        """``nbytes`` of payload appended to a segment file."""
        if nbytes < 0:
            self._context.fail(self.invariant, "negative write", nbytes=nbytes)
        self.written_total += nbytes
        self._check_balance("write")

    def on_drop(self, nbytes: int) -> None:
        """``nbytes`` of payload dropped by queue overflow."""
        if nbytes < 0:
            self._context.fail(self.invariant, "negative drop", nbytes=nbytes)
        self.dropped_total += nbytes
        self._check_balance("drop")

    def _check_balance(self, origin: str) -> None:
        if self.outstanding < 0:
            self._context.fail(
                self.invariant,
                "wrote or dropped more bytes than were ever enqueued",
                enqueued=self.enqueued_total,
                written=self.written_total,
                dropped=self.dropped_total,
                origin=origin,
            )

    def check_teardown(self, writer: Any = None) -> None:
        """At writer close the ledger (and the queues) must balance."""
        if self.outstanding != 0:
            self._context.fail(
                self.invariant,
                "store writer-queue accounting did not balance to zero at teardown",
                enqueued=self.enqueued_total,
                written=self.written_total,
                dropped=self.dropped_total,
                outstanding=self.outstanding,
            )
        if writer is not None:
            if writer.queue_depth_bytes != 0:
                self._context.fail(
                    self.invariant,
                    "spill queues still hold bytes after final drain",
                    queue_depth_bytes=writer.queue_depth_bytes,
                )
            if writer.outstanding_bytes != 0:
                self._context.fail(
                    self.invariant,
                    "writer's own enqueue/write/drop counters do not balance",
                    outstanding=writer.outstanding_bytes,
                )


# ----------------------------------------------------------------------
# PPL watermark bands
# ----------------------------------------------------------------------
class PplBandChecker:
    """Watermark bands monotone in priority; decisions consistent."""

    invariant = "ppl-bands"

    def __init__(self, context: SanitizerContext):
        self._context = context
        self._last_levels = 0

    def on_check(self, ppl: Any, fraction: float, priority: int, decision: Any) -> None:
        """Validate one admission decision against the band layout."""
        levels = ppl.priority_levels
        if levels < self._last_levels:
            self._context.fail(
                self.invariant,
                "priority levels shrank mid-run (bands must only grow)",
                levels=levels,
                previous=self._last_levels,
            )
        self._last_levels = levels
        previous_mark = ppl.base_threshold
        for level in range(levels):
            mark = ppl.watermark(level)
            if mark <= previous_mark:
                self._context.fail(
                    self.invariant,
                    "watermarks are not strictly increasing in priority",
                    level=level,
                    watermark=mark,
                    previous=previous_mark,
                )
            previous_mark = mark
        top = ppl.watermark(levels - 1)
        if abs(top - 1.0) > 1e-9:
            self._context.fail(
                self.invariant,
                "the highest priority's watermark must sit at 1.0",
                watermark=top,
            )
        mark = ppl.watermark(priority)
        if decision.drop and decision.reason == "watermark" and fraction <= mark:
            self._context.fail(
                self.invariant,
                "watermark drop below the priority's own watermark",
                fraction=fraction,
                watermark=mark,
                priority=priority,
            )
        if not decision.drop and fraction > mark:
            self._context.fail(
                self.invariant,
                "packet admitted above its priority's watermark",
                fraction=fraction,
                watermark=mark,
                priority=priority,
            )
