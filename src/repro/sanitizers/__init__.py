"""Opt-in runtime invariant sanitizers (``SCAP_SANITIZE=1``).

The counterpart of :mod:`repro.staticcheck`: scapcheck proves static
properties of the source, the sanitizers watch dynamic invariants of a
*running* pipeline — memory-pool accounting, reassembly ordering, the
FDIR filter state machine, and PPL watermark monotonicity.  See
:mod:`repro.sanitizers.invariants` and ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from .invariants import (
    SANITIZE_ENV,
    TRACE_TAIL_ENV,
    FdirStateChecker,
    InvariantViolation,
    MemoryAccountingChecker,
    PplBandChecker,
    ReassemblyOrderChecker,
    SanitizerContext,
    StoreAccountingChecker,
    sanitize_enabled,
    sanitizers_from_env,
)
from .race import (
    RACE_ENV,
    RaceDetector,
    race_detector_from_env,
    race_enabled,
    reset_race_detector,
    stack_digest,
)

__all__ = [
    "SANITIZE_ENV",
    "TRACE_TAIL_ENV",
    "RACE_ENV",
    "InvariantViolation",
    "SanitizerContext",
    "MemoryAccountingChecker",
    "ReassemblyOrderChecker",
    "FdirStateChecker",
    "PplBandChecker",
    "StoreAccountingChecker",
    "sanitize_enabled",
    "sanitizers_from_env",
    "RaceDetector",
    "race_enabled",
    "race_detector_from_env",
    "reset_race_detector",
    "stack_digest",
]
