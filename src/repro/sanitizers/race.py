"""Runtime race detector (``SCAP_RACE=1``) — the dynamic half of SC006–SC008.

The whole-program pass in :mod:`repro.staticcheck.concurrency` proves
what it can about the concurrency discipline; this module watches the
same shared-state touchpoints while the pipeline actually runs:

* **owner mode** — a resource (flow table, stream-memory ledger,
  metrics registry structure, store-writer observability) is claimed by
  the first thread that touches it; any touch from a second thread is a
  violation.  This is the runtime form of ``# scapcheck: single-owner``.
* **lockset mode** — Eraser-style: while a resource is touched by one
  thread, nothing is required; once a second thread arrives, the
  candidate lockset is the locks held at that moment and every later
  touch intersects it.  An empty intersection means no common lock
  protects the resource.

A violation raises :class:`InvariantViolation` carrying **both
conflicting stack tails** plus a digest over their frames — the digest
is deterministic across runs (it hashes ``basename:function:line``
only, never thread ids or addresses), which is what lets the seeded
perturbation harness assert the *same* race three runs in a row.

Everything is off unless ``SCAP_RACE`` is truthy; instrumented classes
hold ``Optional`` detector references behind ``is not None`` guards, so
the disabled fast path costs one comparison, as with ``SCAP_SANITIZE``.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import traceback
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from .invariants import InvariantViolation

__all__ = [
    "RACE_ENV",
    "STACK_TAIL_DEPTH",
    "RaceDetector",
    "race_enabled",
    "race_detector_from_env",
    "reset_race_detector",
    "stack_digest",
]

#: Environment flag that turns the race detector on for every runtime.
RACE_ENV = "SCAP_RACE"
#: Frames kept per conflicting stack tail.
STACK_TAIL_DEPTH = 5

_TRUTHY = frozenset({"1", "true", "yes", "on"})

StackTail = Tuple[Tuple[str, str, int], ...]


def race_enabled() -> bool:
    """True when ``SCAP_RACE`` asks for always-on race detection."""
    return os.environ.get(RACE_ENV, "").strip().lower() in _TRUTHY


def _stack_tail() -> StackTail:
    """The last few frames of the current stack, detector frames removed."""
    frames = traceback.extract_stack()
    tail = [
        (os.path.basename(frame.filename), frame.name, frame.lineno or 0)
        for frame in frames
        if os.path.basename(frame.filename) != "race.py"
    ]
    return tuple(tail[-STACK_TAIL_DEPTH:])


def _render_tail(tail: StackTail) -> str:
    return " <- ".join(f"{base}:{func}:{line}" for base, func, line in reversed(tail))


def stack_digest(first: StackTail, second: StackTail) -> str:
    """Deterministic digest over two conflicting stack tails.

    Hashes only ``(basename, function, line)`` frames — no thread ids,
    no object addresses — so the same race reported from the same code
    paths digests identically run over run.
    """
    digest = hashlib.sha256()
    for tail in (first, second):
        for base, func, line in tail:
            digest.update(f"{base}:{func}:{line};".encode())
        digest.update(b"||")
    return digest.hexdigest()[:16]


class _Resource:
    """Per-resource tracking state (guarded by the detector's lock)."""

    __slots__ = (
        "label",
        "mode",
        "owner_ident",
        "owner_name",
        "owner_tail",
        "shared",
        "lockset",
        "tails_by_thread",
        "names_by_thread",
    )

    def __init__(self, label: str, mode: str):
        self.label = label
        self.mode = mode
        self.owner_ident: Optional[int] = None
        self.owner_name = ""
        self.owner_tail: StackTail = ()
        self.shared = False
        self.lockset: FrozenSet[str] = frozenset()
        self.tails_by_thread: Dict[int, StackTail] = {}
        self.names_by_thread: Dict[int, str] = {}


class RaceDetector:
    """Owner-thread / lockset checker over registered shared resources.

    Resources get unique integer tokens from a monotonic counter (never
    ``id()`` — object ids are reused after collection, which would let
    a dead resource's history convict a fresh one).
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._resources: Dict[int, _Resource] = {}
        self._tokens = itertools.count(1)
        self.violations = 0

    def register(self, label: str, mode: str = "owner") -> int:
        """Track a new resource; returns its token for :meth:`check`."""
        if mode not in ("owner", "lockset"):
            raise ValueError(f"unknown race-detector mode {mode!r}")
        token = next(self._tokens)
        with self._guard:
            self._resources[token] = _Resource(label, mode)
        return token

    def check(
        self, token: int, op: str = "write", locks: Iterable[str] = ()
    ) -> None:
        """Record one access to the resource; raise on a detected race.

        ``locks`` names the locks the caller currently holds (lockset
        mode only; ignored in owner mode).
        """
        ident = threading.get_ident()
        name = threading.current_thread().name
        tail = _stack_tail()
        with self._guard:
            resource = self._resources[token]
            try:
                if resource.mode == "owner":
                    self._check_owner(resource, ident, name, tail, op)
                else:
                    self._check_lockset(
                        resource, ident, name, tail, frozenset(locks), op
                    )
            except InvariantViolation:
                self.violations += 1
                raise

    def adopt(self, token: int) -> None:
        """Hand an owner-mode resource to the current thread.

        Some single-owner resources migrate between threads by design:
        the daemon serializes every capture — and every store flush —
        under one lock, so a *different* client thread legitimately
        plays the owner role each time.  The code that takes that
        serialization lock calls this to declare the handoff; every
        access until the next adoption must then come from the
        adopting thread, so an unserialized toucher still trips the
        detector.  Lockset-mode resources reject adoption — their
        discipline is the common lockset, not a single owner.
        """
        ident = threading.get_ident()
        name = threading.current_thread().name
        tail = _stack_tail()
        with self._guard:
            resource = self._resources[token]
            if resource.mode != "owner":
                raise ValueError(
                    f"cannot adopt {resource.label!r}: not an owner-mode resource"
                )
            resource.owner_ident = ident
            resource.owner_name = name
            resource.owner_tail = tail

    # ------------------------------------------------------------------
    def _check_owner(
        self, resource: _Resource, ident: int, name: str, tail: StackTail, op: str
    ) -> None:
        if resource.owner_ident is None:
            resource.owner_ident = ident
            resource.owner_name = name
            resource.owner_tail = tail
            return
        if ident == resource.owner_ident:
            resource.owner_tail = tail
            return
        self._fail(
            resource,
            op,
            first_thread=resource.owner_name,
            first_tail=resource.owner_tail,
            second_thread=name,
            second_tail=tail,
            reason="owned by another thread",
        )

    def _check_lockset(
        self,
        resource: _Resource,
        ident: int,
        name: str,
        tail: StackTail,
        held: FrozenSet[str],
        op: str,
    ) -> None:
        first_access = not resource.tails_by_thread
        new_thread = ident not in resource.tails_by_thread
        previous_other: Tuple[str, StackTail] = ("", ())
        for other_ident, other_tail in resource.tails_by_thread.items():
            if other_ident != ident:
                previous_other = (
                    resource.names_by_thread[other_ident],
                    other_tail,
                )
        resource.tails_by_thread[ident] = tail
        resource.names_by_thread[ident] = name
        if first_access:
            resource.lockset = held
            return
        if new_thread and not resource.shared:
            # Eraser transition to shared: the candidate lockset starts
            # as the locks held *now*, not the exclusive-phase history.
            resource.shared = True
            resource.lockset = held
        else:
            resource.lockset = resource.lockset & held if resource.shared else held
        if resource.shared and not resource.lockset:
            self._fail(
                resource,
                op,
                first_thread=previous_other[0],
                first_tail=previous_other[1],
                second_thread=name,
                second_tail=tail,
                reason="no common lock protects the resource",
            )

    def _fail(
        self,
        resource: _Resource,
        op: str,
        first_thread: str,
        first_tail: StackTail,
        second_thread: str,
        second_tail: StackTail,
        reason: str,
    ) -> None:
        digest = stack_digest(first_tail, second_tail)
        raise InvariantViolation(
            "race",
            f"{resource.mode}-mode race on {resource.label} ({op}): {reason}",
            details={
                "resource": resource.label,
                "mode": resource.mode,
                "digest": digest,
                "first_thread": first_thread,
                "first_stack": _render_tail(first_tail),
                "second_thread": second_thread,
                "second_stack": _render_tail(second_tail),
            },
        )

    def reset(self) -> None:
        """Forget every registered resource (test isolation)."""
        with self._guard:
            self._resources.clear()
            self.violations = 0


_GLOBAL_DETECTOR: Optional[RaceDetector] = None


def race_detector_from_env() -> Optional[RaceDetector]:
    """The process-wide detector when ``SCAP_RACE`` is set, else None.

    One shared detector (not one per instrumented object) so that two
    components touching the same logical resource still meet in one
    place; each instrumented instance registers its own token.
    """
    global _GLOBAL_DETECTOR
    if not race_enabled():
        return None
    if _GLOBAL_DETECTOR is None:
        _GLOBAL_DETECTOR = RaceDetector()
    return _GLOBAL_DETECTOR


def reset_race_detector() -> None:
    """Drop the process-wide detector (tests flip ``SCAP_RACE`` around)."""
    global _GLOBAL_DETECTOR
    _GLOBAL_DETECTOR = None
