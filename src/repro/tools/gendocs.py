"""Generate docs/API.md from the package docstrings.

Usage::

    python -m repro.tools.gendocs [output-path]

Walks every module under ``repro`` and emits a markdown reference: the
module docstring, then each public class (with its docstring and public
method signatures) and function.  Kept deliberately simple — the
docstrings are the documentation; this just collates them.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from typing import List

import repro

__all__ = ["generate", "main"]


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_paragraph(doc: str) -> str:
    return doc.strip().split("\n\n")[0]


def _module_section(module_name: str) -> str:
    module = importlib.import_module(module_name)
    lines: List[str] = [f"## `{module_name}`", ""]
    if module.__doc__:
        lines += [module.__doc__.strip(), ""]
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if name.startswith("_") or getattr(obj, "__module__", None) != module_name:
            continue
        if inspect.isclass(obj):
            lines.append(f"### class `{name}{_signature(obj)}`")
            lines.append("")
            doc = inspect.getdoc(obj)
            if doc:
                lines += [_first_paragraph(doc), ""]
            for method_name in sorted(vars(obj)):
                method = vars(obj)[method_name]
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                method_doc = inspect.getdoc(method) or ""
                lines.append(
                    f"- `{method_name}{_signature(method)}` — "
                    f"{_first_paragraph(method_doc).splitlines()[0] if method_doc else ''}"
                )
            lines.append("")
        elif inspect.isfunction(obj):
            lines.append(f"### `{name}{_signature(obj)}`")
            lines.append("")
            doc = inspect.getdoc(obj)
            if doc:
                lines += [_first_paragraph(doc), ""]
    return "\n".join(lines)


def generate() -> str:
    """Build the full API reference as one markdown string."""
    parts = [
        "# API reference",
        "",
        "_Generated from docstrings by `python -m repro.tools.gendocs`._",
        "",
    ]
    for module_info in sorted(
        pkgutil.walk_packages(repro.__path__, prefix="repro."),
        key=lambda info: info.name,
    ):
        if module_info.ispkg:
            continue
        parts.append(_module_section(module_info.name))
    return "\n".join(parts)


def main(argv=None) -> int:
    """CLI entry point: write the reference to the given path."""
    argv = list(sys.argv[1:] if argv is None else argv)
    target = argv[0] if argv else "docs/API.md"
    import os

    os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    content = generate()
    with open(target, "w") as handle:
        handle.write(content)
    print(f"wrote {target} ({len(content)} bytes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
