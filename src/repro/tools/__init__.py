"""Command-line tooling."""

from .cli import build_parser, main

__all__ = ["build_parser", "main"]
