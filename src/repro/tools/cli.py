"""Command-line interface: ``repro-scap``.

Subcommands:

* ``generate`` — synthesize a campus-like trace and write it as pcap.
* ``capture``  — run a monitoring application (flow statistics, stream
  delivery, or pattern matching) over a pcap file or a synthetic trace
  through the full Scap pipeline at a chosen replay rate.
* ``bench``    — regenerate one of the paper's figures and print its
  table.
* ``analyze``  — evaluate the §7 PPL loss-probability models.
* ``stats``    — run a capture with observability enabled and dump the
  metrics registry (Prometheus text or JSON; see docs/OBSERVABILITY.md).
* ``trace``    — run a capture with observability enabled and dump the
  trace-event ring buffer (pipeline decisions in time order).
* ``profile``  — run a capture with observability enabled and print the
  per-stage breakdown of simulated busy time (service %, p50/p99,
  queue waits — see docs/OBSERVABILITY.md).
* ``timeline`` — reconstruct per-stream lifecycles from the trace ring
  (the stream flight recorder); one five-tuple's full story, or a
  summary line per connection.
* ``scapcheck`` — run the repo-specific static analysis (SC001–SC005)
  over source paths (see docs/STATIC_ANALYSIS.md).
* ``record``   — capture a trace under a cutoff and persist the
  delivered streams into an on-disk stream store (docs/STORE.md).
* ``query``    — look up stored streams by five-tuple / time range and
  print (or dump) the reassembled payloads.
* ``replay``   — re-inject a stored query result through a fresh Scap
  socket, closing the record→query→replay loop.
* ``chaos``    — run the deterministic chaos soak: the full pipeline
  under a seeded fault plan with sanitizers on, asserting the
  degradation invariants (docs/FAULT_INJECTION.md).
* ``serve``    — run the capture daemon (service mode; docs/SERVICE.md);
  ``--http`` adds the /metrics //healthz //readyz sidecar.
* ``spans``    — fetch request-span records from a daemon and render
  causal client→daemon→store trees with per-hop timings.
* ``top``      — live terminal view of a daemon's telemetry ring and
  health verdict (throughput, drop rates, queue depths, per-client
  feeds).

Examples::

    repro-scap generate --flows 500 --out campus.pcap
    repro-scap capture --pcap campus.pcap --rate 2.0 --app match
    repro-scap bench fig04
    repro-scap analyze --rho 0.5 --slots 1 10 20 50
    repro-scap stats --flows 200 --rate 4.0 --format json
    repro-scap trace --flows 200 --rate 6.0 --hook ppl_drop --limit 20
    repro-scap profile --flows 200 --rate 6.0
    repro-scap timeline 10.0.0.1:1234-10.1.0.1:80/tcp --flows 200 --rate 6.0
    repro-scap scapcheck src/repro
    repro-scap record --flows 200 --cutoff 10240 --store /tmp/tm
    repro-scap query --store /tmp/tm --flow 10.0.0.1:1234-10.1.0.1:80/tcp
    repro-scap replay --store /tmp/tm --rate 0.5
    repro-scap chaos --seed 42 --intensity 0.05 --store /tmp/chaos
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..analysis import mm1n_loss_probability, two_class_loss_probabilities
from ..apps import FlowStatsApp, PatternMatchApp, StreamDeliveryApp, attach_app
from ..core import ScapSocket
from ..matching import synthetic_web_attack_patterns
from ..netstack import int_to_ip, read_pcap, write_pcap
from ..observability import ALL_HOOKS
from ..traffic import Trace, campus_mix

__all__ = ["main", "build_parser"]

GBIT = 1e9


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-scap argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-scap",
        description="Scap (IMC 2013) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a trace to pcap")
    generate.add_argument("--flows", type=int, default=500)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--max-flow-bytes", type=int, default=2_000_000)
    generate.add_argument("--plant-patterns", type=int, default=0,
                          help="plant N synthetic attack patterns")
    generate.add_argument("--out", required=True, help="output pcap path")

    capture = sub.add_parser("capture", help="run a monitoring app over a trace")
    source = capture.add_mutually_exclusive_group(required=False)
    source.add_argument("--pcap", help="read packets from a pcap file")
    source.add_argument("--flows", type=int, default=300,
                        help="or synthesize this many flows")
    capture.add_argument("--seed", type=int, default=7)
    capture.add_argument("--rate", type=float, default=1.0, help="replay Gbit/s")
    capture.add_argument(
        "--app",
        choices=("flowstats", "delivery", "match", "http"),
        default="delivery",
    )
    capture.add_argument("--cutoff", type=int, default=None)
    capture.add_argument("--workers", type=int, default=1)
    capture.add_argument("--memory-mb", type=int, default=64)
    capture.add_argument("--filter", dest="bpf", default="")
    capture.add_argument("--patterns", type=int, default=200,
                         help="pattern count for --app match")
    capture.add_argument("--rules", help="Snort rule file: extract content "
                         "patterns for --app match (like the paper's VRT set)")
    capture.add_argument("--export-flows", help="CSV path for flow records")

    bench = sub.add_parser("bench", help="regenerate a paper figure")
    bench.add_argument(
        "figure",
        choices=("fig03", "fig04", "fig05", "fig06", "fig08", "fig09", "fig10"),
    )

    inspect = sub.add_parser("inspect", help="summarize a pcap or synthetic trace")
    inspect_source = inspect.add_mutually_exclusive_group(required=False)
    inspect_source.add_argument("--pcap", help="read packets from a pcap file")
    inspect_source.add_argument("--flows", type=int, default=300)
    inspect.add_argument("--seed", type=int, default=7)
    inspect.add_argument("--filter", dest="bpf", default="",
                         help="restrict to packets matching a BPF expression")

    anonymize = sub.add_parser(
        "anonymize", help="prefix-preserving anonymization of a pcap"
    )
    anonymize.add_argument("--pcap", required=True)
    anonymize.add_argument("--out", required=True)
    anonymize.add_argument("--key", default="scap-repro-default-key")

    compare = sub.add_parser(
        "compare", help="Scap vs Libnids/Snort side by side on one trace"
    )
    compare.add_argument("--flows", type=int, default=400)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--rates", type=float, nargs="+",
                         default=[1.0, 2.5, 4.0, 6.0], help="Gbit/s points")

    stats = sub.add_parser(
        "stats", help="run a capture with observability on; dump metrics"
    )
    stats_source = stats.add_mutually_exclusive_group(required=False)
    stats_source.add_argument("--pcap", help="read packets from a pcap file")
    stats_source.add_argument("--flows", type=int, default=300,
                              help="or synthesize this many flows")
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--rate", type=float, default=1.0, help="replay Gbit/s")
    stats.add_argument("--cutoff", type=int, default=None)
    stats.add_argument("--memory-mb", type=int, default=64)
    stats.add_argument("--format", choices=("prometheus", "json"),
                       default="prometheus", help="exporter format")
    stats.add_argument("--out", help="write the export here instead of stdout")
    stats.add_argument("--check-parity", action="store_true",
                       help="verify the JSON snapshot agrees sample-for-sample "
                            "with the Prometheus export (exit 1 on mismatch)")

    trace_cmd = sub.add_parser(
        "trace", help="run a capture with observability on; dump trace events"
    )
    trace_source = trace_cmd.add_mutually_exclusive_group(required=False)
    trace_source.add_argument("--pcap", help="read packets from a pcap file")
    trace_source.add_argument("--flows", type=int, default=300,
                              help="or synthesize this many flows")
    trace_cmd.add_argument("--seed", type=int, default=7)
    trace_cmd.add_argument("--rate", type=float, default=1.0, help="replay Gbit/s")
    trace_cmd.add_argument("--cutoff", type=int, default=None)
    trace_cmd.add_argument("--memory-mb", type=int, default=64)
    trace_cmd.add_argument("--hook", action="append", default=None,
                           choices=ALL_HOOKS, metavar="HOOK",
                           help="only these hook points (repeatable): "
                                + ", ".join(ALL_HOOKS))
    trace_cmd.add_argument("--stream", default=None,
                           metavar="IP:PORT-IP:PORT/PROTO",
                           help="only events of this connection "
                                "(either direction)")
    trace_cmd.add_argument("--limit", type=int, default=50,
                           help="print at most the last N events")
    trace_cmd.add_argument("--capacity", type=int, default=65536,
                           help="ring-buffer capacity during the run")

    profile = sub.add_parser(
        "profile", help="run a capture with observability on; print the "
                        "per-stage time breakdown"
    )
    profile_source = profile.add_mutually_exclusive_group(required=False)
    profile_source.add_argument("--pcap", help="read packets from a pcap file")
    profile_source.add_argument("--flows", type=int, default=300,
                                help="or synthesize this many flows")
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--rate", type=float, default=1.0, help="replay Gbit/s")
    profile.add_argument("--cutoff", type=int, default=None)
    profile.add_argument("--memory-mb", type=int, default=64)
    profile.add_argument("--json", action="store_true",
                         help="emit the report as JSON instead of a table")

    timeline_cmd = sub.add_parser(
        "timeline", help="reconstruct per-stream lifecycles from the trace ring"
    )
    timeline_cmd.add_argument("flow", nargs="?", default=None,
                              metavar="IP:PORT-IP:PORT/PROTO",
                              help="one connection's full lifecycle "
                                   "(omit to list every reconstructed stream)")
    timeline_source = timeline_cmd.add_mutually_exclusive_group(required=False)
    timeline_source.add_argument("--pcap", help="read packets from a pcap file")
    timeline_source.add_argument("--flows", type=int, default=300,
                                 help="or synthesize this many flows")
    timeline_cmd.add_argument("--seed", type=int, default=7)
    timeline_cmd.add_argument("--rate", type=float, default=1.0,
                              help="replay Gbit/s")
    timeline_cmd.add_argument("--cutoff", type=int, default=None)
    timeline_cmd.add_argument("--memory-mb", type=int, default=64)
    timeline_cmd.add_argument("--limit", type=int, default=30,
                              help="summary mode: print at most N streams")
    timeline_cmd.add_argument("--capacity", type=int, default=65536,
                              help="ring-buffer capacity during the run")

    scapcheck = sub.add_parser(
        "scapcheck", help="repo-specific static analysis (SC001-SC008)"
    )
    scapcheck.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    scapcheck.add_argument(
        "--select", action="append", default=None, metavar="SC00x",
        help="run only these rule ids (repeatable)",
    )
    scapcheck.add_argument(
        "--project", action="store_true",
        help="also run the whole-program concurrency rules (SC006-SC008)",
    )
    scapcheck.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        dest="fmt", help="output format (default: text)",
    )
    scapcheck.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    record = sub.add_parser(
        "record", help="capture a trace into a persistent stream store"
    )
    record_source = record.add_mutually_exclusive_group(required=False)
    record_source.add_argument("--pcap", help="read packets from a pcap file")
    record_source.add_argument("--flows", type=int, default=300,
                               help="or synthesize this many flows")
    record.add_argument("--seed", type=int, default=7)
    record.add_argument("--rate", type=float, default=1.0, help="replay Gbit/s")
    record.add_argument("--cutoff", type=int, default=None,
                        help="per-stream byte cutoff (time-machine head)")
    record.add_argument("--memory-mb", type=int, default=64)
    record.add_argument("--store", required=True, help="store directory")
    record.add_argument("--cores", type=int, default=2,
                        help="writer spill queues / segment series")
    record.add_argument("--compress", action="store_true",
                        help="zlib-compress record bodies")
    record.add_argument("--segment-mb", type=int, default=16,
                        help="roll segments at this size")
    record.add_argument("--queue-kb", type=int, default=4096,
                        help="per-core spill-queue byte bound")
    record.add_argument("--max-bytes", type=int, default=None,
                        help="retention: cap the store's disk footprint")
    record.add_argument("--max-age", type=float, default=None,
                        help="retention: drop records older than this (sim s)")
    record.add_argument("--class-quota", action="append", default=None,
                        metavar="BPF=BYTES",
                        help="retention: per-BPF-class payload budget "
                             "(repeatable), e.g. 'port 80=1000000'")

    query = sub.add_parser("query", help="look up streams in a stream store")
    query.add_argument("--store", required=True, help="store directory")
    query.add_argument("--flow", default=None, metavar="IP:PORT-IP:PORT/PROTO",
                       help="five-tuple filter, e.g. 10.0.0.1:1234-10.1.0.1:80/tcp")
    query.add_argument("--start", type=float, default=None,
                       help="earliest record timestamp (sim s)")
    query.add_argument("--end", type=float, default=None,
                       help="latest record timestamp (sim s)")
    query.add_argument("--dump", metavar="DIR", default=None,
                       help="write each stream payload to a file under DIR")
    query.add_argument("--limit", type=int, default=20,
                       help="print at most N streams (0 = all)")

    replay = sub.add_parser(
        "replay", help="re-inject stored streams through a fresh Scap socket"
    )
    replay.add_argument("--store", required=True, help="store directory")
    replay.add_argument("--flow", default=None, metavar="IP:PORT-IP:PORT/PROTO",
                        help="five-tuple filter (default: everything stored)")
    replay.add_argument("--start", type=float, default=None)
    replay.add_argument("--end", type=float, default=None)
    replay.add_argument("--rate", type=float, default=1.0, help="replay Gbit/s")
    replay.add_argument("--cutoff", type=int, default=None)
    replay.add_argument("--memory-mb", type=int, default=64)

    chaos = sub.add_parser(
        "chaos", help="deterministic chaos soak under a seeded fault plan"
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (same seed, same faults)")
    chaos.add_argument("--intensity", type=float, default=0.05,
                       help="upper bound on the randomized per-plane rates")
    chaos.add_argument("--flows", type=int, default=24,
                       help="soak workload connections")
    chaos.add_argument("--records", type=int, default=48,
                       help="payload records per flow direction")
    chaos.add_argument("--memory-mb", type=int, default=64)
    chaos.add_argument("--store", default=None, metavar="DIR",
                       help="also exercise the store fault plane into DIR")
    chaos.add_argument("--runs", type=int, default=1,
                       help="repeat the identical plan N times and require "
                            "byte-identical fault schedules")
    chaos.add_argument("--schedule", action="store_true",
                       help="print the full injected-fault schedule")

    serve = sub.add_parser(
        "serve", help="run the capture daemon (service mode; docs/SERVICE.md)"
    )
    serve.add_argument("--unix", default=None, metavar="PATH",
                       help="listen on a Unix stream socket at PATH")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="listen on a TCP socket (port 0 = ephemeral)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="record captured streams into a store at DIR")
    serve.add_argument("--token", action="append", default=None, metavar="TOKEN",
                       help="require client auth; repeatable for many tokens")
    serve.add_argument("--max-subscriptions", type=int, default=8,
                       help="live subscriptions allowed per client")
    serve.add_argument("--max-queued-events", type=int, default=1024,
                       help="per-client event queue bound (drop-oldest beyond)")
    serve.add_argument("--eviction-drop-limit", type=int, default=None,
                       help="disconnect a client after this many dropped events")
    serve.add_argument("--global-event-budget", type=int, default=None,
                       help="daemon-wide queued-event bound (slowest client pays)")
    serve.add_argument("--memory-mb", type=int, default=64,
                       help="capture memory pool size per submitted run")
    serve.add_argument("--cores", type=int, default=8,
                       help="simulated cores for submitted captures")
    serve.add_argument("--no-control", action="store_true",
                       help="refuse remote shutdown/reload commands")
    serve.add_argument("--fault-seed", type=int, default=None,
                       help="enable the client fault plane with this seed")
    serve.add_argument("--slow-client-rate", type=float, default=0.0)
    serve.add_argument("--disconnect-rate", type=float, default=0.0)
    serve.add_argument("--garbage-frame-rate", type=float, default=0.0)
    serve.add_argument("--observability", action="store_true",
                       help="enable scap_service_* metrics and trace hooks")
    serve.add_argument("--http", default=None, metavar="HOST:PORT",
                       help="serve /metrics, /healthz, /readyz on this "
                            "address (implies --observability; port 0 = "
                            "ephemeral)")
    serve.add_argument("--telemetry-cadence", type=float, default=1.0,
                       help="seconds between telemetry-ring samples")

    spans_cmd = sub.add_parser(
        "spans", help="fetch and render request span trees from a daemon"
    )
    spans_endpoint = spans_cmd.add_mutually_exclusive_group(required=True)
    spans_endpoint.add_argument("--unix", metavar="PATH",
                                help="daemon Unix socket path")
    spans_endpoint.add_argument("--tcp", metavar="HOST:PORT",
                                help="daemon TCP address")
    spans_cmd.add_argument("--token", default=None, help="auth token")
    spans_cmd.add_argument("--trace-id", default=None,
                           help="render one causal trace by id")
    spans_cmd.add_argument("--slowest", type=int, default=None, metavar="N",
                           help="render the N slowest retained traces")
    spans_cmd.add_argument("--limit", type=int, default=None,
                           help="fetch at most the last N span records")

    top = sub.add_parser(
        "top", help="live daemon telemetry and health view"
    )
    top_endpoint = top.add_mutually_exclusive_group(required=True)
    top_endpoint.add_argument("--unix", metavar="PATH",
                              help="daemon Unix socket path")
    top_endpoint.add_argument("--tcp", metavar="HOST:PORT",
                              help="daemon TCP address")
    top.add_argument("--token", default=None, help="auth token")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--count", type=int, default=0,
                     help="stop after N frames (0 = until interrupted)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (same as --count 1)")
    top.add_argument("--json", action="store_true",
                     help="emit each frame as one JSON object")

    analyze = sub.add_parser("analyze", help="evaluate the §7 loss models")
    analyze.add_argument("--rho", type=float, default=0.5)
    analyze.add_argument("--rho-high", type=float, default=None,
                         help="enable the two-class model with this high-class load")
    analyze.add_argument("--slots", type=int, nargs="+", default=[5, 10, 20, 50, 100])

    return parser


# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    patterns = (
        synthetic_web_attack_patterns(args.plant_patterns)
        if args.plant_patterns
        else ()
    )
    trace = campus_mix(
        flow_count=args.flows,
        seed=args.seed,
        max_flow_bytes=args.max_flow_bytes,
        patterns=patterns,
        plant_fraction=0.5 if patterns else 0.0,
    )
    count = write_pcap(args.out, trace.packets)
    print(trace.summary())
    print(f"wrote {count} packets to {args.out}")
    if patterns:
        print(f"planted {len(trace.planted_matches)} pattern occurrences")
    return 0


def _load_source(args: argparse.Namespace) -> Trace:
    if args.pcap:
        packets = read_pcap(args.pcap)
        return Trace(packets, name=args.pcap)
    return campus_mix(flow_count=args.flows, seed=args.seed)


def _cmd_capture(args: argparse.Namespace) -> int:
    trace = _load_source(args)
    print(trace.summary())
    if args.app == "flowstats":
        app = FlowStatsApp()
    elif args.app == "match":
        if args.rules:
            from ..matching import extract_contents

            with open(args.rules) as handle:
                patterns = extract_contents(handle, min_len=4)
            print(f"extracted {len(patterns)} content patterns from {args.rules}")
        else:
            patterns = synthetic_web_attack_patterns(args.patterns)
        app = PatternMatchApp(patterns, mode="ac")
    elif args.app == "http":
        from ..apps import HttpMetadataApp

        app = HttpMetadataApp()
    else:
        app = StreamDeliveryApp()
    socket = ScapSocket(
        trace, rate_bps=args.rate * GBIT, memory_size=args.memory_mb << 20
    )
    if args.bpf:
        socket.set_filter(args.bpf)
    if args.cutoff is not None:
        socket.set_cutoff(args.cutoff)
    if args.workers != 1:
        socket.set_worker_threads(args.workers)
    attach_app(socket, app)
    result = socket.start_capture(name=f"scap-{args.app}")
    print(result.row())
    print(
        f"delivered {result.delivered_bytes / 1e6:.2f} MB in "
        f"{result.delivered_events} events; "
        f"{result.streams_created} streams; "
        f"{result.discarded_packets} packets discarded early"
    )
    if args.app == "match":
        print(f"pattern matches found: {app.matches_found}")
    if args.app == "http":
        print(
            f"HTTP transactions: {len(app.requests)} requests, "
            f"{len(app.responses)} responses, {app.parse_errors} parse errors"
        )
    if args.app == "flowstats" and args.export_flows:
        with open(args.export_flows, "w") as handle:
            handle.write("src_ip,src_port,dst_ip,dst_port,proto,bytes\n")
            for record in app.records:
                ft = record.five_tuple
                handle.write(
                    f"{int_to_ip(ft.src_ip)},{ft.src_port},"
                    f"{int_to_ip(ft.dst_ip)},{ft.dst_port},"
                    f"{ft.protocol},{record.total_bytes}\n"
                )
        print(f"exported {len(app.records)} flow records to {args.export_flows}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from ..bench import (
        fig03_flow_statistics,
        fig04_stream_delivery,
        fig05_concurrent_streams,
        fig06_pattern_matching,
        fig08_cutoff_sweep,
        fig09_ppl_priorities,
        fig10_worker_scaling,
        format_series,
        get_scale,
    )

    runners = {
        "fig03": fig03_flow_statistics,
        "fig04": fig04_stream_delivery,
        "fig05": fig05_concurrent_streams,
        "fig06": fig06_pattern_matching,
        "fig08": fig08_cutoff_sweep,
        "fig09": fig09_ppl_priorities,
        "fig10": fig10_worker_scaling,
    }
    series = runners[args.figure](get_scale())
    print(format_series(series))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """The paper's headline, one command: stream delivery on Scap vs
    the user-level baselines across a few rates."""
    from ..baselines import LibnidsEngine, PcapBasedSystem, Stream5Engine
    from ..traffic import campus_mix as _mix

    trace = _mix(flow_count=args.flows, seed=args.seed)
    wire = trace.total_wire_bytes
    ring = max(1 << 18, int(wire * 0.05))
    memory = max(1 << 19, int(wire * 0.10))
    print(trace.summary())
    print(f"{'rate':>6} {'system':>9} {'drop%':>7} {'cpu%':>7} {'softirq%':>9}")
    for rate in args.rates:
        rate_bps = rate * GBIT
        rows = []
        app = StreamDeliveryApp()
        socket = ScapSocket(trace, rate_bps=rate_bps, memory_size=memory)
        attach_app(socket, app)
        rows.append(("scap", socket.start_capture()))
        for label, engine_cls in (("libnids", LibnidsEngine), ("snort", Stream5Engine)):
            system = PcapBasedSystem(
                engine_cls(StreamDeliveryApp()), ring_bytes=ring
            )
            rows.append((label, system.run(trace, rate_bps)))
        for label, result in rows:
            print(
                f"{rate:>5.1f}G {label:>9} {result.drop_rate * 100:7.2f} "
                f"{result.user_utilization * 100:7.2f} "
                f"{result.softirq_load * 100:9.2f}"
            )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from ..traffic.inspect import filter_trace, summarize

    trace = _load_source(args)
    if args.bpf:
        trace = filter_trace(trace, args.bpf)
    print(trace.summary())
    print(summarize(trace).format())
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from ..traffic.anonymize import anonymize_trace

    packets = read_pcap(args.pcap)
    anonymize_trace(packets, key=args.key.encode())
    count = write_pcap(args.out, packets)
    print(f"anonymized {count} packets -> {args.out} (prefix-preserving)")
    return 0


def _observed_run(args: argparse.Namespace, trace_capacity: int = 4096):
    """Replay the selected source with observability enabled; return
    the finished socket (its run result is on ``socket.last_result``)."""
    from ..observability import Observability

    trace = _load_source(args)
    obs = Observability(enabled=True, trace_capacity=trace_capacity)
    socket = ScapSocket(
        trace,
        rate_bps=args.rate * GBIT,
        memory_size=args.memory_mb << 20,
        observability=obs,
    )
    if args.cutoff is not None:
        socket.set_cutoff(args.cutoff)
    attach_app(socket, StreamDeliveryApp())
    socket.start_capture(name="scap-observed")
    return socket


def _cmd_stats(args: argparse.Namespace) -> int:
    socket = _observed_run(args)
    fmt = "json" if args.format == "json" else "prometheus"
    text = socket.export_metrics(fmt, indent=2 if fmt == "json" else None)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    if args.check_parity:
        from ..observability import parity_errors
        from ..service.daemon import register_service_metrics

        # Parity must hold for the whole registry, service families
        # included: register them here (idempotent, pre-created label
        # children) so scap_service_* and the telemetry counters are
        # part of the sample-for-sample comparison too.
        register_service_metrics(socket.observability.registry)
        errors = parity_errors(socket.observability.registry)
        if errors:
            for error in errors[:20]:
                print(f"parity: {error}", file=sys.stderr)
            print(
                f"# exporter parity check FAILED: {len(errors)} mismatches",
                file=sys.stderr,
            )
            return 1
        print("# exporter parity check passed")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    socket = _observed_run(args, trace_capacity=args.capacity)
    buffer = socket.observability.trace
    if args.stream:
        events = buffer.by_stream(_parse_flow(args.stream))
    else:
        events = buffer.events()
    if args.hook:
        events = [event for event in events if event.hook in args.hook]
    shown = events[-args.limit:] if args.limit > 0 else events
    for event in shown:
        print(event.format())
    print(
        f"# {len(shown)} of {len(events)} matching events shown "
        f"({buffer.emitted} emitted, {buffer.overwritten} overwritten)"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as _json

    socket = _observed_run(args)
    report = socket.profile()
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from ..observability import TimelineReconstructor

    socket = _observed_run(args, trace_capacity=args.capacity)
    reconstructor = TimelineReconstructor(socket.observability.trace)
    if args.flow:
        timeline = reconstructor.for_stream(_parse_flow(args.flow))
        if timeline is None:
            print(f"no retained trace events for {args.flow}")
            return 1
        print(timeline.format())
        return 0
    timelines = reconstructor.timelines()
    shown = timelines[: args.limit] if args.limit > 0 else timelines
    for timeline in shown:
        print(timeline.summary())
    if len(shown) < len(timelines):
        print(f"# ... {len(timelines) - len(shown)} more")
    print(
        f"# {len(timelines)} connections reconstructed "
        f"({reconstructor.unattributed} events unattributed)"
    )
    return 0


def _cmd_scapcheck(args: argparse.Namespace) -> int:
    from ..staticcheck.runner import list_rules, report, run_paths

    if args.list_rules:
        print(list_rules())
        return 0
    try:
        violations, errors = run_paths(
            args.paths, select=args.select, project=args.project
        )
    except FileNotFoundError as exc:
        print(f"scapcheck: no such path: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"scapcheck: unknown rule {exc.args[0]}", file=sys.stderr)
        return 2
    return report(violations, errors, fmt=args.fmt)


def _parse_flow(text: str):
    """Parse ``IP:PORT-IP:PORT/proto`` into a FiveTuple."""
    from ..netstack.addresses import ip_to_int
    from ..netstack.flows import FiveTuple
    from ..netstack.ip import IPProtocol

    body, _, proto_name = text.partition("/")
    proto = {
        "": IPProtocol.TCP,
        "tcp": IPProtocol.TCP,
        "udp": IPProtocol.UDP,
    }.get(proto_name.lower())
    if proto is None:
        raise ValueError(f"unknown protocol {proto_name!r} (use tcp or udp)")
    try:
        src_part, dst_part = body.split("-")
        src_ip, src_port = src_part.rsplit(":", 1)
        dst_ip, dst_port = dst_part.rsplit(":", 1)
        return FiveTuple(
            src_ip=ip_to_int(src_ip),
            src_port=int(src_port),
            dst_ip=ip_to_int(dst_ip),
            dst_port=int(dst_port),
            protocol=int(proto),
        )
    except ValueError as exc:
        raise ValueError(
            f"bad flow spec {text!r}; expected IP:PORT-IP:PORT/tcp|udp"
        ) from exc


def _flow_label(five_tuple, protocol: Optional[int] = None) -> str:
    """Render a five-tuple back into the CLI's flow-spec syntax."""
    proto = protocol if protocol is not None else five_tuple.protocol
    name = "udp" if proto == 17 else "tcp"
    return (
        f"{int_to_ip(five_tuple.src_ip)}:{five_tuple.src_port}-"
        f"{int_to_ip(five_tuple.dst_ip)}:{five_tuple.dst_port}/{name}"
    )


def _open_store(args: argparse.Namespace, **kwargs):
    """Open the store directory named by ``args.store``."""
    from ..store import StreamStore

    return StreamStore(args.store, **kwargs)


def _cmd_record(args: argparse.Namespace) -> int:
    from ..apps import StreamRecorder
    from ..store import ClassQuota, RetentionPolicy

    quotas = []
    for spec in args.class_quota or ():
        expression, _, budget = spec.rpartition("=")
        if not expression:
            print(f"record: bad --class-quota {spec!r}; expected BPF=BYTES",
                  file=sys.stderr)
            return 2
        quotas.append(ClassQuota(expression=expression, max_bytes=int(budget)))
    retention = RetentionPolicy(
        max_bytes=args.max_bytes,
        max_age=args.max_age,
        class_quotas=tuple(quotas),
    )
    trace = _load_source(args)
    print(trace.summary())
    store = _open_store(
        args,
        cores=args.cores,
        queue_bytes=args.queue_kb << 10,
        segment_bytes=args.segment_mb << 20,
        compress=args.compress,
        retention=retention,
    )
    recorder = StreamRecorder(store)
    socket = ScapSocket(
        trace, rate_bps=args.rate * GBIT, memory_size=args.memory_mb << 20
    )
    if args.cutoff is not None:
        socket.set_cutoff(args.cutoff)
    attach_app(socket, StreamDeliveryApp())
    socket.set_store(recorder)
    result = socket.start_capture(name="scap-record")
    stats = store.close()
    print(result.row())
    wire = trace.total_wire_bytes
    print(
        f"stored {stats.stored_bytes / 1e6:.2f} MB in {stats.record_count} "
        f"records across {stats.segment_count} segments "
        f"({stats.disk_bytes / 1e6:.2f} MB on disk)"
    )
    if stats.writer_queue_drops or stats.evicted_records:
        print(
            f"writer queue dropped {stats.writer_queue_drops} records "
            f"({stats.writer_queue_drop_bytes} B); retention evicted "
            f"{stats.evicted_records} records ({stats.evicted_bytes} B)"
        )
    if wire:
        print(
            f"storage reduction: {stats.stored_bytes / 1e6:.2f} MB kept of "
            f"{wire / 1e6:.2f} MB on the wire "
            f"({100.0 * (1 - stats.stored_bytes / wire):.1f}% saved)"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import os

    store = _open_store(args)
    flow = _parse_flow(args.flow) if args.flow else None
    result = store.query(flow, start_ts=args.start, end_ts=args.end)
    store.close(enforce_retention=False)
    print(
        f"{len(result.streams)} streams / {len(result.connections())} connections, "
        f"{result.total_bytes} payload bytes"
    )
    shown = result.streams[: args.limit] if args.limit > 0 else result.streams
    for stream in shown:
        arrow = "->" if stream.direction == 0 else "<-"
        print(
            f"  {_flow_label(stream.client_tuple)} {arrow} "
            f"{len(stream.data)} B @ offset {stream.base_offset} "
            f"[{stream.first_ts:.6f}, {stream.last_ts:.6f}]"
            + (f" ({stream.gap_bytes} B gaps)" if stream.gap_bytes else "")
        )
    if len(shown) < len(result.streams):
        print(f"  ... {len(result.streams) - len(shown)} more")
    if args.dump:
        os.makedirs(args.dump, exist_ok=True)
        for number, stream in enumerate(result.streams):
            name = f"stream-{number:04d}-dir{stream.direction}.bin"
            with open(os.path.join(args.dump, name), "wb") as handle:
                handle.write(stream.data)
        print(f"dumped {len(result.streams)} payloads to {args.dump}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    store = _open_store(args)
    flow = _parse_flow(args.flow) if args.flow else None
    source = store.replay_source(flow, start_ts=args.start, end_ts=args.end)
    store.close(enforce_retention=False)
    trace = source.as_trace()
    if not trace.packets:
        print("nothing stored matches the selection; nothing to replay")
        return 1
    print(trace.summary())
    socket = ScapSocket(
        trace, rate_bps=args.rate * GBIT, memory_size=args.memory_mb << 20
    )
    if args.cutoff is not None:
        socket.set_cutoff(args.cutoff)
    app = StreamDeliveryApp()
    attach_app(socket, app)
    result = socket.start_capture(name="scap-replay")
    print(result.row())
    print(
        f"replayed {result.delivered_bytes / 1e6:.2f} MB in "
        f"{result.delivered_events} events; {result.streams_created} streams"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from ..faultinject import FaultPlan
    from ..faultinject.soak import run_chaos_soak

    plan = FaultPlan.randomized(seed=args.seed, intensity=args.intensity)
    print(plan.describe())
    reports = []
    for run in range(max(1, args.runs)):
        store_dir = None
        if args.store is not None:
            store_dir = args.store if args.runs <= 1 else f"{args.store}-{run}"
        reports.append(
            run_chaos_soak(
                plan,
                flows=args.flows,
                records_per_direction=args.records,
                memory_size=args.memory_mb << 20,
                store_dir=store_dir,
            )
        )
    report = reports[0]
    print(report.summary())
    print(f"  schedule digest: {report.schedule_digest}")
    status = 0 if report.ok else 1
    for run, other in enumerate(reports[1:], start=2):
        if other.schedule_digest != report.schedule_digest:
            print(f"  FAIL: run {run} diverged — determinism broken "
                  f"({other.schedule_digest} != {report.schedule_digest})")
            status = 1
        elif not other.ok:
            print(f"  FAIL: run {run}: {'; '.join(other.failures)}")
            status = 1
        else:
            print(f"  run {run}: identical fault schedule, invariants hold")
    if args.schedule:
        for line in report.schedule:
            print(f"  {line}")
    return status


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.rho_high is None:
        print(f"M/M/1/N loss probability at rho={args.rho}")
        print(f"{'N':>6} {'P(loss)':>14}")
        for slots in args.slots:
            print(f"{slots:>6} {mm1n_loss_probability(args.rho, slots):>14.3e}")
    else:
        print(
            f"Two-class PPL chain: rho1={args.rho} (cumulative), "
            f"rho2={args.rho_high} (high class)"
        )
        print(f"{'N':>6} {'P(loss medium)':>16} {'P(loss high)':>16}")
        for slots in args.slots:
            medium, high = two_class_loss_probabilities(
                args.rho, args.rho_high, slots
            )
            print(f"{slots:>6} {medium:>16.3e} {high:>16.3e}")
    return 0


def _connect_client(args: argparse.Namespace, **kwargs):
    """Open a ScapClient from the shared --unix/--tcp/--token options."""
    from ..service import ScapClient

    if args.unix is not None:
        return ScapClient(unix_path=args.unix, token=args.token, **kwargs)
    host, _, port = args.tcp.rpartition(":")
    return ScapClient(
        host=host or "127.0.0.1", port=int(port), token=args.token, **kwargs
    )


def _cmd_spans(args: argparse.Namespace) -> int:
    from ..observability import Observability, SpanTreeReconstructor

    obs = Observability(enabled=True)
    client = _connect_client(
        args, observability=obs, trace_prefix="cli", name="repro-scap-spans"
    )
    try:
        if args.trace_id is not None or args.slowest is not None:
            remote = client.spans(
                trace_id=args.trace_id, slowest=args.slowest, limit=args.limit
            )
            sources = list(remote)
        else:
            # No selector: exercise one traced round trip and render it,
            # merging our local client spans with the daemon's server
            # side of the same trace.
            client.ping()
            trace_id = client.last_trace_id
            remote = client.spans(trace_id=trace_id, limit=args.limit)
            sources = list(client.local_spans()) + list(remote)
            args.trace_id = trace_id
    finally:
        client.close()
    reconstructor = SpanTreeReconstructor(sources)
    if not reconstructor.trace_ids():
        print("no span records retained (daemon running without "
              "--observability?)")
        return 1
    if args.trace_id is not None:
        wanted = [args.trace_id]
    elif args.slowest is not None:
        wanted = [pair[0] for pair in reconstructor.slowest(args.slowest)]
    else:
        wanted = reconstructor.trace_ids()
    for trace_id in wanted:
        print(reconstructor.format_trace(trace_id))
    print(f"# {len(wanted)} trace(s), {len(reconstructor.records())} spans")
    return 0


def _top_frame(client) -> dict:
    """One `top` refresh: forced telemetry sample + health + stats."""
    telemetry = client.call("telemetry", sample=True).header["telemetry"]
    health = client.health()
    stats = client.stats()
    samples = telemetry.get("samples", [])
    rates: dict = {}
    if len(samples) >= 2:
        previous, latest = samples[-2], samples[-1]
        dt = latest["time"] - previous["time"]
        if dt > 0:
            for key, value in latest["values"].items():
                delta = value - previous["values"].get(key, 0)
                if delta <= 0:
                    continue
                # Aggregate label children under their family name.
                family = key.split("{", 1)[0]
                rates[family] = rates.get(family, 0.0) + delta / dt
    return {
        "verdict": health.get("verdict"),
        "ready": health.get("ready"),
        "reasons": health.get("reasons", []),
        "server": stats.get("server", {}),
        "clients": stats.get("clients", []),
        "rates": rates,
        "samples": len(samples),
    }


def _print_top_frame(frame: dict) -> None:
    server = frame["server"]
    print(
        f"scap-top  verdict={frame['verdict']}"
        f"{' (ready)' if frame['ready'] else ' (NOT ready)'}  "
        f"clients={server.get('active_clients', '?')}  "
        f"captures={server.get('captures', '?')}  "
        f"samples={frame['samples']}"
    )
    for reason in frame["reasons"]:
        print(f"  ! {reason}")
    rates = frame["rates"]

    def rate(family: str) -> float:
        return rates.get(family, 0.0)

    print(
        f"  tx {rate('scap_service_bytes_sent_total') / 1e6:8.2f} MB/s   "
        f"rx {rate('scap_service_bytes_received_total') / 1e6:8.2f} MB/s   "
        f"events {rate('scap_service_events_delivered_total'):9.1f}/s   "
        f"drops {rate('scap_service_events_dropped_total'):7.1f}/s   "
        f"bad frames {rate('scap_service_bad_frames_total'):6.1f}/s"
    )
    for entry in frame["clients"]:
        ledger = entry.get("ledger", {})
        print(
            f"  client {entry.get('name') or entry.get('client_id')}: "
            f"queued={entry.get('queued', 0)} "
            f"delivered={ledger.get('delivered', 0)} "
            f"dropped={ledger.get('dropped', 0)} "
            f"fed={ledger.get('bytes_sent', 0)} B"
        )


def _cmd_top(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    client = _connect_client(args, name="repro-scap-top")
    count = 1 if args.once else args.count
    shown = 0
    try:
        while True:
            frame = _top_frame(client)
            if args.json:
                print(_json.dumps(frame))
            else:
                _print_top_frame(frame)
            shown += 1
            if count and shown >= count:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..observability import Observability
    from ..service import ClientQuotas, DaemonConfig, ScapDaemon

    if args.unix is None and args.tcp is None:
        print("serve: need --unix PATH and/or --tcp HOST:PORT", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_seed is not None:
        from ..faultinject import ClientFaults, FaultPlan

        fault_plan = FaultPlan(
            seed=args.fault_seed,
            client=ClientFaults(
                slow_client_rate=args.slow_client_rate,
                disconnect_mid_subscription_rate=args.disconnect_rate,
                garbage_frame_rate=args.garbage_frame_rate,
            ),
        )
    http_host, http_port = None, 0
    if args.http is not None:
        host_part, _, port_part = args.http.rpartition(":")
        http_host = host_part or "127.0.0.1"
        http_port = int(port_part or 0)
    config = DaemonConfig(
        store_dir=args.store,
        auth_tokens=tuple(args.token) if args.token else None,
        quotas=ClientQuotas(
            max_subscriptions=args.max_subscriptions,
            max_queued_events=args.max_queued_events,
            eviction_drop_limit=args.eviction_drop_limit,
        ),
        global_event_budget=args.global_event_budget,
        memory_size=args.memory_mb << 20,
        core_count=args.cores,
        allow_control=not args.no_control,
        http_host=http_host,
        http_port=http_port,
        telemetry_cadence=args.telemetry_cadence,
    )
    # The sidecar serves the metrics registry, so it needs one.
    enable_obs = args.observability or args.http is not None
    observability = Observability(enabled=True) if enable_obs else None
    daemon = ScapDaemon(config, observability=observability, fault_plan=fault_plan)
    if args.unix is not None:
        daemon.add_unix_listener(args.unix)
        print(f"listening on unix:{args.unix}")
    if args.tcp is not None:
        host, _, port = args.tcp.rpartition(":")
        bound_host, bound_port = daemon.add_tcp_listener(host or "127.0.0.1",
                                                         int(port or 0))
        print(f"listening on tcp:{bound_host}:{bound_port}", flush=True)
    try:
        daemon.start()
        if daemon.http_address is not None:
            print(
                f"health sidecar on "
                f"http://{daemon.http_address[0]}:{daemon.http_address[1]} "
                f"(/metrics /healthz /readyz)",
                flush=True,
            )
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.shutdown()
    print("daemon stopped; ledgers balanced:", daemon.ledgers_balanced())
    return 0 if daemon.ledgers_balanced() else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "capture": _cmd_capture,
        "bench": _cmd_bench,
        "compare": _cmd_compare,
        "inspect": _cmd_inspect,
        "anonymize": _cmd_anonymize,
        "analyze": _cmd_analyze,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "timeline": _cmd_timeline,
        "scapcheck": _cmd_scapcheck,
        "chaos": _cmd_chaos,
        "record": _cmd_record,
        "query": _cmd_query,
        "replay": _cmd_replay,
        "serve": _cmd_serve,
        "spans": _cmd_spans,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
