"""``ScapClient``: the remote side of the capture-daemon protocol.

Connects over a Unix or TCP socket, frames requests with
:func:`repro.service.protocol.encode_frame`, and gives three calling
styles (the DarwinApi socket-API idiom):

* :meth:`call` — one request, wait for its response (with a
  per-request timeout and a single exponential-backoff retry for
  idempotent commands);
* :meth:`bulk_call` — pipeline many requests before collecting any
  response, amortizing round trips;
* :meth:`subscribe` — install a standing stream-event subscription and
  iterate delivered events from a local queue.

A dedicated reader thread owns the inbound half of the socket: it
routes responses to their waiting callers by request id and fans
subscription events into per-subscription queues, so calls and event
delivery never block each other.
"""

from __future__ import annotations

import queue
import socket as socket_module
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..observability.spans import (
    KIND_CLIENT,
    Span,
    SpanRecord,
    SpanRecorder,
    span_records,
)
from .protocol import (
    ERR_TIMEOUT,
    IDEMPOTENT_COMMANDS,
    MSG_ERROR,
    MSG_EVENT,
    MSG_REQUEST,
    Frame,
    FrameReader,
    ServiceError,
    encode_frame,
)

__all__ = ["RemoteCallError", "CallTimeout", "EventStream", "ScapClient"]

DEFAULT_TIMEOUT = 10.0


class RemoteCallError(ServiceError):
    """The daemon answered with a typed MSG_ERROR frame."""


class CallTimeout(ServiceError):
    """No response arrived within the per-request timeout."""

    def __init__(self, message: str):
        super().__init__(ERR_TIMEOUT, message)


@dataclass
class CallResult:
    """One completed call: the response header and its binary payload."""

    header: Dict[str, Any]
    payload: bytes


class EventStream:
    """Client-side handle for one subscription's delivered events."""

    def __init__(self, client: "ScapClient", subscription_id: int):
        self.client = client
        self.subscription_id = subscription_id
        self._queue: "queue.Queue[Optional[Frame]]" = queue.Queue()

    def next_event(self, timeout: Optional[float] = 5.0) -> Optional[Frame]:
        """The next delivered event frame (None on timeout/close)."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def events(self, timeout: Optional[float] = 5.0) -> Iterator[Frame]:
        """Iterate events until a timeout or the connection closes."""
        while True:
            frame = self.next_event(timeout=timeout)
            if frame is None:
                return
            yield frame

    def close(self) -> None:
        """Unsubscribe on the daemon and drop the local queue."""
        self.client.unsubscribe(self.subscription_id)


class ScapClient:
    """A connection to a running :class:`~repro.service.ScapDaemon`."""

    def __init__(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        token: Optional[str] = None,
        name: str = "",
        timeout: float = DEFAULT_TIMEOUT,
        retry_idempotent: bool = True,
        retry_backoff: float = 0.05,
        observability=None,
        trace_prefix: Optional[str] = None,
    ):
        if unix_path is not None:
            sock = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            sock.connect(unix_path)
        elif host is not None and port is not None:
            sock = socket_module.create_connection((host, port))
        else:
            raise ValueError("connect with unix_path= or host=/port=")
        self.sock = sock
        self.timeout = timeout
        self.retry_idempotent = retry_idempotent
        self.retry_backoff = retry_backoff
        self._lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._next_request_id = 1
        self._pending: Dict[int, "queue.Queue[Frame]"] = {}
        self._streams: Dict[int, EventStream] = {}
        #: Unsolicited MSG_ERROR frames (request_id 0), newest last.
        self.unsolicited_errors: List[Frame] = []
        self._closed = False
        #: Optional request tracing: every call opens a root span whose
        #: context rides the frame header; the daemon links its own
        #: spans under it.  ``trace_prefix`` keeps ids deterministic in
        #: tests; by default each connection gets a unique prefix so
        #: concurrent clients never collide inside the daemon's ring.
        self.observability = observability
        self.tracer: Optional[SpanRecorder] = None
        self.last_trace_id: Optional[str] = None
        if observability is not None and observability.enabled:
            prefix = trace_prefix or f"c{uuid.uuid4().hex[:6]}"
            self.tracer = SpanRecorder(
                observability.trace, clock=time.monotonic, prefix=prefix
            )
        self._reader = threading.Thread(
            target=self._read_loop, name="scap-client-read", daemon=True
        )
        self._reader.start()
        self.hello = self.call("hello", token=token, name=name).header
        self.client_id = self.hello.get("client_id")

    # ------------------------------------------------------------------
    # Inbound routing
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        reader = FrameReader()
        try:
            while True:
                data = self.sock.recv(65536)
                if not data:
                    break
                for item in reader.feed(data):
                    if isinstance(item, Frame):
                        self._route(item)
                    # Rejections of server frames are ignored: the
                    # daemon never sends malformed frames; garbage here
                    # means the transport is gone.
        except OSError:
            pass
        finally:
            self._abandon()

    def _route(self, frame: Frame) -> None:
        if frame.msg_type == MSG_EVENT:
            sub_id = frame.header.get("sub")
            with self._lock:
                stream = self._streams.get(sub_id) if sub_id is not None else None
            if stream is not None:
                stream._queue.put(frame)
            return
        if frame.request_id == 0 and frame.msg_type == MSG_ERROR:
            with self._lock:
                self.unsolicited_errors.append(frame)
            return
        with self._lock:
            waiter = self._pending.get(frame.request_id)
        if waiter is not None:
            waiter.put(frame)

    def _abandon(self) -> None:
        """Connection died: wake every waiter and event iterator."""
        with self._lock:
            self._closed = True
            streams = list(self._streams.values())
            self._streams.clear()
        for stream in streams:
            stream._queue.put(None)

    # ------------------------------------------------------------------
    # Outbound calls
    # ------------------------------------------------------------------
    def _allocate_request(self) -> Tuple[int, "queue.Queue[Frame]"]:
        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            request_id = self._next_request_id
            self._next_request_id += 1
            waiter: "queue.Queue[Frame]" = queue.Queue()
            self._pending[request_id] = waiter
            return request_id, waiter

    def _release_request(self, request_id: int) -> None:
        with self._lock:
            self._pending.pop(request_id, None)

    def _send_request(
        self,
        request_id: int,
        command: str,
        header: Dict[str, Any],
        payload: bytes,
        span: Optional[Span] = None,
    ) -> None:
        header = dict(header)
        header["command"] = command
        if span is not None:
            # Optional context (protocol minor 1); old daemons ignore it.
            header["trace"] = {"id": span.trace_id, "span": span.span_id}
        frame = encode_frame(MSG_REQUEST, request_id, header, payload)
        with self._write_lock:
            self.sock.sendall(frame)

    def _start_call_span(self, command: str) -> Optional[Span]:
        tracer = self.tracer
        if tracer is None:
            return None
        span = tracer.start_span(
            f"client:{command}", kind=KIND_CLIENT, command=command
        )
        self.last_trace_id = span.trace_id
        return span

    def low_level_call(
        self,
        command: str,
        header: Optional[Dict[str, Any]] = None,
        payload: bytes = b"",
        timeout: Optional[float] = None,
    ) -> CallResult:
        """One request/response exchange without retry logic."""
        request_id, waiter = self._allocate_request()
        span = self._start_call_span(command)
        status = "ok"
        try:
            self._send_request(request_id, command, header or {}, payload, span)
            try:
                frame = waiter.get(timeout=self.timeout if timeout is None else timeout)
            except queue.Empty:
                status = "timeout"
                raise CallTimeout(
                    f"no response to {command!r} (request {request_id})"
                ) from None
            if frame.msg_type == MSG_ERROR:
                status = str(frame.header.get("code", "internal"))
                raise RemoteCallError(
                    status,
                    str(frame.header.get("message", "remote error")),
                )
            return CallResult(header=frame.header, payload=frame.payload)
        finally:
            self._release_request(request_id)
            if span is not None:
                span.end(status=status)

    def call(
        self,
        command: str,
        payload: bytes = b"",
        timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> CallResult:
        """Call ``command``; idempotent commands retry once on timeout.

        The retry waits ``retry_backoff`` seconds, and a retry's own
        timeout doubles — exponential backoff capped at one retry, so a
        transiently busy daemon gets a second chance but a dead one
        fails in bounded time.
        """
        try:
            return self.low_level_call(command, kwargs, payload, timeout=timeout)
        except CallTimeout:
            if not self.retry_idempotent or command not in IDEMPOTENT_COMMANDS:
                raise
            time.sleep(self.retry_backoff)
            doubled = (self.timeout if timeout is None else timeout) * 2
            return self.low_level_call(command, kwargs, payload, timeout=doubled)

    def bulk_call(
        self, calls: Sequence[Tuple[str, Dict[str, Any], bytes]]
    ) -> List[CallResult]:
        """Pipeline many calls: send all requests, then collect in order.

        ``calls`` is a sequence of ``(command, header, payload)``.  A
        failed call raises after the whole batch was sent, so earlier
        results are not lost to a later error.
        """
        issued: List[Tuple[int, "queue.Queue[Frame]", str, Optional[Span]]] = []
        for command, header, payload in calls:
            request_id, waiter = self._allocate_request()
            span = self._start_call_span(command)
            self._send_request(request_id, command, header, payload, span)
            issued.append((request_id, waiter, command, span))
        results: List[CallResult] = []
        failure: Optional[Exception] = None
        for request_id, waiter, command, span in issued:
            status = "ok"
            try:
                frame = waiter.get(timeout=self.timeout)
            except queue.Empty:
                status = "timeout"
                failure = failure or CallTimeout(
                    f"no response to {command!r} (request {request_id})"
                )
                continue
            finally:
                self._release_request(request_id)
                if span is not None and status != "ok":
                    span.end(status=status)
            if frame.msg_type == MSG_ERROR:
                status = str(frame.header.get("code", "internal"))
                failure = failure or RemoteCallError(
                    status,
                    str(frame.header.get("message", "remote error")),
                )
            if span is not None:
                span.end(status=status)
            if frame.msg_type == MSG_ERROR:
                continue
            results.append(CallResult(header=frame.header, payload=frame.payload))
        if failure is not None:
            raise failure
        return results

    # ------------------------------------------------------------------
    # Convenience wrappers over the command catalog
    # ------------------------------------------------------------------
    def ping(self, echo: Any = None) -> Dict[str, Any]:
        """Round-trip liveness probe."""
        return self.call("ping", echo=echo).header

    def submit_trace(
        self, pcap_bytes: bytes, rate_bps: float = 1e9, name: str = "remote"
    ) -> Dict[str, Any]:
        """Capture a pcap (shipped as frame payload); returns the run summary."""
        result = self.call(
            "submit_trace",
            payload=pcap_bytes,
            kind="pcap",
            rate_bps=rate_bps,
            name=name,
            timeout=max(self.timeout, 60.0),
        )
        return result.header["result"]

    def submit_campus(
        self, flows: int = 100, seed: int = 7, rate_bps: float = 1e9, name: str = "campus"
    ) -> Dict[str, Any]:
        """Capture a server-side synthetic campus-mix workload."""
        result = self.call(
            "submit_trace",
            kind="campus",
            flows=flows,
            seed=seed,
            rate_bps=rate_bps,
            name=name,
            timeout=max(self.timeout, 60.0),
        )
        return result.header["result"]

    def feed_packets(
        self, chunks: Sequence[bytes], rate_bps: float = 1e9, name: str = "feed"
    ) -> Dict[str, Any]:
        """Stage pcap bytes chunk by chunk, then capture the feed."""
        feed_id = self.call("feed_open").header["feed_id"]
        for chunk in chunks:
            self.call("feed_append", payload=chunk, feed_id=feed_id)
        result = self.call(
            "feed_commit",
            feed_id=feed_id,
            rate_bps=rate_bps,
            name=name,
            timeout=max(self.timeout, 60.0),
        )
        return result.header["result"]

    def install_filter(self, expression: str) -> int:
        """Add a keep-filter for subsequent captures; returns its id."""
        return self.call("install_filter", expression=expression).header["filter_id"]

    def remove_filter(self, filter_id: int) -> None:
        """Remove a previously installed keep-filter."""
        self.call("remove_filter", filter_id=filter_id)

    def set_cutoff(self, cutoff: Optional[int]) -> None:
        """Set (or clear, with None) the daemon's default stream cutoff."""
        self.call("set_cutoff", cutoff=cutoff)

    def set_priority(self, expression: str, priority: int) -> int:
        """Install a BPF-classed PPL priority rule; returns its id."""
        return self.call(
            "set_priority", expression=expression, priority=priority
        ).header["priority_id"]

    def remove_priority(self, priority_id: int) -> None:
        """Remove a previously installed priority rule."""
        self.call("remove_priority", priority_id=priority_id)

    def subscribe(
        self,
        events: Optional[Sequence[str]] = None,
        flow_filter: str = "",
    ) -> EventStream:
        """Install a stream-event subscription; returns its event queue."""
        header = self.call(
            "subscribe",
            events=list(events) if events is not None else None,
            filter=flow_filter,
        ).header
        stream = EventStream(self, header["subscription_id"])
        with self._lock:
            self._streams[stream.subscription_id] = stream
        return stream

    def unsubscribe(self, subscription_id: int) -> None:
        """Tear down a subscription on both sides."""
        with self._lock:
            self._streams.pop(subscription_id, None)
        self.call("unsubscribe", subscription_id=subscription_id)

    def query(
        self,
        flow: Optional[Sequence[int]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Five-tuple/time-range store query with reassembled payloads.

        Returns one dict per matching stream direction, each with the
        metadata the daemon sent plus its ``data`` bytes sliced out of
        the binary payload.
        """
        result = self.call(
            "query", flow=list(flow) if flow is not None else None,
            start=start, end=end,
        )
        return _split_streams(result.header["streams"], result.payload)

    def bulk_query(self, specs: Sequence[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
        """Many store queries in one frame; one stream list per spec."""
        result = self.call("bulk_query", queries=list(specs))
        out: List[List[Dict[str, Any]]] = []
        offset = 0
        for entry in result.header["results"]:
            size = sum(stream["len"] for stream in entry["streams"])
            chunk = result.payload[offset:offset + size]
            offset += size
            out.append(_split_streams(entry["streams"], chunk))
        return out

    def stats(self) -> Dict[str, Any]:
        """The daemon's server/client/store/fault statistics snapshot."""
        return self.call("stats").header

    def spans(
        self,
        trace_id: Optional[str] = None,
        slowest: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Span records retained by the daemon (optionally one trace)."""
        header = self.call(
            "spans", trace_id=trace_id, slowest=slowest, limit=limit
        ).header
        return list(header.get("spans", []))

    def telemetry(self) -> Dict[str, Any]:
        """The daemon's telemetry-ring history (cadenced samples)."""
        return self.call("telemetry").header["telemetry"]

    def health(self) -> Dict[str, Any]:
        """The daemon's health verdict (same shape as ``/healthz``)."""
        return self.call("health").header["health"]

    def local_spans(self) -> List[SpanRecord]:
        """Client-side span records from this connection's trace ring."""
        if self.observability is None:
            return []
        return span_records(self.observability.trace.events())

    def reload(self) -> Dict[str, Any]:
        """Ask the daemon to drain queues and seal store segments."""
        return self.call("reload", timeout=max(self.timeout, 30.0)).header

    def shutdown_server(self) -> Dict[str, Any]:
        """Ask the daemon to shut down gracefully."""
        return self.call("shutdown").header

    def close(self) -> None:
        """Close the connection (the reader thread exits on EOF)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.sock.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self._reader.join(timeout=2.0)

    def __enter__(self) -> "ScapClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def _split_streams(
    streams: List[Dict[str, Any]], payload: bytes
) -> List[Dict[str, Any]]:
    """Attach each stream's slice of the concatenated payload."""
    out: List[Dict[str, Any]] = []
    offset = 0
    for meta in streams:
        size = int(meta["len"])
        entry = dict(meta)
        entry["data"] = payload[offset:offset + size]
        offset += size
        out.append(entry)
    return out
