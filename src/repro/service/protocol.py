"""The versioned, length-framed wire protocol of the capture daemon.

Every message on a service connection is one **frame**:

====== ======== =====================================================
offset size     field
====== ======== =====================================================
0      4        ``length`` — big-endian u32, bytes after this field
4      1        ``version`` — :data:`PROTOCOL_VERSION`
5      1        ``msg_type`` — REQUEST / RESPONSE / EVENT / ERROR
6      4        ``request_id`` — big-endian u32 (0 for unsolicited)
10     4        ``header_len`` — big-endian u32
14     varies   ``header`` — UTF-8 JSON object, ``header_len`` bytes
14+hl  varies   ``payload`` — raw bytes, the rest of the frame
====== ======== =====================================================

The JSON header carries the command name and its arguments; bulk data
(pcap bytes, stream payloads, subscribed chunks) rides in the binary
payload so it is never base64-inflated.  Commands are also assigned
stable numeric codes (:data:`COMMAND_CODE_MAP`) so a non-Python client
can dispatch without string comparisons, mirroring the filter-code map
idiom of socket service APIs.

Robustness contract (see ``docs/SERVICE.md``): a peer that receives an
oversized, zero-length, or undecodable frame must *reject the frame*,
not the connection — :class:`FrameReader` therefore reports malformed
input as :class:`FrameRejection` records (with the bytes skipped) and
keeps scanning, so the daemon can answer with a typed error response
and carry on serving.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_MINOR",
    "MAX_FRAME_BYTES",
    "REJECT_ZERO_LENGTH",
    "REJECT_OVERSIZED",
    "REJECT_UNDECODABLE",
    "REJECT_CATEGORIES",
    "MSG_REQUEST",
    "MSG_RESPONSE",
    "MSG_EVENT",
    "MSG_ERROR",
    "MSG_NAMES",
    "COMMAND_CODE_MAP",
    "IDEMPOTENT_COMMANDS",
    "ERR_BAD_FRAME",
    "ERR_BAD_REQUEST",
    "ERR_UNAUTHORIZED",
    "ERR_QUOTA",
    "ERR_UNKNOWN_COMMAND",
    "ERR_SHUTTING_DOWN",
    "ERR_TIMEOUT",
    "ERR_INTERNAL",
    "ERROR_CODES",
    "ServiceError",
    "ProtocolError",
    "FrameTooLarge",
    "ZeroLengthFrame",
    "Frame",
    "FrameRejection",
    "FrameReader",
    "encode_frame",
    "decode_frame_body",
]

#: Protocol revision carried in every frame; peers reject mismatches.
PROTOCOL_VERSION = 1

#: Minor revision, advertised in ``hello`` but *not* on the wire byte:
#: minor bumps only add optional header keys (which old peers ignore —
#: every header read goes through ``.get``).  Minor 1 added the
#: ``trace`` header key carrying span context (see
#: ``repro.observability.spans``).
PROTOCOL_MINOR = 1

#: Hard upper bound on ``length``; larger declarations are rejected
#: (and skipped) without ever buffering the oversized body.
MAX_FRAME_BYTES = 16 << 20

# Message types.
MSG_REQUEST = 1
MSG_RESPONSE = 2
MSG_EVENT = 3
MSG_ERROR = 4

MSG_NAMES = {
    MSG_REQUEST: "request",
    MSG_RESPONSE: "response",
    MSG_EVENT: "event",
    MSG_ERROR: "error",
}

#: Stable numeric codes per command (the DarwinApi filter-code idiom):
#: the JSON header names the command, the code lets non-JSON dispatch
#: tables and wire traces stay compact and unambiguous across versions.
COMMAND_CODE_MAP: Dict[str, int] = {
    "hello": 0x68656C6F,          # "helo"
    "ping": 0x70696E67,           # "ping"
    "submit_trace": 0x74726163,   # "trac"
    "feed_open": 0x666F7065,      # "fope"
    "feed_append": 0x66617070,    # "fapp"
    "feed_commit": 0x66636D74,    # "fcmt"
    "install_filter": 0x66696C74,  # "filt"
    "remove_filter": 0x7266696C,   # "rfil"
    "set_cutoff": 0x63757466,     # "cutf"
    "set_priority": 0x7072696F,   # "prio"
    "remove_priority": 0x72707269,  # "rpri"
    "subscribe": 0x73756273,      # "subs"
    "unsubscribe": 0x75737562,    # "usub"
    "query": 0x71756572,          # "quer"
    "bulk_query": 0x62756C6B,     # "bulk"
    "stats": 0x73746174,          # "stat"
    "spans": 0x73706E73,          # "spns"
    "telemetry": 0x746C6D74,      # "tlmt"
    "health": 0x686C7468,         # "hlth"
    "reload": 0x726C6F64,         # "rlod"
    "shutdown": 0x73687574,       # "shut"
}

#: Commands safe to retry after a timeout (no server-side state change).
IDEMPOTENT_COMMANDS = frozenset(
    {"ping", "query", "bulk_query", "stats", "spans", "telemetry", "health"}
)

# Typed error codes (the ``code`` field of MSG_ERROR headers).
ERR_BAD_FRAME = "bad_frame"
ERR_BAD_REQUEST = "bad_request"
ERR_UNAUTHORIZED = "unauthorized"
ERR_QUOTA = "quota_exceeded"
ERR_UNKNOWN_COMMAND = "unknown_command"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_TIMEOUT = "timeout"
ERR_INTERNAL = "internal"

ERROR_CODES = (
    ERR_BAD_FRAME,
    ERR_BAD_REQUEST,
    ERR_UNAUTHORIZED,
    ERR_QUOTA,
    ERR_UNKNOWN_COMMAND,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    ERR_INTERNAL,
)

# Structural categories of rejected frames (the ``category`` of a
# :class:`FrameRejection`, and the ``reason`` label of the daemon's
# ``scap_service_bad_frames_total`` counter).
REJECT_ZERO_LENGTH = "zero_length"
REJECT_OVERSIZED = "oversized"
REJECT_UNDECODABLE = "undecodable"

REJECT_CATEGORIES = (
    REJECT_ZERO_LENGTH,
    REJECT_OVERSIZED,
    REJECT_UNDECODABLE,
)

_FIXED = struct.Struct("!BBII")  # version, msg_type, request_id, header_len
_LENGTH = struct.Struct("!I")

#: Smallest legal ``length`` value: the fixed fields with an empty header.
MIN_FRAME_BYTES = _FIXED.size


class ServiceError(Exception):
    """Base class for service-plane failures, carrying a typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class ProtocolError(ServiceError):
    """A malformed frame or an out-of-contract message."""

    def __init__(self, message: str, code: str = ERR_BAD_FRAME):
        super().__init__(code, message)


class FrameTooLarge(ProtocolError):
    """Declared frame length exceeds the negotiated maximum."""


class ZeroLengthFrame(ProtocolError):
    """Declared frame length is zero (an empty frame is meaningless)."""


@dataclass
class Frame:
    """One decoded protocol frame."""

    msg_type: int
    request_id: int
    header: Dict[str, object] = field(default_factory=dict)
    payload: bytes = b""
    version: int = PROTOCOL_VERSION

    @property
    def command(self) -> str:
        """The request's command name ("" when the header names none)."""
        return str(self.header.get("command", ""))


@dataclass
class FrameRejection:
    """A malformed frame that was skipped instead of killing the link."""

    reason: str          # an ERR_* code, usually ERR_BAD_FRAME
    detail: str          # human-readable diagnosis
    skipped_bytes: int   # wire bytes consumed while resynchronizing
    category: str = REJECT_UNDECODABLE  # a REJECT_* structural category


def encode_frame(
    msg_type: int,
    request_id: int,
    header: Optional[Dict[str, object]] = None,
    payload: bytes = b"",
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Serialize one frame to wire bytes (length prefix included)."""
    if msg_type not in MSG_NAMES:
        raise ValueError(f"unknown msg_type {msg_type!r}")
    header_bytes = json.dumps(
        header or {}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    body_len = _FIXED.size + len(header_bytes) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
        )
    return b"".join(
        (
            _LENGTH.pack(body_len),
            _FIXED.pack(version & 0xFF, msg_type, request_id & 0xFFFFFFFF,
                        len(header_bytes)),
            header_bytes,
            payload,
        )
    )


def decode_frame_body(body: bytes) -> Frame:
    """Decode one frame body (the bytes after the length prefix).

    Raises :class:`ProtocolError` on any structural defect; callers
    that must survive garbage input go through :class:`FrameReader`,
    which converts the raise into a :class:`FrameRejection`.
    """
    if len(body) < _FIXED.size:
        raise ProtocolError(
            f"frame body of {len(body)} bytes is shorter than the "
            f"{_FIXED.size}-byte fixed header"
        )
    version, msg_type, request_id, header_len = _FIXED.unpack_from(body)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} not supported (speaking "
            f"{PROTOCOL_VERSION})"
        )
    if msg_type not in MSG_NAMES:
        raise ProtocolError(f"unknown message type {msg_type}")
    header_end = _FIXED.size + header_len
    if header_end > len(body):
        raise ProtocolError(
            f"header length {header_len} overruns the {len(body)}-byte body"
        )
    raw_header = body[_FIXED.size:header_end]
    try:
        header = json.loads(raw_header.decode("utf-8")) if header_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable JSON header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return Frame(
        msg_type=msg_type,
        request_id=request_id,
        header=header,
        payload=body[header_end:],
        version=version,
    )


class FrameReader:
    """Incremental frame scanner over a byte stream.

    Feed it whatever the socket produced; it returns complete
    :class:`Frame` records plus :class:`FrameRejection` records for
    malformed input it skipped.  Oversized frames are *drained* — the
    declared body is discarded as it arrives without ever being
    buffered — so a peer (or a fault injector) declaring a huge length
    cannot balloon memory, and the connection resynchronizes at the
    next frame boundary.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._drain_remaining = 0
        self._drain_reason: Optional[Tuple[str, str]] = None
        #: Total wire bytes this reader has consumed.
        self.consumed = 0

    def feed(self, data: bytes) -> List[Union[Frame, FrameRejection]]:
        """Consume ``data``; return every frame/rejection it completed."""
        self.consumed += len(data)
        self._buffer.extend(data)
        out: List[Union[Frame, FrameRejection]] = []
        while True:
            if self._drain_remaining:
                drained = min(self._drain_remaining, len(self._buffer))
                if drained:
                    del self._buffer[:drained]
                    self._drain_remaining -= drained
                if self._drain_remaining:
                    return out  # still mid-drain; wait for more bytes
                reason, detail = self._drain_reason or (ERR_BAD_FRAME, "")
                self._drain_reason = None
                out.append(
                    FrameRejection(
                        reason, detail, skipped_bytes=drained,
                        category=REJECT_OVERSIZED,
                    )
                )
                continue
            if len(self._buffer) < _LENGTH.size:
                return out
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length == 0:
                del self._buffer[:_LENGTH.size]
                out.append(
                    FrameRejection(
                        ERR_BAD_FRAME,
                        "zero-length frame",
                        skipped_bytes=_LENGTH.size,
                        category=REJECT_ZERO_LENGTH,
                    )
                )
                continue
            if length > self.max_frame_bytes:
                del self._buffer[:_LENGTH.size]
                self._drain_remaining = length
                self._drain_reason = (
                    ERR_BAD_FRAME,
                    f"declared length {length} exceeds max {self.max_frame_bytes}",
                )
                continue
            if len(self._buffer) < _LENGTH.size + length:
                return out
            body = bytes(self._buffer[_LENGTH.size:_LENGTH.size + length])
            del self._buffer[:_LENGTH.size + length]
            try:
                out.append(decode_frame_body(body))
            except ProtocolError as exc:
                out.append(
                    FrameRejection(
                        exc.code, exc.message, skipped_bytes=len(body),
                        category=REJECT_UNDECODABLE,
                    )
                )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)
