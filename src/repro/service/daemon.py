"""``ScapDaemon``: the capture runtime behind a socket boundary.

The Scap paper places the Stream abstraction behind a kernel-module
boundary that many monitoring processes share; this daemon is that
boundary for the reproduction.  One long-running process owns the
simulated NIC/kernel pipeline and the persistent stream store, and
serves many concurrent clients over Unix and/or TCP sockets speaking
the length-framed protocol of :mod:`repro.service.protocol`.

Clients can:

* submit traces (pcap bytes or a synthetic-workload spec) or staged
  packet feeds for capture through the full pipeline;
* install/remove BPF keep-filters, set the default cutoff, and install
  BPF-classed PPL priorities — all applied to subsequent captures;
* subscribe to stream events (``created`` / ``data`` / ``closed``)
  with per-client backpressure-bounded queues;
* issue five-tuple/time-range queries (single or bulk) against the
  stream store, receiving reassembled payload bytes.

Threading model: one accept thread per listener, one reader thread per
client connection, one sender thread per client queue.  Captures are
serialized through ``_capture_lock`` (the simulated pipeline is a
single-threaded machine); everything else is concurrent.  Mutable
daemon state is partitioned under ``_state_lock`` (sessions,
listeners, lifecycle) and ``_config_lock`` (filters/cutoffs/
priorities); fault-injector draws are serialized by ``_fault_lock``
so the client plane's schedule is well-defined under concurrency.
"""

from __future__ import annotations

import os
import socket as socket_module
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.api import ScapSocket
from ..filters.bpf import BPFFilter
from ..netstack.flows import FiveTuple
from ..netstack.pcap import read_pcap, write_pcap
from ..observability import (
    HOOK_SERVICE_CLIENT_EVICTED,
    HOOK_SERVICE_EVENT_DROPPED,
    HOOK_SERVICE_REQUEST,
    NULL_OBSERVABILITY,
    Observability,
    SpanRecorder,
    SpanTreeReconstructor,
    TelemetryRing,
    span_records,
)
from ..observability.spans import (
    KIND_INTERNAL,
    KIND_SERVER,
    KIND_STORE,
    Span,
)
from ..traffic import Trace, campus_mix
from .health import DEFAULT_HEALTH_RULES, HealthReport, HealthServer, evaluate_health
from .protocol import (
    COMMAND_CODE_MAP,
    ERR_BAD_FRAME,
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_QUOTA,
    ERR_SHUTTING_DOWN,
    ERR_UNAUTHORIZED,
    ERR_UNKNOWN_COMMAND,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    MSG_ERROR,
    MSG_REQUEST,
    MSG_RESPONSE,
    PROTOCOL_MINOR,
    REJECT_CATEGORIES,
    Frame,
    FrameReader,
    FrameRejection,
    ServiceError,
    encode_frame,
)
from .session import EVENT_KINDS, ClientQuotas, ClientSession

__all__ = ["DaemonConfig", "ScapDaemon", "register_service_metrics"]

#: ``category`` of fault-injected garbage frames (not a wire category).
REJECT_INJECTED = "injected"

GBIT = 1e9

#: Close a connection after this many consecutive malformed frames —
#: a peer that never resynchronizes is noise, not a client.
MAX_CONSECUTIVE_REJECTIONS = 8


@dataclass
class DaemonConfig:
    """Tunables of one daemon instance."""

    #: Store directory for captured streams (None = queries disabled).
    store_dir: Optional[str] = None
    #: Accepted auth tokens (None = authentication disabled).
    auth_tokens: Optional[Tuple[str, ...]] = None
    quotas: ClientQuotas = field(default_factory=ClientQuotas)
    #: Daemon-wide bound on queued events across all clients
    #: (None = only the per-client bound applies).
    global_event_budget: Optional[int] = None
    #: Memory pool size for submitted captures.
    memory_size: int = 64 << 20
    #: Simulated cores for submitted captures.
    core_count: int = 8
    #: Whether remote ``shutdown`` / ``reload`` commands are honoured.
    allow_control: bool = True
    #: Largest accepted frame (submitted traces must fit in one frame).
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Store writer fan-out (segment series).
    store_cores: int = 1
    #: Compress store record bodies.
    store_compress: bool = False
    #: Wall-clock seconds between telemetry-ring samples.
    telemetry_cadence: float = 1.0
    #: Retained telemetry samples (the forensics window).
    telemetry_capacity: int = 512
    #: Bind the HTTP health sidecar here (None = no sidecar).
    #: Port 0 picks a free port; read it back from ``http_address``.
    http_host: Optional[str] = None
    http_port: int = 0

    def validate(self) -> None:
        """Raise ValueError on out-of-range settings."""
        self.quotas.validate()
        if self.memory_size < 1:
            raise ValueError("memory_size must be positive")
        if self.global_event_budget is not None and self.global_event_budget < 1:
            raise ValueError("global_event_budget must be positive")
        if self.telemetry_cadence <= 0:
            raise ValueError("telemetry_cadence must be positive")
        if self.telemetry_capacity < 2:
            raise ValueError("telemetry_capacity must be at least 2")


def register_service_metrics(registry) -> Dict[str, Any]:
    """Register every ``scap_service_*`` family, children pre-created.

    Shared by :class:`ScapDaemon` (which binds the returned
    instruments) and by the exporter parity check (``repro-scap stats
    --check-parity``), so parity is verified for the whole service
    registry — span and telemetry families included — without needing
    a live daemon.  Pre-creating the labeled children here means
    handler threads only ever ``.inc()``/``.observe()`` existing
    instruments, which keeps SCAP_RACE quiet.
    """
    metrics: Dict[str, Any] = {
        "connections": registry.counter(
            "scap_service_connections_total", "client connections accepted"
        ),
        "active": registry.gauge(
            "scap_service_active_clients", "currently connected clients"
        ),
        "requests": registry.counter(
            "scap_service_requests_total", "requests processed",
            labels=("command",),
        ),
        "errors": registry.counter(
            "scap_service_errors_total", "typed error responses",
            labels=("code",),
        ),
        "rejected": registry.counter(
            "scap_service_frames_rejected_total",
            "malformed frames rejected without dropping the connection",
            labels=("reason",),
        ),
        "bad_frames": registry.counter(
            "scap_service_bad_frames_total",
            "rejected frames by structural category",
            labels=("reason",),
        ),
        "command_seconds": registry.histogram(
            "scap_service_command_seconds",
            "request handling wall seconds by command",
            labels=("command",),
        ),
        "enqueued": registry.counter(
            "scap_service_events_enqueued_total", "events queued for delivery"
        ),
        "delivered": registry.counter(
            "scap_service_events_delivered_total", "events written to clients"
        ),
        "dropped": registry.counter(
            "scap_service_events_dropped_total", "events dropped by backpressure"
        ),
        "bytes_sent": registry.counter(
            "scap_service_bytes_sent_total", "frame bytes written to clients"
        ),
        "bytes_received": registry.counter(
            "scap_service_bytes_received_total", "frame bytes read from clients"
        ),
        "captures": registry.counter(
            "scap_service_captures_total", "capture runs executed for clients"
        ),
        "capture_dropped": registry.counter(
            "scap_service_capture_dropped_packets_total",
            "packets dropped unintentionally during client captures",
        ),
        "evictions": registry.counter(
            "scap_service_client_evictions_total",
            "clients disconnected for falling too far behind",
        ),
        "queued_events": registry.gauge(
            "scap_service_queued_events",
            "events currently queued across all clients",
        ),
        "queue_saturation": registry.gauge(
            "scap_service_queue_saturation",
            "deepest client event queue as a fraction of its quota",
        ),
        "telemetry_samples": registry.counter(
            "scap_service_telemetry_samples_total",
            "telemetry-ring snapshots taken",
        ),
    }
    for command in tuple(COMMAND_CODE_MAP) + ("?",):
        metrics["requests"].labels(command)
        metrics["command_seconds"].labels(command)
    for code in ERROR_CODES:
        metrics["errors"].labels(code)
    metrics["rejected"].labels(ERR_BAD_FRAME)
    for category in REJECT_CATEGORIES + (REJECT_INJECTED,):
        metrics["bad_frames"].labels(category)
    return metrics


class ScapDaemon:
    """A long-running capture service over Unix/TCP sockets."""

    def __init__(
        self,
        config: Optional[DaemonConfig] = None,
        observability: Optional[Observability] = None,
        fault_plan: Optional[object] = None,
    ):
        self.config = config or DaemonConfig()
        self.config.validate()
        self._obs = observability or NULL_OBSERVABILITY
        self._state_lock = threading.Lock()
        self._config_lock = threading.Lock()
        self._capture_lock = threading.Lock()
        self._fault_lock = threading.Lock()
        self._sessions: Dict[int, ClientSession] = {}
        self._listeners: List[Tuple[socket_module.socket, str]] = []
        self._accept_threads: List[threading.Thread] = []
        self._handler_threads: List[threading.Thread] = []
        self._next_client_id = 1
        self._closing = False
        self._shutdown_done = threading.Event()
        self._reloading = False
        self._captures = 0
        #: Simulated clock high-water mark across submitted captures.
        self._sim_now = 0.0
        self.store = None
        if self.config.store_dir is not None:
            from ..store import StreamStore

            self.store = StreamStore(
                self.config.store_dir,
                cores=self.config.store_cores,
                compress=self.config.store_compress,
                observability=observability,
            )
        # Config the clients program at runtime.
        self._filters: Dict[int, str] = {}
        self._next_filter_id = 1
        self._cutoff: Optional[int] = None
        self._priorities: Dict[int, Tuple[str, int]] = {}
        self._next_priority_id = 1
        # Client-plane fault injection.
        self.fault_injector = None
        if fault_plan is not None:
            from ..faultinject import FaultInjector

            self.fault_injector = FaultInjector(fault_plan, observability=observability)
        #: Ledger snapshots of sessions that finished (id -> dict).
        self.final_ledgers: Dict[int, Dict[str, object]] = {}
        # Service metrics: families are registered here, on the owning
        # thread (children pre-created inside the helper), so session
        # threads only ever increment existing instruments.
        registry = self._obs.registry
        metrics = register_service_metrics(registry)
        self._m_connections = metrics["connections"]
        self._m_active = metrics["active"]
        self._m_requests = metrics["requests"]
        self._m_errors = metrics["errors"]
        self._m_rejected = metrics["rejected"]
        self._m_bad_frames = metrics["bad_frames"]
        self._m_command_seconds = metrics["command_seconds"]
        self._m_enqueued = metrics["enqueued"]
        self._m_delivered = metrics["delivered"]
        self._m_dropped = metrics["dropped"]
        self._m_bytes_sent = metrics["bytes_sent"]
        self._m_bytes_received = metrics["bytes_received"]
        self._m_captures = metrics["captures"]
        self._m_capture_dropped = metrics["capture_dropped"]
        self._m_evictions = metrics["evictions"]
        self._m_queued_events = metrics["queued_events"]
        self._m_queue_saturation = metrics["queue_saturation"]
        self._m_telemetry_samples = metrics["telemetry_samples"]
        # Causal request tracing and cadenced telemetry; both exist
        # only when observability is enabled, so every hot call site
        # guards on ``is not None`` (one pointer check when disabled).
        self._spans: Optional[SpanRecorder] = None
        self.telemetry: Optional[TelemetryRing] = None
        if self._obs.enabled:
            self._spans = SpanRecorder(
                self._obs.trace, clock=time.monotonic, prefix="d"
            )
            self.telemetry = TelemetryRing(
                registry,
                cadence=self.config.telemetry_cadence,
                capacity=self.config.telemetry_capacity,
            )
        self._telemetry_stop = threading.Event()
        self._telemetry_thread: Optional[threading.Thread] = None
        #: The HTTP sidecar (started by :meth:`start` when configured).
        self.health_server: Optional[HealthServer] = None
        #: Bound ``(host, port)`` of the sidecar once it is listening.
        self.http_address: Optional[Tuple[str, int]] = None
        _Handler = Callable[
            [ClientSession, Frame], Optional[Tuple[Dict[str, Any], bytes]]
        ]
        self._handlers: Dict[str, _Handler] = {
            "hello": self._cmd_hello,
            "ping": self._cmd_ping,
            "submit_trace": self._cmd_submit_trace,
            "feed_open": self._cmd_feed_open,
            "feed_append": self._cmd_feed_append,
            "feed_commit": self._cmd_feed_commit,
            "install_filter": self._cmd_install_filter,
            "remove_filter": self._cmd_remove_filter,
            "set_cutoff": self._cmd_set_cutoff,
            "set_priority": self._cmd_set_priority,
            "remove_priority": self._cmd_remove_priority,
            "subscribe": self._cmd_subscribe,
            "unsubscribe": self._cmd_unsubscribe,
            "query": self._cmd_query,
            "bulk_query": self._cmd_bulk_query,
            "stats": self._cmd_stats,
            "spans": self._cmd_spans,
            "telemetry": self._cmd_telemetry,
            "health": self._cmd_health,
            "reload": self._cmd_reload,
            "shutdown": self._cmd_shutdown,
        }

    # ------------------------------------------------------------------
    # Listeners and lifecycle
    # ------------------------------------------------------------------
    def add_unix_listener(self, path: str) -> str:
        """Bind a Unix stream socket at ``path``; returns the path."""
        if os.path.exists(path):
            os.unlink(path)
        sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        sock.bind(path)
        sock.listen(64)
        with self._state_lock:
            self._listeners.append((sock, f"unix:{path}"))
        return path

    def add_tcp_listener(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind a TCP listener; returns (host, actual port)."""
        sock = socket_module.socket(socket_module.AF_INET, socket_module.SOCK_STREAM)
        sock.setsockopt(socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        bound = sock.getsockname()
        with self._state_lock:
            self._listeners.append((sock, f"tcp:{bound[0]}:{bound[1]}"))
        return bound[0], bound[1]

    def start(self) -> None:
        """Start accept threads, the telemetry ticker, and the sidecar."""
        with self._state_lock:
            listeners = list(self._listeners)
            for sock, label in listeners[len(self._accept_threads):]:
                thread = threading.Thread(
                    target=self._accept_loop,
                    args=(sock, label),
                    name=f"scapd-accept-{label}",
                    daemon=True,
                )
                self._accept_threads.append(thread)
                thread.start()
        if self.telemetry is not None and self._telemetry_thread is None:
            self._telemetry_thread = threading.Thread(
                target=self._telemetry_loop,
                name="scapd-telemetry",
                daemon=True,
            )
            self._telemetry_thread.start()
        if self.config.http_host is not None and self.health_server is None:
            self.health_server = HealthServer(
                self._obs.registry,
                self.telemetry,
                self.health_structural,
                host=self.config.http_host,
                port=self.config.http_port,
            )
            self.http_address = self.health_server.start()

    # ------------------------------------------------------------------
    # Telemetry ticker and health surface
    # ------------------------------------------------------------------
    def _telemetry_loop(self) -> None:
        """Wall-clock ticker: one ring sample per configured cadence."""
        while not self._telemetry_stop.wait(self.config.telemetry_cadence):
            self.sample_telemetry(time.monotonic())

    def sample_telemetry(self, now: float):
        """Refresh derived queue gauges, then snapshot the registry.

        ``now`` is injected (the ticker passes ``time.monotonic()``),
        matching the observability layer's clock discipline.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return None
        with self._state_lock:
            sessions = list(self._sessions.values())
        queued = 0
        saturation = 0.0
        for session in sessions:
            depth = session.queue_depth()
            queued += depth
            limit = session.quotas.max_queued_events
            if limit > 0:
                saturation = max(saturation, depth / limit)
        if self._obs.enabled:
            self._m_queued_events.set(queued)
            self._m_queue_saturation.set(saturation)
            self._m_telemetry_samples.inc()
        return telemetry.sample(now)

    def health_structural(self) -> Dict[str, object]:
        """Non-rate facts the health verdict folds in.

        Ledger balance is judged over *retired* sessions only: a live
        session's counters move between reads, so a mid-soak scrape
        must not flap on transient enqueue/deliver races.
        """
        with self._state_lock:
            closing = self._closing
            reloading = self._reloading
        started = bool(self._accept_threads)
        return {
            "ledgers_balanced": self.ledgers_balanced(),
            "ready": started and not closing and not reloading,
        }

    def health_report(self) -> HealthReport:
        """Evaluate the default rule set right now (command + sidecar)."""
        if self.health_server is not None:
            return self.health_server.report()
        return evaluate_health(
            self.telemetry, DEFAULT_HEALTH_RULES, self.health_structural()
        )

    def serve_forever(self, poll_seconds: float = 0.2) -> None:
        """Blocking serve loop; returns once :meth:`shutdown` ran."""
        import time as _time

        self.start()
        while True:
            with self._state_lock:
                if self._closing:
                    return
            _time.sleep(poll_seconds)

    def _accept_loop(self, listener: socket_module.socket, label: str) -> None:
        listener.settimeout(0.2)
        while True:
            with self._state_lock:
                if self._closing:
                    break
                refusing = self._reloading
            try:
                conn, _addr = listener.accept()
            except socket_module.timeout:
                continue
            except OSError:
                break
            if refusing:
                conn.close()
                continue
            self._register_client(conn, label)

    def _register_client(self, conn: socket_module.socket, label: str) -> None:
        with self._state_lock:
            if self._closing:
                conn.close()
                return
            client_id = self._next_client_id
            self._next_client_id += 1
            session = ClientSession(
                client_id,
                conn,
                self.config.quotas,
                peer=label,
                on_send=self._note_sent_bytes,
            )
            session.authenticated = self.config.auth_tokens is None
            self._sessions[client_id] = session
            if self._obs.enabled:
                self._m_connections.inc()
                self._m_active.set(len(self._sessions))
            thread = threading.Thread(
                target=self._serve_client,
                args=(session,),
                name=f"scapd-client-{client_id}",
                daemon=True,
            )
            self._handler_threads.append(thread)
        if self.fault_injector is not None:
            session.delivery_stall = self._client_stall
        session.on_delivered = self._note_delivered
        session.on_dropped = self._note_dropped
        session.start_sender()
        thread.start()

    def _note_sent_bytes(self, nbytes: int) -> None:
        if self._obs.enabled:
            self._m_bytes_sent.inc(nbytes)

    def _note_delivered(self, count: int) -> None:
        if self._obs.enabled:
            self._m_delivered.inc(count)

    def _note_dropped(self, count: int) -> None:
        if self._obs.enabled:
            self._m_dropped.inc(count)

    # ------------------------------------------------------------------
    # Client-plane fault injection (draws serialized by _fault_lock)
    # ------------------------------------------------------------------
    def _client_stall(self) -> float:
        injector = self.fault_injector
        if injector is None:
            return 0.0
        with self._fault_lock:
            return injector.client_slow(self._sim_now)

    def _client_garbage(self) -> bool:
        injector = self.fault_injector
        if injector is None:
            return False
        with self._fault_lock:
            return injector.client_garbage(self._sim_now)

    def _client_disconnect(self) -> bool:
        injector = self.fault_injector
        if injector is None:
            return False
        with self._fault_lock:
            return injector.client_disconnect(self._sim_now)

    # ------------------------------------------------------------------
    # Per-connection reader loop
    # ------------------------------------------------------------------
    def _serve_client(self, session: ClientSession) -> None:
        reader = FrameReader(max_frame_bytes=self.config.max_frame_bytes)
        consecutive_rejections = 0
        session.sock.settimeout(0.2)
        try:
            while True:
                with self._state_lock:
                    if self._closing:
                        break
                try:
                    data = session.sock.recv(65536)
                except socket_module.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                if self._obs.enabled:
                    self._m_bytes_received.inc(len(data))
                session.note_received(len(data))
                for item in reader.feed(data):
                    if isinstance(item, FrameRejection):
                        consecutive_rejections += 1
                        self._reject_frame(session, item)
                    else:
                        consecutive_rejections = 0
                        if item.msg_type != MSG_REQUEST:
                            self._send_error(
                                session, item.request_id, ERR_BAD_REQUEST,
                                f"unexpected {item.msg_type} frame from a client",
                            )
                            continue
                        if self._client_garbage():
                            # Fault plane: pretend the wire mangled this
                            # frame; the daemon must answer with a typed
                            # error and keep the connection alive.
                            consecutive_rejections += 1
                            self._reject_frame(
                                session,
                                FrameRejection(
                                    "bad_frame", "injected garbage frame", 0,
                                    category=REJECT_INJECTED,
                                ),
                                request_id=item.request_id,
                            )
                            continue
                        self._dispatch(session, item)
                if consecutive_rejections >= MAX_CONSECUTIVE_REJECTIONS:
                    break
        finally:
            self._retire_client(session)

    def _reject_frame(
        self, session: ClientSession, rejection: FrameRejection, request_id: int = 0
    ) -> None:
        session.note_rejection()
        if self._obs.enabled:
            self._m_rejected.labels(rejection.reason).inc()
            self._m_bad_frames.labels(rejection.category).inc()
        self._send_error(
            session,
            request_id,
            rejection.reason,
            rejection.detail or "malformed frame",
        )

    def _send_error(
        self, session: ClientSession, request_id: int, code: str, message: str
    ) -> None:
        session.note_error()
        if self._obs.enabled:
            self._m_errors.labels(code).inc()
        session.send_bytes(
            encode_frame(
                MSG_ERROR, request_id, {"code": code, "message": message}
            )
        )

    def _dispatch(self, session: ClientSession, frame: Frame) -> None:
        command = frame.command
        session.note_request()
        if self._obs.enabled:
            self._m_requests.labels(command or "?").inc()
            self._obs.trace.emit(
                self._sim_now,
                HOOK_SERVICE_REQUEST,
                client=session.client_id,
                command=command,
            )
        tracer = self._spans
        if tracer is None:
            self._dispatch_inner(session, frame, command, None)
            return
        # Adopt the caller's trace context (protocol minor 1) when the
        # frame carries one; otherwise this dispatch roots a new trace.
        context = frame.header.get("trace")
        trace_id = parent_id = None
        if isinstance(context, dict):
            raw_trace = context.get("id")
            raw_parent = context.get("span")
            trace_id = str(raw_trace) if raw_trace is not None else None
            parent_id = str(raw_parent) if raw_parent is not None else None
        span = tracer.start_span(
            f"daemon:{command or '?'}",
            kind=KIND_SERVER,
            trace_id=trace_id,
            parent_id=parent_id,
            command=command or "?",
            client=session.client_id,
        )
        status = ERR_INTERNAL
        try:
            status = self._dispatch_inner(session, frame, command, span)
        finally:
            record = span.end(status=status)
            if self._obs.enabled:
                label = command if command in self._handlers else "?"
                self._m_command_seconds.labels(label).observe(record.duration)

    def _dispatch_inner(
        self,
        session: ClientSession,
        frame: Frame,
        command: str,
        span: Optional[Span],
    ) -> str:
        """Route one request; returns the outcome ("ok" or an ERR code)."""
        with self._state_lock:
            draining = self._closing or self._reloading
        if draining and command not in ("stats", "ping"):
            self._send_error(
                session, frame.request_id, ERR_SHUTTING_DOWN,
                "daemon is shutting down or reloading",
            )
            return ERR_SHUTTING_DOWN
        handler = self._handlers.get(command)
        if handler is None:
            self._send_error(
                session, frame.request_id, ERR_UNKNOWN_COMMAND,
                f"unknown command {command!r}",
            )
            return ERR_UNKNOWN_COMMAND
        if not session.authenticated and command != "hello":
            self._send_error(
                session, frame.request_id, ERR_UNAUTHORIZED,
                "authenticate with hello first",
            )
            return ERR_UNAUTHORIZED
        handler_span = None
        tracer = self._spans
        if tracer is not None and span is not None:
            handler_span = tracer.start_span(
                f"handler:{command}",
                kind=KIND_INTERNAL,
                trace_id=span.trace_id,
                parent_id=span.span_id,
            )
            # Handlers run on this session's reader thread only, so the
            # active span can ride the session without a lock; store
            # and capture paths parent their child spans under it.
            session.active_span = handler_span
        status = "ok"
        try:
            result = handler(session, frame)
        except ServiceError as exc:
            self._send_error(session, frame.request_id, exc.code, exc.message)
            status = exc.code
            return status
        except (KeyError, ValueError, TypeError) as exc:
            self._send_error(
                session, frame.request_id, ERR_BAD_REQUEST,
                f"{type(exc).__name__}: {exc}",
            )
            status = ERR_BAD_REQUEST
            return status
        except Exception as exc:  # noqa: BLE001 — the daemon must survive
            self._send_error(
                session, frame.request_id, ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
            status = ERR_INTERNAL
            return status
        finally:
            if handler_span is not None:
                session.active_span = None
                handler_span.end(status=status)
        if result is None:
            return status  # the handler already answered (e.g. shutdown)
        header, payload = result
        session.send_bytes(
            encode_frame(MSG_RESPONSE, frame.request_id, header, payload)
        )
        return status

    def _retire_client(self, session: ClientSession) -> None:
        session.begin_close()
        session.drain(timeout=2.0)
        try:
            session.sock.close()
        except OSError:
            pass
        with self._state_lock:
            self._sessions.pop(session.client_id, None)
            self.final_ledgers[session.client_id] = session.describe()
            if self._obs.enabled:
                self._m_active.set(len(self._sessions))

    # ------------------------------------------------------------------
    # Command handlers (return (header, payload) or raise ServiceError)
    # ------------------------------------------------------------------
    def _cmd_hello(self, session: ClientSession, frame: Frame):
        tokens = self.config.auth_tokens
        token = frame.header.get("token")
        if tokens is not None and token not in tokens:
            raise ServiceError(ERR_UNAUTHORIZED, "bad auth token")
        session.authenticated = True
        name = frame.header.get("name")
        if isinstance(name, str) and name:
            session.name = name[:64]
        from .. import __version__

        return (
            {
                "client_id": session.client_id,
                "server_version": __version__,
                "protocol_version": frame.version,
                "protocol_minor": PROTOCOL_MINOR,
                "auth": tokens is not None,
            },
            b"",
        )

    def _cmd_ping(self, session: ClientSession, frame: Frame):
        return ({"pong": True, "echo": frame.header.get("echo")}, b"")

    # -- capture ---------------------------------------------------------
    def _trace_from_request(self, header: Dict[str, Any], payload: bytes) -> Trace:
        kind = header.get("kind", "pcap")
        if kind == "campus":
            return campus_mix(
                flow_count=int(header.get("flows", 100)),
                seed=int(header.get("seed", 7)),
                max_flow_bytes=int(header.get("max_flow_bytes", 200_000)),
            )
        if kind == "pcap":
            if not payload:
                raise ServiceError(ERR_BAD_REQUEST, "pcap submission has no payload")
            return _trace_from_pcap_bytes(payload, name=str(header.get("name", "remote")))
        raise ServiceError(ERR_BAD_REQUEST, f"unknown trace kind {kind!r}")

    def _cmd_submit_trace(self, session: ClientSession, frame: Frame):
        trace = self._trace_from_request(frame.header, frame.payload)
        rate_bps = float(frame.header.get("rate_bps", GBIT))
        name = str(frame.header.get("name", f"remote-{session.client_id}"))
        summary = self._run_capture(session, trace, rate_bps, name)
        return ({"result": summary}, b"")

    def _cmd_feed_open(self, session: ClientSession, frame: Frame):
        return ({"feed_id": session.open_feed()}, b"")

    def _cmd_feed_append(self, session: ClientSession, frame: Frame):
        feed_id = int(frame.header["feed_id"])
        try:
            accepted = session.append_feed(feed_id, frame.payload)
        except KeyError:
            raise ServiceError(ERR_BAD_REQUEST, f"unknown feed {feed_id}") from None
        if not accepted:
            raise ServiceError(
                ERR_QUOTA,
                f"feed exceeds max_feed_bytes={session.quotas.max_feed_bytes}",
            )
        return ({"feed_id": feed_id, "ok": True}, b"")

    def _cmd_feed_commit(self, session: ClientSession, frame: Frame):
        feed_id = int(frame.header["feed_id"])
        try:
            payload = session.close_feed(feed_id)
        except KeyError:
            raise ServiceError(ERR_BAD_REQUEST, f"unknown feed {feed_id}") from None
        trace = _trace_from_pcap_bytes(
            payload, name=str(frame.header.get("name", f"feed-{feed_id}"))
        )
        rate_bps = float(frame.header.get("rate_bps", GBIT))
        summary = self._run_capture(
            session, trace, rate_bps, str(frame.header.get("name", f"feed-{feed_id}"))
        )
        return ({"result": summary}, b"")

    def _run_capture(
        self, session: ClientSession, trace: Trace, rate_bps: float, name: str
    ) -> Dict[str, Any]:
        """Replay ``trace`` through the pipeline under the daemon config."""
        with self._config_lock:
            filters = list(self._filters.values())
            cutoff = self._cutoff
            priorities = [
                (BPFFilter(expression), priority)
                for expression, priority in self._priorities.values()
            ]
        with self._capture_lock:
            if self.store is not None:
                # This thread drives every store touch until the lock
                # is released — declare the ownership handoff so
                # SCAP_RACE knows serialized captures are not a race.
                self.store.adopt_obs_owner()
            capture_number = self._captures
            scap = ScapSocket(
                trace,
                rate_bps=rate_bps,
                memory_size=self.config.memory_size,
                core_count=self.config.core_count,
            )
            if filters:
                scap.set_filter(" or ".join(f"({f})" for f in filters))
            if cutoff is not None:
                scap.set_cutoff(cutoff)
            recorder = None
            if self.store is not None:
                from ..apps.recorder import StreamRecorder

                recorder = StreamRecorder(self.store)
                scap.set_store(recorder)

            def on_creation(stream) -> None:
                for bpf, priority in priorities:
                    if bpf.matches_five_tuple(stream.five_tuple):
                        scap.set_stream_priority(stream, priority)
                        break
                self._fanout(
                    session, "created", stream, capture_number, payload=b""
                )

            def on_data(stream) -> None:
                self._fanout(
                    session, "data", stream, capture_number,
                    payload=bytes(stream.data),
                )

            def on_termination(stream) -> None:
                self._fanout(
                    session, "closed", stream, capture_number, payload=b""
                )

            scap.dispatch_creation(on_creation)
            scap.dispatch_data(on_data)
            scap.dispatch_termination(on_termination)
            capture_span = None
            tracer = self._spans
            parent = session.active_span
            if tracer is not None and parent is not None:
                capture_span = tracer.start_span(
                    "capture:run",
                    kind=KIND_INTERNAL,
                    trace_id=parent.trace_id,
                    parent_id=parent.span_id,
                    capture=name,
                )
            result = scap.start_capture(name=name)
            if capture_span is not None:
                capture_span.annotate(
                    offered_packets=result.offered_packets,
                    dropped_packets=result.dropped_packets,
                )
                capture_span.end()
            if self.store is not None:
                self.store.flush()
            with self._state_lock:
                self._captures += 1
                self._sim_now = max(self._sim_now, result.duration)
            if self._obs.enabled:
                self._m_captures.inc()
                if result.dropped_packets:
                    self._m_capture_dropped.inc(result.dropped_packets)
            return {
                "name": name,
                "capture": capture_number,
                "duration": result.duration,
                "offered_packets": result.offered_packets,
                "offered_bytes": result.offered_bytes,
                "dropped_packets": result.dropped_packets,
                "discarded_packets": result.discarded_packets,
                "delivered_bytes": result.delivered_bytes,
                "delivered_events": result.delivered_events,
                "streams_created": result.streams_created,
            }

    def _fanout(
        self,
        submitting: ClientSession,
        kind: str,
        stream,
        capture_number: int,
        payload: bytes,
    ) -> None:
        """Push one stream event to every matching subscription."""
        header = {
            "event": kind,
            "capture": capture_number,
            "flow": list(stream.five_tuple),
            "direction": stream.direction,
            "stream_id": stream.stream_id,
            "offset": stream.data_offset if kind == "data" else 0,
            "len": len(payload),
        }
        with self._state_lock:
            sessions = list(self._sessions.values())
        for receiver in sessions:
            for subscription in receiver.live_subscriptions():
                if not subscription.wants(kind):
                    continue
                bpf = getattr(subscription, "bpf", None)
                if bpf is not None and not bpf.matches_five_tuple(stream.five_tuple):
                    continue
                enqueued, dropped = receiver.enqueue_event(
                    subscription, header, payload if kind == "data" else b""
                )
                if self._obs.enabled:
                    if enqueued:
                        self._m_enqueued.inc(enqueued)
                    if dropped:
                        self._obs.trace.emit(
                            self._sim_now,
                            HOOK_SERVICE_EVENT_DROPPED,
                            client=receiver.client_id,
                            sub=subscription.subscription_id,
                        )
                if enqueued and self._client_disconnect():
                    # Fault plane: sever this receiver mid-subscription.
                    self._force_disconnect(receiver)
                    break
        self._enforce_global_budget()
        self._enforce_evictions()

    def _force_disconnect(self, session: ClientSession) -> None:
        try:
            session.sock.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass

    def _enforce_global_budget(self) -> None:
        budget = self.config.global_event_budget
        if budget is None:
            return
        while True:
            with self._state_lock:
                sessions = list(self._sessions.values())
            depths = [(s.queue_depth(), s) for s in sessions]
            total = sum(depth for depth, _ in depths)
            if total <= budget or not depths:
                return
            # Evict from the slowest client (deepest queue), oldest
            # event first — the PPL lowest-priority-oldest discipline.
            depths.sort(key=lambda pair: pair[0], reverse=True)
            slowest = depths[0][1]
            if slowest.drop_oldest(total - budget) == 0:
                return

    def _enforce_evictions(self) -> None:
        limit = self.config.quotas.eviction_drop_limit
        if limit is None:
            return
        with self._state_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            if session.mark_evicted(limit):
                if self._obs.enabled:
                    self._m_evictions.inc()
                    self._obs.trace.emit(
                        self._sim_now,
                        HOOK_SERVICE_CLIENT_EVICTED,
                        client=session.client_id,
                        dropped=session.ledger.dropped,
                    )
                self._force_disconnect(session)

    # -- runtime config --------------------------------------------------
    def _cmd_install_filter(self, session: ClientSession, frame: Frame):
        expression = str(frame.header.get("expression", ""))
        if not expression:
            raise ServiceError(ERR_BAD_REQUEST, "install_filter needs an expression")
        BPFFilter(expression)  # validate before accepting
        with self._config_lock:
            filter_id = self._next_filter_id
            self._next_filter_id += 1
            self._filters[filter_id] = expression
        return ({"filter_id": filter_id, "expression": expression}, b"")

    def _cmd_remove_filter(self, session: ClientSession, frame: Frame):
        filter_id = int(frame.header["filter_id"])
        with self._config_lock:
            removed = self._filters.pop(filter_id, None)
        if removed is None:
            raise ServiceError(ERR_BAD_REQUEST, f"unknown filter {filter_id}")
        return ({"filter_id": filter_id, "removed": True}, b"")

    def _cmd_set_cutoff(self, session: ClientSession, frame: Frame):
        cutoff = frame.header.get("cutoff")
        with self._config_lock:
            self._cutoff = None if cutoff is None else int(cutoff)
        return ({"cutoff": self._cutoff}, b"")

    def _cmd_set_priority(self, session: ClientSession, frame: Frame):
        expression = str(frame.header.get("expression", ""))
        priority = int(frame.header.get("priority", 0))
        if priority < 0:
            raise ServiceError(ERR_BAD_REQUEST, "priority must be non-negative")
        BPFFilter(expression)  # validate before accepting
        with self._config_lock:
            priority_id = self._next_priority_id
            self._next_priority_id += 1
            self._priorities[priority_id] = (expression, priority)
        return ({"priority_id": priority_id, "priority": priority}, b"")

    def _cmd_remove_priority(self, session: ClientSession, frame: Frame):
        priority_id = int(frame.header["priority_id"])
        with self._config_lock:
            removed = self._priorities.pop(priority_id, None)
        if removed is None:
            raise ServiceError(ERR_BAD_REQUEST, f"unknown priority {priority_id}")
        return ({"priority_id": priority_id, "removed": True}, b"")

    # -- subscriptions ---------------------------------------------------
    def _cmd_subscribe(self, session: ClientSession, frame: Frame):
        kinds = frame.header.get("events") or list(EVENT_KINDS)
        if not isinstance(kinds, list) or not kinds:
            raise ServiceError(ERR_BAD_REQUEST, "events must be a non-empty list")
        unknown = [kind for kind in kinds if kind not in EVENT_KINDS]
        if unknown:
            raise ServiceError(
                ERR_BAD_REQUEST,
                f"unknown event kinds {unknown}; valid: {list(EVENT_KINDS)}",
            )
        expression = str(frame.header.get("filter", ""))
        bpf = BPFFilter(expression) if expression else None
        subscription = session.add_subscription(tuple(kinds), expression)
        if subscription is None:
            raise ServiceError(
                ERR_QUOTA,
                f"subscription quota reached "
                f"(max_subscriptions={session.quotas.max_subscriptions})",
            )
        subscription.bpf = bpf
        return (
            {"subscription_id": subscription.subscription_id, "events": kinds},
            b"",
        )

    def _cmd_unsubscribe(self, session: ClientSession, frame: Frame):
        subscription_id = int(frame.header["subscription_id"])
        if not session.remove_subscription(subscription_id):
            raise ServiceError(
                ERR_BAD_REQUEST, f"unknown subscription {subscription_id}"
            )
        return ({"subscription_id": subscription_id, "removed": True}, b"")

    # -- store queries ---------------------------------------------------
    def _require_store(self):
        if self.store is None:
            raise ServiceError(
                ERR_BAD_REQUEST, "daemon was started without a stream store"
            )
        return self.store

    def _one_query(
        self, spec: Dict[str, Any], parent: Optional[Span] = None
    ) -> Tuple[Dict[str, Any], bytes]:
        store = self._require_store()
        query_span = None
        tracer = self._spans
        if tracer is not None and parent is not None:
            query_span = tracer.start_span(
                "store:query",
                kind=KIND_STORE,
                trace_id=parent.trace_id,
                parent_id=parent.span_id,
            )
        try:
            flow = spec.get("flow")
            five_tuple = FiveTuple(*flow) if flow is not None else None
            result = store.query(
                five_tuple,
                start_ts=spec.get("start"),
                end_ts=spec.get("end"),
            )
            streams = []
            chunks = []
            for stream in result.streams:
                streams.append(
                    {
                        "flow": list(stream.client_tuple),
                        "direction": stream.direction,
                        "len": len(stream.data),
                        "first_ts": stream.first_ts,
                        "last_ts": stream.last_ts,
                        "base_offset": stream.base_offset,
                        "gap_bytes": stream.gap_bytes,
                    }
                )
                chunks.append(stream.data)
            if query_span is not None:
                query_span.annotate(
                    streams=len(streams), bytes=result.total_bytes
                )
            return (
                {"streams": streams, "total_bytes": result.total_bytes},
                b"".join(chunks),
            )
        finally:
            if query_span is not None:
                query_span.end()

    def _cmd_query(self, session: ClientSession, frame: Frame):
        store = self._require_store()
        # Flush mutates the writer's metric counters, which captures
        # own under _capture_lock — the query path must take the same
        # lock (flushing mid-capture would also race the enqueues).
        with self._capture_lock:
            store.adopt_obs_owner()
            store.flush()  # make everything recorded so far queryable
        header, payload = self._one_query(frame.header, parent=session.active_span)
        return (header, payload)

    def _cmd_bulk_query(self, session: ClientSession, frame: Frame):
        store = self._require_store()
        queries = frame.header.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ServiceError(ERR_BAD_REQUEST, "queries must be a non-empty list")
        with self._capture_lock:  # same discipline as _cmd_query
            store.adopt_obs_owner()
            store.flush()
        results = []
        chunks = []
        for spec in queries:
            header, payload = self._one_query(spec, parent=session.active_span)
            results.append(header)
            chunks.append(payload)
        return ({"results": results}, b"".join(chunks))

    # -- introspection and control --------------------------------------
    def _cmd_stats(self, session: ClientSession, frame: Frame):
        with self._state_lock:
            sessions = list(self._sessions.values())
            captures = self._captures
            closing = self._closing
        store_stats = None
        if self.store is not None:
            stats = self.store.stats()
            store_stats = {
                "stored_bytes": stats.stored_bytes,
                "record_count": stats.record_count,
                "segment_count": stats.segment_count,
                "evicted_bytes": stats.evicted_bytes,
            }
        faults = None
        if self.fault_injector is not None:
            with self._fault_lock:
                faults = {
                    "total": self.fault_injector.total_injected,
                    "counts": self.fault_injector.counts_by_key(),
                }
        return (
            {
                "server": {
                    "captures": captures,
                    "active_clients": len(sessions),
                    "closing": closing,
                    "sim_now": self._sim_now,
                },
                "clients": [s.describe() for s in sessions],
                "store": store_stats,
                "faults": faults,
            },
            b"",
        )

    def _cmd_spans(self, session: ClientSession, frame: Frame):
        """Retained span records — all, one trace, or the slowest N traces."""
        records = span_records(self._obs.trace.events())
        reconstructor = SpanTreeReconstructor(records)
        trace_id = frame.header.get("trace_id")
        slowest = frame.header.get("slowest")
        if trace_id is not None:
            records = reconstructor.records(str(trace_id))
        elif slowest is not None:
            wanted = {pair[0] for pair in reconstructor.slowest(int(slowest))}
            records = [r for r in reconstructor.records() if r.trace_id in wanted]
        else:
            records = reconstructor.records()
        limit = frame.header.get("limit")
        if limit is not None:
            records = records[-int(limit):]
        return (
            {
                "spans": [record.as_fields() for record in records],
                "tracing": self._spans is not None,
            },
            b"",
        )

    def _cmd_telemetry(self, session: ClientSession, frame: Frame):
        """The telemetry ring's history (optionally forcing a sample)."""
        telemetry = self.telemetry
        if telemetry is None:
            return (
                {"telemetry": {"enabled": False, "cadence": None, "samples": []}},
                b"",
            )
        if frame.header.get("sample"):
            self.sample_telemetry(time.monotonic())
        payload = telemetry.as_dict()
        payload["enabled"] = True
        return ({"telemetry": payload}, b"")

    def _cmd_health(self, session: ClientSession, frame: Frame):
        """The health verdict, same shape the sidecar's /healthz serves."""
        return ({"health": self.health_report().as_dict()}, b"")

    def _cmd_reload(self, session: ClientSession, frame: Frame):
        if not self.config.allow_control:
            raise ServiceError(ERR_UNAUTHORIZED, "control commands are disabled")
        report = self.reload()
        return ({"reloaded": True, **report}, b"")

    def _cmd_shutdown(self, session: ClientSession, frame: Frame):
        if not self.config.allow_control:
            raise ServiceError(ERR_UNAUTHORIZED, "control commands are disabled")
        # Answer first — synchronously, before the teardown thread can
        # close this connection — then shut down from a helper thread so
        # this handler's connection drains like everyone else's.
        session.send_bytes(
            encode_frame(MSG_RESPONSE, frame.request_id, {"shutting_down": True})
        )
        threading.Thread(target=self.shutdown, name="scapd-shutdown", daemon=True).start()
        return None

    # ------------------------------------------------------------------
    # Lifecycle: reload and graceful shutdown
    # ------------------------------------------------------------------
    def reload(self) -> Dict[str, Any]:
        """Drain queues and seal store segments; keep connections open."""
        with self._state_lock:
            if self._reloading or self._closing:
                return {"sealed_segments": 0, "drained_clients": 0}
            self._reloading = True
        try:
            with self._state_lock:
                sessions = list(self._sessions.values())
            drained = 0
            for session in sessions:
                if session.flush(timeout=5.0):
                    drained += 1
            sealed = 0
            if self.store is not None:
                before = self.store.stats().segments_sealed
                with self._capture_lock:
                    self.store.adopt_obs_owner()
                    self.store.flush()
                sealed = self.store.stats().segments_sealed - before
            return {"sealed_segments": sealed, "drained_clients": drained}
        finally:
            with self._state_lock:
                self._reloading = False

    def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Graceful stop: refuse new work, drain clients, seal the store."""
        with self._state_lock:
            if self._closing:
                already = True
            else:
                already = False
                self._closing = True
                listeners = list(self._listeners)
                self._listeners.clear()
        if already:
            # Another caller (e.g. a remote `shutdown` command) is already
            # tearing down; wait for it so shutdown() is idempotent AND
            # blocking for every caller.
            self._shutdown_done.wait(timeout=max(drain_timeout, 5.0) + 10.0)
            return
        for sock, label in listeners:
            try:
                sock.close()
            except OSError:
                pass
            if label.startswith("unix:"):
                try:
                    os.unlink(label[len("unix:"):])
                except OSError:
                    pass
        # Wait out any in-flight capture before sealing the store.
        with self._capture_lock:
            pass
        with self._state_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.begin_close()
        for session in sessions:
            session.drain(timeout=drain_timeout)
            try:
                session.sock.close()
            except OSError:
                pass
        for thread in list(self._accept_threads):
            thread.join(timeout=2.0)
        for thread in list(self._handler_threads):
            thread.join(timeout=2.0)
        self._telemetry_stop.set()
        if self._telemetry_thread is not None:
            self._telemetry_thread.join(timeout=2.0)
            self._telemetry_thread = None
        if self.health_server is not None:
            self.health_server.stop()
            self.health_server = None
        with self._state_lock:
            for session in sessions:
                self.final_ledgers.setdefault(session.client_id, session.describe())
            remaining = list(self._sessions.keys())
            for client_id in remaining:
                self._sessions.pop(client_id, None)
            if self._obs.enabled:
                self._m_active.set(0)
        if self.store is not None:
            # close() seals segments (metric emission) — serialize with
            # any capture still in flight, and adopt the owner role.
            with self._capture_lock:
                self.store.adopt_obs_owner()
                self.store.close()
        self._shutdown_done.set()

    # ------------------------------------------------------------------
    def ledgers_balanced(self) -> bool:
        """True when every retired client's ledger reconciles."""
        with self._state_lock:
            ledgers = list(self.final_ledgers.values())
        for entry in ledgers:
            ledger = entry["ledger"]
            if ledger["enqueued"] != ledger["delivered"] + ledger["dropped"]:
                return False
        return True


def _trace_from_pcap_bytes(payload: bytes, name: str = "remote") -> Trace:
    """Materialize a Trace from pcap bytes shipped inside one frame."""
    handle = tempfile.NamedTemporaryFile(suffix=".pcap", delete=False)
    try:
        handle.write(payload)
        handle.close()
        packets = read_pcap(handle.name)
    finally:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
    return Trace(packets, name=name)


def trace_to_pcap_bytes(trace: Trace) -> bytes:
    """Serialize a Trace's packets to pcap bytes (the submission form)."""
    handle = tempfile.NamedTemporaryFile(suffix=".pcap", delete=False)
    try:
        handle.close()
        write_pcap(handle.name, trace.packets)
        with open(handle.name, "rb") as reader:
            return reader.read()
    finally:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
