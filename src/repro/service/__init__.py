"""Service mode: the capture daemon and its remote client API.

The paper's deployment model puts the Stream abstraction behind a
shared kernel-module boundary; this package is the reproduction's
equivalent — a long-running :class:`ScapDaemon` that owns the capture
pipeline and stream store, and a :class:`ScapClient` that drives it
remotely over Unix/TCP sockets with the length-framed protocol of
:mod:`repro.service.protocol`.  See ``docs/SERVICE.md`` for the wire
format, message catalog, quota semantics, and failure modes.
"""

from .client import CallTimeout, EventStream, RemoteCallError, ScapClient
from .daemon import DaemonConfig, ScapDaemon, trace_to_pcap_bytes
from .protocol import (
    COMMAND_CODE_MAP,
    ERROR_CODES,
    IDEMPOTENT_COMMANDS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    FrameReader,
    FrameRejection,
    ProtocolError,
    ServiceError,
    decode_frame_body,
    encode_frame,
)
from .session import ClientQuotas, ClientSession, SessionLedger, Subscription

__all__ = [
    "ScapDaemon",
    "DaemonConfig",
    "ScapClient",
    "EventStream",
    "RemoteCallError",
    "CallTimeout",
    "ClientQuotas",
    "ClientSession",
    "SessionLedger",
    "Subscription",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "COMMAND_CODE_MAP",
    "IDEMPOTENT_COMMANDS",
    "ERROR_CODES",
    "Frame",
    "FrameReader",
    "FrameRejection",
    "ProtocolError",
    "ServiceError",
    "encode_frame",
    "decode_frame_body",
    "trace_to_pcap_bytes",
]
