"""Health/SLO surface: declarative rules plus an HTTP sidecar.

StreaMon's argument (PAPERS.md) is that continuously-evaluated
conditions over monitoring state should become actionable signals.
Here the state is the daemon's :class:`TelemetryRing` — cadenced
registry snapshots with derived rates — and the signals are three
endpoints a load balancer or operator can scrape:

* ``/metrics`` — the Prometheus text exposition, produced by the very
  same :func:`~repro.observability.exporters.to_prometheus` call that
  backs ``ScapSocket.export_metrics``, so a scrape is byte-identical
  to the in-process export of the same registry;
* ``/healthz`` — a JSON verdict (``healthy`` / ``degraded`` /
  ``unhealthy``) with per-rule reasons; HTTP 200 unless unhealthy;
* ``/readyz`` — lifecycle readiness (started and not shutting down).

Health is **declarative**: each :class:`HealthRule` names a metric
family, whether it is judged by per-second *rate* (counters) or latest
*value* (gauges), and the thresholds at which it degrades or fails.
Structural facts that are not rates — session-ledger imbalance — are
injected by the daemon and fail the verdict outright.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from ..observability.exporters import to_prometheus
from ..observability.telemetry import TelemetryRing

__all__ = [
    "VERDICT_HEALTHY",
    "VERDICT_DEGRADED",
    "VERDICT_UNHEALTHY",
    "HealthRule",
    "DEFAULT_HEALTH_RULES",
    "HealthReport",
    "evaluate_health",
    "HealthServer",
]

VERDICT_HEALTHY = "healthy"
VERDICT_DEGRADED = "degraded"
VERDICT_UNHEALTHY = "unhealthy"

MODE_RATE = "rate"
MODE_VALUE = "value"


@dataclass(frozen=True)
class HealthRule:
    """One continuously-evaluated condition over the telemetry ring."""

    name: str
    family: str
    mode: str                      # MODE_RATE (per second) or MODE_VALUE
    degraded_above: float
    unhealthy_above: float
    reason: str

    def evaluate(self, ring: TelemetryRing) -> Tuple[str, Optional[float]]:
        """``(verdict, observed)``; healthy with None when unjudgeable."""
        if self.mode == MODE_RATE:
            observed = ring.rate(self.family)
            if observed is None:
                return VERDICT_HEALTHY, None  # no interval yet
        else:
            observed = ring.gauge_value(self.family)
        if observed > self.unhealthy_above:
            return VERDICT_UNHEALTHY, observed
        if observed > self.degraded_above:
            return VERDICT_DEGRADED, observed
        return VERDICT_HEALTHY, observed


#: Default rule set.  Thresholds are deliberately loose: the soak in CI
#: provokes malformed frames and bounded event drops on purpose, and a
#: healthy daemon must stay healthy under that self-inflicted load —
#: these rules catch *sustained* pathologies, not test traffic.
DEFAULT_HEALTH_RULES: Tuple[HealthRule, ...] = (
    HealthRule(
        name="capture_drop_rate",
        family="scap_service_capture_dropped_packets_total",
        mode=MODE_RATE,
        degraded_above=1_000.0,
        unhealthy_above=100_000.0,
        reason="captures are dropping packets unintentionally",
    ),
    HealthRule(
        name="writer_queue_drops",
        family="scap_store_dropped_bytes_total",
        mode=MODE_RATE,
        degraded_above=1.0,
        unhealthy_above=64 << 20,
        reason="store writer queue is shedding bytes",
    ),
    HealthRule(
        name="event_drop_rate",
        family="scap_service_events_dropped_total",
        mode=MODE_RATE,
        degraded_above=500.0,
        unhealthy_above=50_000.0,
        reason="subscription backpressure is dropping events",
    ),
    HealthRule(
        name="bad_frame_rate",
        family="scap_service_bad_frames_total",
        mode=MODE_RATE,
        degraded_above=100.0,
        unhealthy_above=10_000.0,
        reason="peers are sending malformed frames",
    ),
    HealthRule(
        name="event_queue_saturation",
        family="scap_service_queue_saturation",
        mode=MODE_VALUE,
        degraded_above=0.8,
        unhealthy_above=0.99,
        reason="a client's event queue is nearly full",
    ),
)


@dataclass
class HealthReport:
    """One evaluated verdict with its reasons and per-rule readings."""

    verdict: str
    reasons: List[str]
    checks: Dict[str, Dict[str, object]]
    ready: bool

    def as_dict(self) -> Dict[str, object]:
        """The report as a plain dict (wire/JSON shape)."""
        return {
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "checks": {name: dict(entry) for name, entry in self.checks.items()},
            "ready": self.ready,
        }


_SEVERITY = {VERDICT_HEALTHY: 0, VERDICT_DEGRADED: 1, VERDICT_UNHEALTHY: 2}


def evaluate_health(
    ring: Optional[TelemetryRing],
    rules: Tuple[HealthRule, ...] = DEFAULT_HEALTH_RULES,
    structural: Optional[Dict[str, object]] = None,
) -> HealthReport:
    """Evaluate the rule set (plus structural facts) into one report.

    ``structural`` carries non-rate facts injected by the daemon:
    ``ledgers_balanced`` (False is outright unhealthy — accounting is
    an invariant, not a threshold) and ``ready``.
    """
    structural = structural or {}
    verdict = VERDICT_HEALTHY
    reasons: List[str] = []
    checks: Dict[str, Dict[str, object]] = {}
    if ring is not None:
        for rule in rules:
            rule_verdict, observed = rule.evaluate(ring)
            checks[rule.name] = {
                "verdict": rule_verdict,
                "observed": observed,
                "family": rule.family,
                "mode": rule.mode,
            }
            if _SEVERITY[rule_verdict] > _SEVERITY[verdict]:
                verdict = rule_verdict
            if rule_verdict != VERDICT_HEALTHY:
                reasons.append(f"{rule.name}: {rule.reason} ({observed:.1f})")
    balanced = structural.get("ledgers_balanced")
    checks["ledgers_balanced"] = {
        "verdict": (
            VERDICT_HEALTHY if balanced in (None, True) else VERDICT_UNHEALTHY
        ),
        "observed": balanced,
        "family": "",
        "mode": "invariant",
    }
    if balanced is False:
        verdict = VERDICT_UNHEALTHY
        reasons.append(
            "ledgers_balanced: a session ledger lost events "
            "(enqueued != delivered + dropped + queued)"
        )
    ready = bool(structural.get("ready", True))
    return HealthReport(
        verdict=verdict, reasons=reasons, checks=checks, ready=ready
    )


class HealthServer:
    """The HTTP sidecar: ``/metrics``, ``/healthz``, ``/readyz``.

    A ``ThreadingHTTPServer`` on its own daemon thread; every handler
    is read-only over the registry/ring, so it needs no daemon locks.
    Construct with callables so the sidecar stays decoupled from the
    daemon's internals (and testable against fakes).
    """

    def __init__(
        self,
        registry,
        ring: Optional[TelemetryRing],
        structural,
        host: str = "127.0.0.1",
        port: int = 0,
        rules: Tuple[HealthRule, ...] = DEFAULT_HEALTH_RULES,
    ):
        self.registry = registry
        self.ring = ring
        self._structural = structural  # () -> Dict[str, object]
        self.rules = rules
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def report(self) -> HealthReport:
        """Evaluate health right now (shared by HTTP and the command)."""
        return evaluate_health(self.ring, self.rules, self._structural())

    def start(self) -> Tuple[str, int]:
        """Start serving; returns the bound address."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="scap-health-http",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop the listener and join its thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _make_handler(self):
        sidecar = self

        class Handler(BaseHTTPRequestHandler):
            # Keep scrapes quiet: no per-request stderr lines.
            def log_message(self, *_args) -> None:
                return

            def _reply(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 — http.server contract
                sidecar.requests_served += 1
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = to_prometheus(sidecar.registry).encode("utf-8")
                    self._reply(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        body,
                    )
                elif path == "/healthz":
                    report = sidecar.report()
                    status = 200 if report.verdict != VERDICT_UNHEALTHY else 503
                    body = json.dumps(report.as_dict(), indent=2).encode("utf-8")
                    self._reply(status, "application/json", body)
                elif path == "/readyz":
                    report = sidecar.report()
                    status = 200 if report.ready else 503
                    body = json.dumps({"ready": report.ready}).encode("utf-8")
                    self._reply(status, "application/json", body)
                else:
                    self._reply(404, "text/plain", b"not found\n")

        return Handler
