"""Per-client session state: auth, quotas, subscriptions, event queue.

Each accepted connection gets one :class:`ClientSession`.  The session
owns the connection's outbound half: responses and subscribed events
are serialized through a per-session send lock, and events flow
through a **bounded** queue drained by a dedicated sender thread, so a
slow client backpressures only itself.

Quota semantics (:class:`ClientQuotas`):

* ``max_subscriptions`` bounds live subscriptions per client;
* ``max_queued_events`` bounds the per-client event queue — when it is
  full the *oldest* queued event is dropped to admit the newest,
  mirroring the PPL discipline of sacrificing the oldest, least
  valuable unit first;
* ``eviction_drop_limit`` (optional) disconnects a client whose drop
  count proves it cannot keep up — the service-plane analogue of PPL
  evicting the lowest-priority stream under memory pressure;
* ``max_feed_bytes`` bounds the bytes a client may accumulate into a
  pending packet feed.

Every enqueue/delivery/drop is ledgered, and the daemon's shutdown
asserts ``enqueued == delivered + dropped`` per client once queues are
drained — the balanced-ledger invariant the integration tests and the
CI soak check.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .protocol import MSG_EVENT, encode_frame

__all__ = ["ClientQuotas", "Subscription", "SessionLedger", "ClientSession"]

#: Stream lifecycle events a subscription can select.
EVENT_KINDS = ("created", "data", "closed")


@dataclass(frozen=True)
class ClientQuotas:
    """Per-client resource bounds enforced by the daemon."""

    #: Live subscriptions one client may hold.
    max_subscriptions: int = 8
    #: Events queued (not yet written) per client before drop-oldest.
    max_queued_events: int = 1024
    #: Disconnect the client once this many of its events were dropped
    #: (None = never evict, only drop).
    eviction_drop_limit: Optional[int] = None
    #: Bytes a client may stage into a pending packet feed.
    max_feed_bytes: int = 32 << 20
    #: Concurrent connections per auth token (None = unbounded).
    max_connections: Optional[int] = None

    def validate(self) -> None:
        """Raise ValueError on nonsensical bounds."""
        if self.max_subscriptions < 0:
            raise ValueError("max_subscriptions must be non-negative")
        if self.max_queued_events < 1:
            raise ValueError("max_queued_events must be positive")
        if self.eviction_drop_limit is not None and self.eviction_drop_limit < 1:
            raise ValueError("eviction_drop_limit must be positive")
        if self.max_feed_bytes < 1:
            raise ValueError("max_feed_bytes must be positive")


@dataclass
class Subscription:
    """One client's standing request for stream events."""

    subscription_id: int
    kinds: Tuple[str, ...]
    expression: str = ""
    #: Monotone per-subscription sequence number (next to assign).
    next_seq: int = 0
    #: Compiled BPF filter for ``expression`` (daemon-attached).
    bpf: Optional[object] = None

    def wants(self, kind: str) -> bool:
        """True when this subscription selects ``kind`` events."""
        return kind in self.kinds


@dataclass
class SessionLedger:
    """The per-client event accounting the daemon must keep balanced."""

    enqueued: int = 0
    delivered: int = 0
    dropped: int = 0
    requests: int = 0
    errors: int = 0
    frames_rejected: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def balanced(self, pending: int = 0) -> bool:
        """True when enqueued == delivered + dropped + pending."""
        return self.enqueued == self.delivered + self.dropped + pending

    def as_dict(self) -> Dict[str, int]:
        """The ledger as a JSON-ready mapping."""
        return {
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "requests": self.requests,
            "errors": self.errors,
            "frames_rejected": self.frames_rejected,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class ClientSession:
    """One connected client: identity, quotas, queue, and ledger.

    Mutable state is guarded by ``self._lock``; the sender thread and
    the handler thread are the only writers.  Socket sends go through
    :meth:`send_bytes` so response frames and event frames never
    interleave mid-frame.
    """

    def __init__(
        self,
        client_id: int,
        sock,
        quotas: ClientQuotas,
        peer: str = "",
        on_send: Optional[Callable[[int], None]] = None,
    ):
        self.client_id = client_id
        self.sock = sock
        self.quotas = quotas
        self.peer = peer
        self.name = f"client-{client_id}"
        self.authenticated = False
        self.ledger = SessionLedger()
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._queue: Deque[bytes] = deque()
        self._queue_cv = threading.Condition(self._lock)
        self._closing = False
        self._closed = False
        self.evicted = False
        self.subscriptions: Dict[int, Subscription] = {}
        self._next_subscription_id = 1
        #: Pending packet-feed buffers, by feed id.
        self.feeds: Dict[int, bytearray] = {}
        self._next_feed_id = 1
        self._on_send = on_send
        self._sender: Optional[threading.Thread] = None
        #: Injected delay per delivered event (slow-client fault plane).
        self.slow_delivery_seconds = 0.0
        #: Callable returning per-event injected stall (fault plane).
        self.delivery_stall: Optional[Callable[[], float]] = None
        #: Called (count) after events are delivered / dropped, outside
        #: the session lock — the daemon points these at its metrics.
        self.on_delivered: Optional[Callable[[int], None]] = None
        self.on_dropped: Optional[Callable[[int], None]] = None
        #: The in-flight request's handler span (set by the daemon's
        #: dispatch).  Only this session's reader thread touches it —
        #: handlers run serially per connection — so no lock is needed.
        self.active_span = None

    # ------------------------------------------------------------------
    # Outbound half
    # ------------------------------------------------------------------
    def start_sender(self) -> None:
        """Start the event sender thread (idempotent)."""
        with self._lock:
            if self._sender is not None:
                return
            self._sender = threading.Thread(
                target=self._drain_queue,
                name=f"scapd-send-{self.client_id}",
                daemon=True,
            )
        self._sender.start()

    def send_bytes(self, data: bytes) -> bool:
        """Write one whole frame to the socket (False on a dead peer)."""
        try:
            with self._send_lock:
                self.sock.sendall(data)
        except OSError:
            return False
        with self._lock:
            self.ledger.bytes_sent += len(data)
        if self._on_send is not None:
            self._on_send(len(data))
        return True

    # ------------------------------------------------------------------
    # Ledger accounting (the daemon's only write path into the session)
    # ------------------------------------------------------------------
    def note_received(self, nbytes: int) -> None:
        """Account frame bytes read from this client's socket."""
        with self._lock:
            self.ledger.bytes_received += nbytes

    def note_request(self) -> None:
        """Account one dispatched request frame."""
        with self._lock:
            self.ledger.requests += 1

    def note_error(self) -> None:
        """Account one typed error response sent to this client."""
        with self._lock:
            self.ledger.errors += 1

    def note_rejection(self) -> None:
        """Account one malformed frame rejected on this connection."""
        with self._lock:
            self.ledger.frames_rejected += 1

    def mark_evicted(self, drop_limit: int) -> bool:
        """Flip the evicted flag once drops cross ``drop_limit``.

        Returns True exactly once — on the call that performs the
        transition — so the daemon counts each eviction a single time.
        """
        with self._lock:
            if self.evicted or self.ledger.dropped < drop_limit:
                return False
            self.evicted = True
            return True

    # ------------------------------------------------------------------
    # Event queue (bounded, drop-oldest)
    # ------------------------------------------------------------------
    def enqueue_event(
        self, subscription: Subscription, header: Dict[str, object], payload: bytes
    ) -> Tuple[int, int]:
        """Queue one event frame; returns (enqueued, dropped) deltas.

        A full queue drops the *oldest* queued event (never the new
        one), so the client observes the freshest window of the stream
        — the PPL lowest-priority-oldest discipline applied to the
        client plane.
        """
        header = dict(header)
        header["sub"] = subscription.subscription_id
        header["seq"] = subscription.next_seq
        subscription.next_seq += 1
        frame = encode_frame(MSG_EVENT, 0, header, payload)
        dropped = 0
        with self._lock:
            if self._closing or self._closed:
                return (0, 0)
            if len(self._queue) >= self.quotas.max_queued_events:
                self._queue.popleft()
                self.ledger.dropped += 1
                dropped = 1
            self._queue.append(frame)
            self.ledger.enqueued += 1
            self._queue_cv.notify()
        if dropped and self.on_dropped is not None:
            self.on_dropped(dropped)
        return (1, dropped)

    def drop_oldest(self, count: int = 1) -> int:
        """Evict up to ``count`` oldest queued events (global pressure)."""
        with self._lock:
            evicted = 0
            while self._queue and evicted < count:
                self._queue.popleft()
                self.ledger.dropped += 1
                evicted += 1
        if evicted and self.on_dropped is not None:
            self.on_dropped(evicted)
        return evicted

    def queue_depth(self) -> int:
        """Events currently queued and not yet written."""
        with self._lock:
            return len(self._queue)

    def _drain_queue(self) -> None:
        """Sender thread: pop frames in order and write them out."""
        import time as _time

        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._queue_cv.wait(timeout=0.2)
                if not self._queue and self._closing:
                    self._closed = True
                    self._queue_cv.notify_all()
                    return
                if not self._queue:
                    continue
                frame = self._queue.popleft()
            stall = self.slow_delivery_seconds
            if self.delivery_stall is not None:
                stall += self.delivery_stall()
            if stall > 0.0:
                _time.sleep(stall)
            ok = self.send_bytes(frame)
            with self._lock:
                if ok:
                    self.ledger.delivered += 1
                else:
                    # Dead peer: the write failed, the event is gone.
                    self.ledger.dropped += 1
                    self._closing = True
                self._queue_cv.notify_all()
            if ok and self.on_delivered is not None:
                self.on_delivered(1)
            elif not ok and self.on_dropped is not None:
                self.on_dropped(1)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def add_subscription(
        self, kinds: Tuple[str, ...], expression: str = ""
    ) -> Optional[Subscription]:
        """Register a subscription (None when over quota)."""
        with self._lock:
            if len(self.subscriptions) >= self.quotas.max_subscriptions:
                return None
            subscription = Subscription(
                subscription_id=self._next_subscription_id,
                kinds=kinds,
                expression=expression,
            )
            self._next_subscription_id += 1
            self.subscriptions[subscription.subscription_id] = subscription
            return subscription

    def remove_subscription(self, subscription_id: int) -> bool:
        """Drop a subscription; False when the id is unknown."""
        with self._lock:
            return self.subscriptions.pop(subscription_id, None) is not None

    def live_subscriptions(self) -> List[Subscription]:
        """Snapshot of the session's subscriptions."""
        with self._lock:
            return list(self.subscriptions.values())

    # ------------------------------------------------------------------
    # Packet feeds
    # ------------------------------------------------------------------
    def open_feed(self) -> int:
        """Allocate a pending packet-feed buffer; returns its id."""
        with self._lock:
            feed_id = self._next_feed_id
            self._next_feed_id += 1
            self.feeds[feed_id] = bytearray()
            return feed_id

    def append_feed(self, feed_id: int, data: bytes) -> bool:
        """Append bytes to a pending feed (False over the byte quota)."""
        with self._lock:
            buffer = self.feeds.get(feed_id)
            if buffer is None:
                raise KeyError(feed_id)
            if len(buffer) + len(data) > self.quotas.max_feed_bytes:
                return False
            buffer.extend(data)
            return True

    def close_feed(self, feed_id: int) -> bytes:
        """Remove and return a pending feed's accumulated bytes."""
        with self._lock:
            return bytes(self.feeds.pop(feed_id))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def flush(self, timeout: float = 5.0) -> bool:
        """Wait for the queue to empty without closing (reload drain)."""
        with self._lock:
            return self._queue_cv.wait_for(
                lambda: not self._queue or self._closed, timeout=timeout
            )

    def begin_close(self) -> None:
        """Stop accepting events; the sender drains what is queued."""
        with self._lock:
            self._closing = True
            self._queue_cv.notify_all()

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait for the sender to flush the queue; True when drained."""
        abandoned = 0
        if self._sender is None:
            with self._lock:
                # No sender ever ran: whatever is queued will never be
                # written; account it as dropped so ledgers balance.
                while self._queue:
                    self._queue.popleft()
                    self.ledger.dropped += 1
                    abandoned += 1
                self._closed = True
            if abandoned and self.on_dropped is not None:
                self.on_dropped(abandoned)
            return True
        with self._lock:
            self._queue_cv.wait_for(lambda: self._closed, timeout=timeout)
            drained = self._closed
            if not drained:
                # Sender is stuck (dead peer mid-write): drop the rest.
                while self._queue:
                    self._queue.popleft()
                    self.ledger.dropped += 1
                    abandoned += 1
                self._closed = True
        if abandoned and self.on_dropped is not None:
            self.on_dropped(abandoned)
        return drained

    @property
    def closed(self) -> bool:
        """True once the outbound queue is fully drained or abandoned."""
        with self._lock:
            return self._closed

    def describe(self) -> Dict[str, object]:
        """JSON-ready session summary for the ``stats`` command."""
        with self._lock:
            return {
                "client_id": self.client_id,
                "name": self.name,
                "peer": self.peer,
                "authenticated": self.authenticated,
                "subscriptions": len(self.subscriptions),
                "queued": len(self._queue),
                "evicted": self.evicted,
                "ledger": self.ledger.as_dict(),
            }
