"""Synthesis of complete TCP sessions as packet sequences.

The generator needs full, correct TCP conversations — three-way
handshake, MSS-sized data segments, acknowledgements, FIN/RST teardown —
plus controllable *impairments* (retransmissions, reordering,
overlapping segments, IP fragmentation) so the reassembly engines and
normalization policies are genuinely exercised, the way a campus trace
would exercise them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..netstack.flows import CLIENT_TO_SERVER, SERVER_TO_CLIENT, FiveTuple
from ..netstack.fragments import fragment_packet
from ..netstack.packet import Packet, make_tcp_packet, make_udp_packet
from ..netstack.tcp import SEQ_MOD, TCPFlags, TCPOption, seq_add

__all__ = ["Impairments", "TCPSessionBuilder", "build_udp_flow", "DEFAULT_MSS"]

DEFAULT_MSS = 1448


@dataclass
class Impairments:
    """Controlled pathologies injected into a synthesized session.

    Rates are per-data-segment probabilities.  ``overlap_conflict``
    makes the overlapping retransmission carry *different* bytes in the
    overlapped region, which is what distinguishes the per-OS
    reassembly policies (first-wins vs last-wins).
    """

    retransmit_rate: float = 0.0
    reorder_rate: float = 0.0
    overlap_rate: float = 0.0
    overlap_conflict: bool = False
    fragment_rate: float = 0.0
    fragment_size: int = 256
    drop_rate: float = 0.0  # segments lost on the wire (never captured)
    seed: int = 0


@dataclass
class SessionMessage:
    """One application-level message: ``direction`` plus payload bytes."""

    direction: int
    data: bytes


class TCPSessionBuilder:
    """Builds the packet sequence of one bidirectional TCP session.

    Usage::

        builder = TCPSessionBuilder(five_tuple, start_time=0.0)
        packets = builder.build([SessionMessage(CLIENT_TO_SERVER, b"GET /"),
                                 SessionMessage(SERVER_TO_CLIENT, body)])

    The five-tuple is given from the client's perspective.  Packet
    timestamps advance by ``packet_gap`` per emitted packet starting at
    ``start_time``; trace-level replay rescales them globally.
    """

    def __init__(
        self,
        five_tuple: FiveTuple,
        start_time: float = 0.0,
        packet_gap: float = 10e-6,
        mss: int = DEFAULT_MSS,
        impairments: Optional[Impairments] = None,
        ack_every: int = 4,
        client_isn: Optional[int] = None,
        server_isn: Optional[int] = None,
        reset_instead_of_fin: bool = False,
    ):
        self._ft = five_tuple
        self._time = start_time
        self._gap = packet_gap
        self._mss = mss
        self._imp = impairments or Impairments()
        self._rng = random.Random(self._imp.seed ^ hash(five_tuple) & 0xFFFFFFFF)
        self._ack_every = max(1, ack_every)
        self._client_isn = self._rng.randrange(SEQ_MOD) if client_isn is None else client_isn
        self._server_isn = self._rng.randrange(SEQ_MOD) if server_isn is None else server_isn
        self._reset = reset_instead_of_fin
        # Next sequence number to send, per direction.
        self._seq = [0, 0]
        # Highest sequence number seen from the peer, per direction (for ACKs).
        self._peer_seq = [0, 0]

    # ------------------------------------------------------------------
    def _next_time(self) -> float:
        timestamp = self._time
        self._time += self._gap
        return timestamp

    def _endpoints(self, direction: int) -> Tuple[int, int, int, int]:
        """(src_ip, src_port, dst_ip, dst_port) for ``direction``."""
        if direction == CLIENT_TO_SERVER:
            return self._ft.src_ip, self._ft.src_port, self._ft.dst_ip, self._ft.dst_port
        return self._ft.dst_ip, self._ft.dst_port, self._ft.src_ip, self._ft.src_port

    def _packet(
        self, direction: int, flags: int, payload: bytes = b"", seq: Optional[int] = None
    ) -> Packet:
        src_ip, src_port, dst_ip, dst_port = self._endpoints(direction)
        options = None
        if flags & TCPFlags.SYN:
            # Real stacks advertise their MSS on SYN / SYN-ACK.
            options = [(TCPOption.MSS, self._mss.to_bytes(2, "big"))]
        return make_tcp_packet(
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            seq=self._seq[direction] if seq is None else seq,
            ack=self._peer_seq[direction] if flags & TCPFlags.ACK else 0,
            flags=flags,
            payload=payload,
            timestamp=self._next_time(),
            options=options,
        )

    # ------------------------------------------------------------------
    def handshake(self) -> List[Packet]:
        """SYN, SYN/ACK, ACK."""
        self._seq[CLIENT_TO_SERVER] = self._client_isn
        self._seq[SERVER_TO_CLIENT] = self._server_isn
        syn = self._packet(CLIENT_TO_SERVER, TCPFlags.SYN)
        self._seq[CLIENT_TO_SERVER] = seq_add(self._client_isn, 1)
        self._peer_seq[SERVER_TO_CLIENT] = self._seq[CLIENT_TO_SERVER]
        syn_ack = self._packet(SERVER_TO_CLIENT, TCPFlags.SYN | TCPFlags.ACK)
        self._seq[SERVER_TO_CLIENT] = seq_add(self._server_isn, 1)
        self._peer_seq[CLIENT_TO_SERVER] = self._seq[SERVER_TO_CLIENT]
        ack = self._packet(CLIENT_TO_SERVER, TCPFlags.ACK)
        return [syn, syn_ack, ack]

    def data_segments(self, direction: int, data: bytes) -> List[Packet]:
        """Emit ``data`` as MSS-sized segments, with impairments applied."""
        packets: List[Packet] = []
        offset = 0
        segments_since_ack = 0
        while offset < len(data):
            chunk = data[offset : offset + self._mss]
            flags = TCPFlags.ACK
            if offset + len(chunk) >= len(data):
                flags |= TCPFlags.PSH
            base_seq = self._seq[direction]
            segment = self._packet(direction, flags, payload=chunk)
            self._seq[direction] = seq_add(base_seq, len(chunk))
            self._peer_seq[1 - direction] = self._seq[direction]
            emitted = self._apply_impairments(direction, segment, base_seq, chunk)
            packets.extend(emitted)
            offset += len(chunk)
            segments_since_ack += 1
            if segments_since_ack >= self._ack_every:
                packets.append(self._packet(1 - direction, TCPFlags.ACK))
                segments_since_ack = 0
        return packets

    def _apply_impairments(
        self, direction: int, segment: Packet, base_seq: int, chunk: bytes
    ) -> List[Packet]:
        rng = self._rng
        if rng.random() < self._imp.drop_rate:
            return []  # lost on the wire: the monitor never sees it
        out = [segment]
        if self._imp.fragment_rate and rng.random() < self._imp.fragment_rate:
            out = fragment_packet(segment, self._imp.fragment_size)
        if rng.random() < self._imp.retransmit_rate:
            duplicate = self._packet(direction, segment.tcp.flags, payload=chunk, seq=base_seq)
            out.append(duplicate)
        if len(chunk) > 2 and rng.random() < self._imp.overlap_rate:
            # Re-send the second half of the segment, optionally with
            # conflicting bytes, overlapping the already-sent data.
            half = len(chunk) // 2
            overlap_payload = chunk[half:]
            if self._imp.overlap_conflict:
                overlap_payload = bytes((byte ^ 0xFF) for byte in overlap_payload)
            overlap = self._packet(
                direction,
                TCPFlags.ACK,
                payload=overlap_payload,
                seq=seq_add(base_seq, half),
            )
            out.append(overlap)
        if self._imp.reorder_rate and len(out) > 1 and rng.random() < self._imp.reorder_rate:
            # Shuffle the emission order.  Timestamps must be reassigned
            # in the new order: traces are replayed time-sorted, so a
            # shuffle that kept per-packet times would be a no-op.
            times = sorted(packet.timestamp for packet in out)
            rng.shuffle(out)
            for packet, timestamp in zip(out, times):
                packet.timestamp = timestamp
        return out

    def teardown(self) -> List[Packet]:
        """FIN/ACK exchange in both directions, or a single RST."""
        if self._reset:
            return [self._packet(CLIENT_TO_SERVER, TCPFlags.RST | TCPFlags.ACK)]
        fin_client = self._packet(CLIENT_TO_SERVER, TCPFlags.FIN | TCPFlags.ACK)
        self._seq[CLIENT_TO_SERVER] = seq_add(self._seq[CLIENT_TO_SERVER], 1)
        self._peer_seq[SERVER_TO_CLIENT] = self._seq[CLIENT_TO_SERVER]
        fin_server = self._packet(SERVER_TO_CLIENT, TCPFlags.FIN | TCPFlags.ACK)
        self._seq[SERVER_TO_CLIENT] = seq_add(self._seq[SERVER_TO_CLIENT], 1)
        self._peer_seq[CLIENT_TO_SERVER] = self._seq[SERVER_TO_CLIENT]
        last_ack = self._packet(CLIENT_TO_SERVER, TCPFlags.ACK)
        return [fin_client, fin_server, last_ack]

    def build(self, messages: Sequence[SessionMessage]) -> List[Packet]:
        """Handshake + all messages + teardown, in order."""
        packets = self.handshake()
        for message in messages:
            packets.extend(self.data_segments(message.direction, message.data))
        packets.extend(self.teardown())
        return packets

    @property
    def end_time(self) -> float:
        """Timestamp just after the last emitted packet."""
        return self._time


def build_udp_flow(
    five_tuple: FiveTuple,
    payloads: Sequence[Tuple[int, bytes]],
    start_time: float = 0.0,
    packet_gap: float = 10e-6,
) -> List[Packet]:
    """Build a UDP flow: one datagram per ``(direction, payload)`` entry."""
    packets: List[Packet] = []
    timestamp = start_time
    for direction, payload in payloads:
        if direction == CLIENT_TO_SERVER:
            src_ip, src_port = five_tuple.src_ip, five_tuple.src_port
            dst_ip, dst_port = five_tuple.dst_ip, five_tuple.dst_port
        else:
            src_ip, src_port = five_tuple.dst_ip, five_tuple.dst_port
            dst_ip, dst_port = five_tuple.src_ip, five_tuple.src_port
        packets.append(
            make_udp_packet(src_ip, src_port, dst_ip, dst_port, payload, timestamp=timestamp)
        )
        timestamp += packet_gap
    return packets
