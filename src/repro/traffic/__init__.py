"""Traffic substrate: TCP session synthesis, campus-mix generation, replay."""

from .anonymize import PrefixPreservingAnonymizer, anonymize_trace
from .generator import CampusTrafficGenerator, TrafficConfig
from .inspect import TraceSummary, filter_trace, slice_time, summarize
from .tcpsession import DEFAULT_MSS, Impairments, SessionMessage, TCPSessionBuilder, build_udp_flow
from .trace import FlowSpec, PlantedMatch, Trace
from .workloads import ConcurrentStreamWorkload, campus_mix, syn_flood

__all__ = [
    "PrefixPreservingAnonymizer",
    "anonymize_trace",
    "TraceSummary",
    "filter_trace",
    "slice_time",
    "summarize",
    "CampusTrafficGenerator",
    "TrafficConfig",
    "DEFAULT_MSS",
    "Impairments",
    "SessionMessage",
    "TCPSessionBuilder",
    "build_udp_flow",
    "FlowSpec",
    "PlantedMatch",
    "Trace",
    "ConcurrentStreamWorkload",
    "campus_mix",
    "syn_flood",
]
