"""Synthetic campus-style traffic generation.

The paper evaluates on a one-hour full-payload campus trace
(58.7 M packets, 1.49 M flows, 46 GB, 95.4 % TCP).  That trace is not
available, so this generator synthesizes a workload with the properties
the evaluation depends on:

* heavy-tailed flow sizes (a lognormal body plus a Pareto tail), so
  stream-cutoff experiments show most bytes living in the tails of a
  few large flows;
* a realistic port mix dominated by web traffic;
* full TCP semantics via :class:`~repro.traffic.tcpsession.TCPSessionBuilder`,
  with configurable impairment rates;
* a small UDP fraction;
* optional *pattern planting*: occurrences of known patterns spliced
  into stream payloads (biased towards stream beginnings, like web
  attack vectors in HTTP requests/responses), recorded as ground truth
  for scoring pattern-matching accuracy under packet loss.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..netstack.flows import CLIENT_TO_SERVER, SERVER_TO_CLIENT, FiveTuple
from ..netstack.ip import IPProtocol
from .tcpsession import (
    DEFAULT_MSS,
    Impairments,
    SessionMessage,
    TCPSessionBuilder,
    build_udp_flow,
)
from .trace import FlowSpec, PlantedMatch, Trace

__all__ = ["TrafficConfig", "CampusTrafficGenerator", "FILLER_BLOCK_SIZE"]

FILLER_BLOCK_SIZE = 1 << 20

# Server ports and their relative weights — roughly a campus access-link mix.
_PORT_MIX: Sequence[Tuple[int, float]] = (
    (80, 0.45),
    (443, 0.25),
    (8080, 0.05),
    (25, 0.05),
    (110, 0.03),
    (21, 0.02),
    (22, 0.03),
    (53, 0.04),
    (3306, 0.02),
    (6881, 0.06),
)


@dataclass
class TrafficConfig:
    """Knobs for :class:`CampusTrafficGenerator`.

    The default sizes produce a trace small enough for unit tests; the
    benchmark harness scales ``flow_count`` and ``max_flow_bytes`` up.
    """

    seed: int = 7
    flow_count: int = 200
    tcp_fraction: float = 0.954
    duration: float = 1.0  # native seconds over which flows start

    # Flow size model: lognormal body, Pareto tail.
    small_flow_fraction: float = 0.7
    lognormal_mu: float = math.log(2_000.0)
    lognormal_sigma: float = 1.0
    pareto_alpha: float = 1.2
    pareto_xm: float = 20_000.0
    max_flow_bytes: int = 2_000_000
    request_bytes_range: Tuple[int, int] = (120, 900)

    mss: int = DEFAULT_MSS
    ack_every: int = 4
    #: Per-flow throughput model: flows are paced at a lognormal rate
    #: around this mean, so many flows are concurrently active and the
    #: aggregate traffic profile is smooth — like an access link, not a
    #: sequence of line-rate bursts.
    mean_flow_bandwidth_bps: float = 40e6
    flow_bandwidth_sigma: float = 0.6
    #: Flows longer than this fraction of ``duration`` are paced faster.
    max_flow_duration_fraction: float = 0.6
    impairments: Impairments = field(default_factory=Impairments)
    reset_fraction: float = 0.05  # flows ending in RST instead of FIN
    unterminated_fraction: float = 0.03  # flows that just stop (timeout path)

    # Pattern planting (ground truth for detection accuracy experiments).
    patterns: Sequence[bytes] = ()
    plant_fraction: float = 0.0  # fraction of TCP flows receiving a pattern
    plant_near_start_fraction: float = 0.8  # planted within the first KBs
    plant_start_window: int = 4_096
    plants_per_flow: int = 1

    client_subnet: int = 0x0A000000  # 10.0.0.0/8 campus clients
    server_subnet: int = 0xC0000000  # 192.0.0.0/8 external servers


class CampusTrafficGenerator:
    """Generates a :class:`Trace` according to a :class:`TrafficConfig`."""

    def __init__(self, config: Optional[TrafficConfig] = None):
        self.config = config or TrafficConfig()
        self._rng = random.Random(self.config.seed)
        self._filler = self._make_filler(self._rng)

    @staticmethod
    def _make_filler(rng: random.Random) -> bytes:
        """A reusable block of HTTP-body-like text.

        Lowercase letters and whitespace only, so synthetic attack
        patterns (which contain uppercase/punctuation) can never occur
        by accident — planted matches are exact ground truth.
        """
        alphabet = b"abcdefghijklmnopqrstuvwxyz      \n"
        # Map uniform random bytes onto the alphabet with a translation
        # table — orders of magnitude faster than per-byte random.choice.
        table = bytes(alphabet[i % len(alphabet)] for i in range(256))
        return rng.randbytes(FILLER_BLOCK_SIZE).translate(table)

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def _flow_size(self) -> int:
        """Draw a flow's server-side byte size from the heavy-tailed mix."""
        config = self.config
        if self._rng.random() < config.small_flow_fraction:
            size = self._rng.lognormvariate(config.lognormal_mu, config.lognormal_sigma)
        else:
            # Inverse-transform Pareto sample: xm / U^(1/alpha).
            uniform = max(self._rng.random(), 1e-12)
            size = config.pareto_xm / uniform ** (1.0 / config.pareto_alpha)
        return max(64, min(int(size), config.max_flow_bytes))

    def _server_port(self) -> int:
        roll = self._rng.random()
        cumulative = 0.0
        for port, weight in _PORT_MIX:
            cumulative += weight
            if roll < cumulative:
                return port
        return 80

    def _five_tuple(self, protocol: int) -> FiveTuple:
        config = self.config
        client_ip = config.client_subnet | self._rng.randrange(1, 1 << 16)
        server_ip = config.server_subnet | self._rng.randrange(1, 1 << 20)
        client_port = self._rng.randrange(1024, 65536)
        return FiveTuple(client_ip, client_port, server_ip, self._server_port(), protocol)

    # ------------------------------------------------------------------
    # Payload synthesis
    # ------------------------------------------------------------------
    def _filler_bytes(self, length: int) -> bytes:
        """Slice ``length`` bytes out of the shared filler block."""
        if length <= 0:
            return b""
        start = self._rng.randrange(0, FILLER_BLOCK_SIZE)
        piece = self._filler[start : start + length]
        while len(piece) < length:
            piece += self._filler[: length - len(piece)]
        return piece

    def _http_request(self, length: int, host_port: int) -> bytes:
        head = (
            f"GET /{self._rng.randrange(1 << 24):x} HTTP/1.1\r\n"
            f"Host: server:{host_port}\r\nUser-Agent: repro-gen\r\n\r\n"
        ).encode()
        if length <= len(head):
            return head[:length] if length > 0 else head
        return head + self._filler_bytes(length - len(head))

    def _http_response(self, length: int) -> bytes:
        head = (
            f"HTTP/1.1 200 OK\r\nContent-Length: {length}\r\n"
            "Content-Type: text/html\r\n\r\n"
        ).encode()
        if length <= len(head):
            return head[:length] if length > 0 else head
        return head + self._filler_bytes(length - len(head))

    def _plant_patterns(
        self, response: bytes, flow_index: int
    ) -> Tuple[bytes, List[PlantedMatch]]:
        """Splice pattern occurrences into a server response payload."""
        config = self.config
        if not config.patterns or self._rng.random() >= config.plant_fraction:
            return response, []
        planted: List[PlantedMatch] = []
        data = bytearray(response)
        for _ in range(config.plants_per_flow):
            pattern = self._rng.choice(list(config.patterns))
            if len(data) <= len(pattern):
                break
            if self._rng.random() < config.plant_near_start_fraction:
                limit = max(1, min(len(data) - len(pattern), config.plant_start_window))
            else:
                limit = len(data) - len(pattern)
            offset = self._rng.randrange(0, limit)
            data[offset : offset + len(pattern)] = pattern
            planted.append(
                PlantedMatch(
                    flow_index=flow_index,
                    direction=SERVER_TO_CLIENT,
                    stream_offset=offset,
                    pattern=pattern,
                )
            )
        return bytes(data), planted

    def _packet_gap(self, flow_bytes: int, start_time: float) -> float:
        """Inter-packet gap pacing this flow at a sampled bandwidth.

        The gap is per emitted packet (data and ACKs alike), derived
        from the flow's sampled throughput.  Every flow is paced to
        finish inside the trace window, so the aggregate rate profile
        is flat — like a steady access link — rather than ending in a
        sparse tail that would make the nominal replay rate understate
        the mid-trace load.
        """
        config = self.config
        remaining = max(config.duration - start_time, 1e-3)
        if flow_bytes > 100_000:
            # Large flows (which carry most of the bytes) are stretched
            # over most of the remaining trace, so the aggregate rate
            # stays steady instead of spiking whenever a few heavy
            # flows coincide — matching a long-lived access-link mix.
            target_duration = remaining * self._rng.uniform(0.85, 0.98)
            bandwidth = flow_bytes * 8 / min(target_duration, remaining)
        else:
            bandwidth = self._rng.lognormvariate(
                math.log(config.mean_flow_bandwidth_bps), config.flow_bandwidth_sigma
            )
            bandwidth = max(bandwidth, flow_bytes * 8 / remaining)
        # Roughly one data segment plus its share of ACKs per gap.
        bytes_per_packet = (config.mss + 54) * 0.75
        return bytes_per_packet * 8 / bandwidth

    # ------------------------------------------------------------------
    # Flow and trace assembly
    # ------------------------------------------------------------------
    def _build_tcp_flow(
        self, index: int, start_time: float, response_len: Optional[int] = None
    ) -> Tuple[List, FlowSpec]:
        config = self.config
        five_tuple = self._five_tuple(IPProtocol.TCP)
        request_len = self._rng.randrange(*config.request_bytes_range)
        if response_len is None:
            response_len = self._flow_size()
        request = self._http_request(request_len, five_tuple.dst_port)
        response = self._http_response(response_len)
        response, planted = self._plant_patterns(response, index)

        reset = self._rng.random() < config.reset_fraction
        unterminated = not reset and self._rng.random() < config.unterminated_fraction
        builder = TCPSessionBuilder(
            five_tuple,
            start_time=start_time,
            packet_gap=self._packet_gap(len(request) + len(response), start_time),
            mss=config.mss,
            impairments=config.impairments,
            ack_every=config.ack_every,
            reset_instead_of_fin=reset,
        )
        messages = [
            SessionMessage(CLIENT_TO_SERVER, request),
            SessionMessage(SERVER_TO_CLIENT, response),
        ]
        if unterminated:
            packets = builder.handshake()
            for message in messages:
                packets.extend(builder.data_segments(message.direction, message.data))
        else:
            packets = builder.build(messages)
        spec = FlowSpec(
            index=index,
            five_tuple=five_tuple,
            protocol=IPProtocol.TCP,
            client_bytes=len(request),
            server_bytes=len(response),
            start_time=start_time,
            packet_count=len(packets),
            planted=planted,
        )
        return packets, spec

    def _build_udp_flow(self, index: int, start_time: float) -> Tuple[List, FlowSpec]:
        five_tuple = self._five_tuple(IPProtocol.UDP)
        datagram_count = self._rng.randrange(1, 8)
        payloads = []
        client_bytes = server_bytes = 0
        for turn in range(datagram_count):
            direction = CLIENT_TO_SERVER if turn % 2 == 0 else SERVER_TO_CLIENT
            payload = self._filler_bytes(self._rng.randrange(40, 512))
            payloads.append((direction, payload))
            if direction == CLIENT_TO_SERVER:
                client_bytes += len(payload)
            else:
                server_bytes += len(payload)
        packets = build_udp_flow(five_tuple, payloads, start_time=start_time)
        spec = FlowSpec(
            index=index,
            five_tuple=five_tuple,
            protocol=IPProtocol.UDP,
            client_bytes=client_bytes,
            server_bytes=server_bytes,
            start_time=start_time,
            packet_count=len(packets),
        )
        return packets, spec

    def generate(self, name: str = "campus-mix") -> Trace:
        """Generate the full trace.

        Flow sizes are presampled so start times can be assigned by
        weight: heavy flows begin early (and are paced to stretch over
        the remainder of the trace), light flows are stratified across
        the window.  Together this yields a steady aggregate rate from
        the first to the last fifth of the trace — the property that
        makes "replay at rate R" meaningful, as with a real long trace.
        """
        config = self.config
        plan: List[Tuple[int, Optional[int]]] = []  # (index, tcp size or None)
        for index in range(config.flow_count):
            if self._rng.random() < config.tcp_fraction:
                plan.append((index, self._flow_size()))
            else:
                plan.append((index, None))
        heavy = [entry for entry in plan if entry[1] is not None and entry[1] > 100_000]
        light = [entry for entry in plan if entry not in heavy]

        scheduled: List[Tuple[int, Optional[int], float]] = []
        for position, (index, size) in enumerate(heavy):
            # Heavy flows start in the first tenth and stretch across
            # nearly the whole remaining trace, so each contributes a
            # near-constant rate from start to end.
            start_time = (
                config.duration * 0.1 * (position + self._rng.random()) / max(1, len(heavy))
            )
            scheduled.append((index, size, start_time))
        start_window = config.duration * 0.85
        for position, (index, size) in enumerate(light):
            start_time = start_window * (position + self._rng.random()) / max(1, len(light))
            scheduled.append((index, size, start_time))
        scheduled.sort(key=lambda entry: entry[0])

        packets: List = []
        flows: List[FlowSpec] = []
        for index, size, start_time in scheduled:
            if size is not None:
                flow_packets, spec = self._build_tcp_flow(index, start_time, size)
            else:
                flow_packets, spec = self._build_udp_flow(index, start_time)
            packets.extend(flow_packets)
            flows.append(spec)
        return Trace(packets, flows, name=name)
