"""Trace inspection: summaries, slicing, filtering.

The small utilities every capture toolchain grows: per-protocol and
per-port byte/packet breakdowns, top talkers, packet-size histograms,
time-window slicing, and BPF filtering over a trace — used by the
``repro-scap inspect`` CLI and handy for sanity-checking workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from ..filters.bpf import BPFFilter
from ..netstack.addresses import int_to_ip
from .trace import Trace

__all__ = ["TraceSummary", "summarize", "slice_time", "filter_trace"]

_SIZE_BUCKETS = (64, 128, 256, 512, 1024, 1518, 1 << 30)


@dataclass
class TraceSummary:
    """Aggregate statistics over one trace."""

    packets: int = 0
    wire_bytes: int = 0
    payload_bytes: int = 0
    duration: float = 0.0
    protocol_packets: Counter = field(default_factory=Counter)
    port_bytes: Counter = field(default_factory=Counter)
    talker_bytes: Counter = field(default_factory=Counter)
    size_histogram: Counter = field(default_factory=Counter)
    flows: int = 0

    @property
    def average_rate_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.wire_bytes * 8 / self.duration

    def top_ports(self, count: int = 10) -> List[Tuple[int, int]]:
        """The ``count`` busiest server ports by bytes."""
        return self.port_bytes.most_common(count)

    def top_talkers(self, count: int = 10) -> List[Tuple[str, int]]:
        """The ``count`` busiest source addresses by bytes."""
        return [
            (int_to_ip(address), nbytes)
            for address, nbytes in self.talker_bytes.most_common(count)
        ]

    def format(self) -> str:
        """Human-readable multi-line rendering of the summary."""
        lines = [
            f"packets: {self.packets}  wire: {self.wire_bytes / 1e6:.2f} MB  "
            f"payload: {self.payload_bytes / 1e6:.2f} MB  "
            f"duration: {self.duration:.3f} s  "
            f"avg rate: {self.average_rate_bps / 1e9:.3f} Gbit/s",
            "protocols: "
            + "  ".join(f"{name}={count}" for name, count in self.protocol_packets.items()),
            "size histogram: "
            + "  ".join(
                f"<={bucket if bucket < (1 << 30) else 'inf'}:{count}"
                for bucket, count in sorted(self.size_histogram.items())
            ),
            "top ports by bytes: "
            + "  ".join(f"{port}:{nbytes / 1e3:.0f}kB" for port, nbytes in self.top_ports(6)),
            "top talkers: "
            + "  ".join(f"{ip}:{b / 1e3:.0f}kB" for ip, b in self.top_talkers(4)),
        ]
        return "\n".join(lines)


def summarize(trace: Trace) -> TraceSummary:
    """Compute aggregate statistics over ``trace``."""
    summary = TraceSummary()
    canonical = set()
    first = last = None
    for packet in trace.packets:
        summary.packets += 1
        summary.wire_bytes += packet.wire_len
        summary.payload_bytes += len(packet.payload)
        first = packet.timestamp if first is None else first
        last = packet.timestamp
        for bucket in _SIZE_BUCKETS:
            if packet.wire_len <= bucket:
                summary.size_histogram[bucket] += 1
                break
        if packet.is_tcp:
            summary.protocol_packets["tcp"] += 1
        elif packet.is_udp:
            summary.protocol_packets["udp"] += 1
        elif packet.is_ip:
            summary.protocol_packets["other-ip"] += 1
        else:
            summary.protocol_packets["non-ip"] += 1
        five_tuple = packet.five_tuple
        if five_tuple is not None:
            canonical.add(five_tuple.canonical())
            server_port = min(five_tuple.src_port, five_tuple.dst_port)
            summary.port_bytes[server_port] += packet.wire_len
            summary.talker_bytes[five_tuple.src_ip] += packet.wire_len
    summary.flows = len(canonical)
    if first is not None and last is not None:
        summary.duration = last - first
    return summary


def slice_time(trace: Trace, start: float, end: float, name: str = "") -> Trace:
    """Packets with ``start <= timestamp < end`` (native timeline)."""
    if end <= start:
        raise ValueError("end must be after start")
    packets = [p for p in trace.packets if start <= p.timestamp < end]
    return Trace(packets, name=name or f"{trace.name}[{start:g}:{end:g}]")


def filter_trace(trace: Trace, expression: str, name: str = "") -> Trace:
    """Packets matching a BPF expression."""
    bpf = BPFFilter(expression)
    packets = [p for p in trace.packets if bpf.matches(p)]
    return Trace(packets, name=name or f"{trace.name}|{expression}")
