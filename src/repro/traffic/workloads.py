"""Pre-packaged workloads matching the paper's experiments.

* :func:`campus_mix` — the heavy-tailed campus-like trace used by the
  rate-sweep experiments (Figs 3, 4, 6–10).
* :class:`ConcurrentStreamWorkload` — the Fig 5 workload: ``n`` TCP
  streams of fixed packet count multiplexed in lockstep so ``n`` streams
  are concurrently open; generated lazily so very large ``n`` fits in
  memory (data payloads share a single bytes object).
* :func:`syn_flood` — flow-table exhaustion attack traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..netstack.flows import FiveTuple
from ..netstack.ip import IPProtocol
from ..netstack.packet import Packet, make_tcp_packet
from ..netstack.tcp import TCPFlags
from .generator import CampusTrafficGenerator, TrafficConfig
from .tcpsession import DEFAULT_MSS, Impairments
from .trace import FlowSpec, Trace

__all__ = ["campus_mix", "ConcurrentStreamWorkload", "syn_flood"]


def campus_mix(
    flow_count: int = 400,
    seed: int = 7,
    patterns: Sequence[bytes] = (),
    plant_fraction: float = 0.0,
    max_flow_bytes: int = 2_000_000,
    impairments: Optional[Impairments] = None,
    name: str = "campus-mix",
) -> Trace:
    """Generate the standard campus-like trace used across experiments."""
    config = TrafficConfig(
        seed=seed,
        flow_count=flow_count,
        max_flow_bytes=max_flow_bytes,
        patterns=tuple(patterns),
        plant_fraction=plant_fraction,
        impairments=impairments
        or Impairments(retransmit_rate=0.01, reorder_rate=0.01, overlap_rate=0.005, seed=seed),
    )
    return CampusTrafficGenerator(config).generate(name=name)


@dataclass
class _StreamState:
    five_tuple: FiveTuple
    client_isn: int
    server_isn: int


class ConcurrentStreamWorkload:
    """Fig 5 workload: ``n`` concurrent multiplexed TCP streams.

    Every stream is handshake + ``data_packets`` max-payload server
    segments + FIN teardown, emitted in lockstep round-robin so all
    ``n`` streams are simultaneously established mid-trace.  Packets are
    produced lazily by :meth:`replay`; all data segments share one
    payload object, so memory stays flat even for 10^5+ streams.
    """

    _HANDSHAKE = 3
    _TEARDOWN = 3

    def __init__(
        self,
        stream_count: int,
        data_packets: int = 10,
        mss: int = DEFAULT_MSS,
        seed: int = 11,
    ):
        self.stream_count = stream_count
        self.data_packets = data_packets
        self.mss = mss
        self._payload = bytes(mss)  # shared by every data segment
        rng = random.Random(seed)
        self._streams: List[_StreamState] = []
        seen = set()
        for _ in range(stream_count):
            while True:
                five_tuple = FiveTuple(
                    0x0A000000 | rng.randrange(1, 1 << 24),
                    rng.randrange(1024, 65536),
                    0xC0000000 | rng.randrange(1, 1 << 24),
                    80,
                    IPProtocol.TCP,
                )
                if five_tuple.canonical() not in seen:
                    seen.add(five_tuple.canonical())
                    break
            self._streams.append(
                _StreamState(five_tuple, rng.randrange(1 << 32), rng.randrange(1 << 32))
            )
        self.packets_per_stream = self._HANDSHAKE + data_packets + self._TEARDOWN
        self.packet_count = self.packets_per_stream * stream_count
        per_stream_bytes = (
            54 * (self._HANDSHAKE + self._TEARDOWN) + (54 + mss) * data_packets
        )
        self.total_wire_bytes = per_stream_bytes * stream_count
        self.flows = [
            FlowSpec(
                index=i,
                five_tuple=state.five_tuple,
                protocol=IPProtocol.TCP,
                client_bytes=0,
                server_bytes=mss * data_packets,
                start_time=0.0,
                packet_count=self.packets_per_stream,
            )
            for i, state in enumerate(self._streams)
        ]
        self.name = f"concurrent-{stream_count}"

    # ------------------------------------------------------------------
    def _stream_packet(self, state: _StreamState, step: int, timestamp: float) -> Packet:
        """Packet number ``step`` of one stream."""
        ft = state.five_tuple
        cisn, sisn = state.client_isn, state.server_isn
        if step == 0:
            return make_tcp_packet(
                ft.src_ip, ft.src_port, ft.dst_ip, ft.dst_port,
                seq=cisn, flags=TCPFlags.SYN, timestamp=timestamp,
            )
        if step == 1:
            return make_tcp_packet(
                ft.dst_ip, ft.dst_port, ft.src_ip, ft.src_port,
                seq=sisn, ack=(cisn + 1) % (1 << 32),
                flags=TCPFlags.SYN | TCPFlags.ACK, timestamp=timestamp,
            )
        if step == 2:
            return make_tcp_packet(
                ft.src_ip, ft.src_port, ft.dst_ip, ft.dst_port,
                seq=(cisn + 1) % (1 << 32), ack=(sisn + 1) % (1 << 32),
                flags=TCPFlags.ACK, timestamp=timestamp,
            )
        data_index = step - self._HANDSHAKE
        if data_index < self.data_packets:
            seq = (sisn + 1 + data_index * self.mss) % (1 << 32)
            return make_tcp_packet(
                ft.dst_ip, ft.dst_port, ft.src_ip, ft.src_port,
                seq=seq, ack=(cisn + 1) % (1 << 32),
                flags=TCPFlags.ACK | TCPFlags.PSH,
                payload=self._payload, timestamp=timestamp,
            )
        # Teardown: server FIN, client FIN, server final ACK.
        end_seq = (sisn + 1 + self.data_packets * self.mss) % (1 << 32)
        tear = step - self._HANDSHAKE - self.data_packets
        if tear == 0:
            return make_tcp_packet(
                ft.dst_ip, ft.dst_port, ft.src_ip, ft.src_port,
                seq=end_seq, ack=(cisn + 1) % (1 << 32),
                flags=TCPFlags.FIN | TCPFlags.ACK, timestamp=timestamp,
            )
        if tear == 1:
            return make_tcp_packet(
                ft.src_ip, ft.src_port, ft.dst_ip, ft.dst_port,
                seq=(cisn + 1) % (1 << 32), ack=(end_seq + 1) % (1 << 32),
                flags=TCPFlags.FIN | TCPFlags.ACK, timestamp=timestamp,
            )
        return make_tcp_packet(
            ft.dst_ip, ft.dst_port, ft.src_ip, ft.src_port,
            seq=(end_seq + 1) % (1 << 32), ack=(cisn + 2) % (1 << 32),
            flags=TCPFlags.ACK, timestamp=timestamp,
        )

    def replay(self, rate_bps: float) -> Iterator[Packet]:
        """Yield all packets, timestamped so the workload runs at ``rate_bps``.

        Lockstep round-robin: packet ``j`` of every stream is emitted
        before packet ``j+1`` of any stream, so after the handshake round
        all ``stream_count`` connections are concurrently established.
        """
        if rate_bps <= 0:
            raise ValueError("replay rate must be positive")
        elapsed_bits = 0
        for step in range(self.packets_per_stream):
            for state in self._streams:
                timestamp = elapsed_bits / rate_bps
                packet = self._stream_packet(state, step, timestamp)
                elapsed_bits += packet.wire_len * 8
                yield packet

    def replayed_duration(self, rate_bps: float) -> float:
        """Wall time of the workload when replayed at ``rate_bps``."""
        return self.total_wire_bytes * 8 / rate_bps


def syn_flood(
    packet_count: int,
    seed: int = 23,
    target_port: int = 80,
) -> Trace:
    """A flow-table exhaustion attack: ``packet_count`` bare SYNs.

    Every SYN has a distinct spoofed source, so each one allocates a new
    flow-table entry in the monitor — the attack scenario §6.4 defends
    against.
    """
    rng = random.Random(seed)
    packets = []
    gap = 1e-6
    for i in range(packet_count):
        packets.append(
            make_tcp_packet(
                rng.randrange(1, 1 << 32),
                rng.randrange(1024, 65536),
                0xC0A80001,
                target_port,
                seq=rng.randrange(1 << 32),
                flags=TCPFlags.SYN,
                timestamp=i * gap,
            )
        )
    return Trace(packets, [], name=f"syn-flood-{packet_count}")
