"""Trace container: an ordered packet sequence plus ground truth.

A :class:`Trace` owns the packets of a generated (or loaded) workload
together with everything the experiment harness needs to score results:
per-flow specifications, planted pattern matches, totals.  Replaying at
a target bit-rate rescales the original timestamps uniformly — exactly
what replaying a captured trace faster does in the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..netstack.flows import FiveTuple
from ..netstack.packet import Packet

__all__ = ["FlowSpec", "PlantedMatch", "Trace"]


@dataclass
class PlantedMatch:
    """Ground truth for one pattern occurrence planted by the generator."""

    flow_index: int
    direction: int
    stream_offset: int  # byte offset within the reassembled stream direction
    pattern: bytes


@dataclass
class FlowSpec:
    """Ground truth for one generated flow."""

    index: int
    five_tuple: FiveTuple  # client perspective
    protocol: int
    client_bytes: int
    server_bytes: int
    start_time: float
    packet_count: int = 0
    planted: List[PlantedMatch] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.client_bytes + self.server_bytes


class Trace:
    """An immutable-ish packet workload with ground truth and replay.

    ``packets`` must already be sorted by timestamp.  ``replay(rate)``
    yields the packets with uniformly rescaled timestamps (mutating each
    packet's ``timestamp`` in place — runs are sequential, and this
    avoids copying the whole trace per rate point).
    """

    def __init__(
        self,
        packets: Sequence[Packet],
        flows: Optional[Sequence[FlowSpec]] = None,
        name: str = "trace",
    ):
        self.packets: List[Packet] = list(packets)
        self.packets.sort(key=lambda packet: packet.timestamp)
        self.flows: List[FlowSpec] = list(flows or [])
        self.name = name
        self._base_times = [packet.timestamp for packet in self.packets]
        self.total_wire_bytes = sum(packet.wire_len for packet in self.packets)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    @property
    def duration(self) -> float:
        """Native duration in virtual seconds (first to last packet)."""
        if not self.packets:
            return 0.0
        return self._base_times[-1] - self._base_times[0]

    @property
    def native_rate_bps(self) -> float:
        """The bit-rate implied by the native timestamps."""
        duration = self.duration
        if duration <= 0:
            return float("inf")
        return self.total_wire_bytes * 8 / duration

    @property
    def planted_matches(self) -> List[PlantedMatch]:
        return [match for flow in self.flows for match in flow.planted]

    # ------------------------------------------------------------------
    def replay(self, rate_bps: float) -> Iterator[Packet]:
        """Yield packets retimed so the trace plays at ``rate_bps``.

        Timestamps are rescaled uniformly from the native timeline (so
        relative ordering and interleaving are preserved, as with
        tcpreplay's ``--multiplier``) and written back into each packet.
        """
        if rate_bps <= 0:
            raise ValueError("replay rate must be positive")
        native = self.native_rate_bps
        scale = 1.0 if native in (0.0, float("inf")) else native / rate_bps
        origin = self._base_times[0] if self._base_times else 0.0
        for packet, base_time in zip(self.packets, self._base_times):
            packet.timestamp = (base_time - origin) * scale
            yield packet

    def replay_batches(self, rate_bps: float, size: int) -> Iterator[List[Packet]]:
        """Yield retimed packets in lists of up to ``size``.

        Identical retiming and ordering to :meth:`replay`; the batched
        runtime uses this to skip one generator resume per packet.
        """
        if rate_bps <= 0:
            raise ValueError("replay rate must be positive")
        if size <= 0:
            raise ValueError("batch size must be positive")
        native = self.native_rate_bps
        scale = 1.0 if native in (0.0, float("inf")) else native / rate_bps
        origin = self._base_times[0] if self._base_times else 0.0
        packets = self.packets
        base_times = self._base_times
        for start in range(0, len(packets), size):
            chunk = packets[start : start + size]
            for packet, base_time in zip(chunk, base_times[start : start + size]):
                packet.timestamp = (base_time - origin) * scale
            yield chunk

    def reset_timeline(self) -> None:
        """Restore every packet's native timestamp.

        :meth:`replay` rescales timestamps in place; callers that slice
        or re-shard the trace afterwards (e.g. the sharded capture)
        reset first so derived traces see the native timeline, not the
        last replay's.
        """
        for packet, base_time in zip(self.packets, self._base_times):
            packet.timestamp = base_time

    def replayed_duration(self, rate_bps: float) -> float:
        """Duration of the trace when replayed at ``rate_bps``."""
        return self.total_wire_bytes * 8 / rate_bps

    # ------------------------------------------------------------------
    def merged_with(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Interleave two traces on their native timelines."""
        offset = len(self.flows)
        merged_flows = list(self.flows)
        for flow in other.flows:
            reindexed = FlowSpec(
                index=flow.index + offset,
                five_tuple=flow.five_tuple,
                protocol=flow.protocol,
                client_bytes=flow.client_bytes,
                server_bytes=flow.server_bytes,
                start_time=flow.start_time,
                packet_count=flow.packet_count,
                planted=[
                    PlantedMatch(match.flow_index + offset, match.direction,
                                 match.stream_offset, match.pattern)
                    for match in flow.planted
                ],
            )
            merged_flows.append(reindexed)
        return Trace(
            list(self.packets) + list(other.packets),
            merged_flows,
            name=name or f"{self.name}+{other.name}",
        )

    def summary(self) -> str:
        """A one-line human-readable description."""
        return (
            f"{self.name}: {len(self.packets)} packets, {len(self.flows)} flows, "
            f"{self.total_wire_bytes / 1e6:.2f} MB, native {self.native_rate_bps / 1e9:.3f} Gbit/s"
        )
