"""Prefix-preserving IP anonymization for shareable traces.

Campus traces like the paper's cannot be published raw.  The standard
remedy is Crypto-PAn-style *prefix-preserving* anonymization: two
addresses sharing a k-bit prefix map to addresses sharing exactly a
k-bit prefix, so subnet structure (and therefore most analyses)
survives while identities do not.

This is the classic one-bit-at-a-time construction: for each bit
position ``i``, the output bit is the input bit XOR a pseudorandom
function of the ``i``-bit input prefix.  The PRF here is keyed
BLAKE2s — deterministic for a given key, infeasible to invert without
it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from ..netstack.packet import Packet

__all__ = ["PrefixPreservingAnonymizer", "anonymize_trace"]


class PrefixPreservingAnonymizer:
    """Keyed prefix-preserving permutation of IPv4 addresses."""

    def __init__(self, key: bytes = b"scap-repro-default-key"):
        if not key:
            raise ValueError("key must be non-empty")
        self._key = key
        self._cache: Dict[int, int] = {}

    def _prf_bit(self, prefix: int, width: int) -> int:
        """One pseudorandom bit from the ``width``-bit ``prefix``."""
        digest = hashlib.blake2s(
            width.to_bytes(1, "big") + prefix.to_bytes(5, "big"),
            key=self._key,
            digest_size=1,
        ).digest()
        return digest[0] & 1

    def anonymize(self, address: int) -> int:
        """Map one 32-bit address, preserving prefix relationships."""
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        result = 0
        prefix = 0
        for position in range(32):
            bit = (address >> (31 - position)) & 1
            flip = self._prf_bit(prefix, position)
            result = (result << 1) | (bit ^ flip)
            prefix = (prefix << 1) | bit
        self._cache[address] = result
        return result

    def anonymize_packet(self, packet: Packet) -> Packet:
        """Anonymize a packet's addresses in place; returns the packet."""
        if packet.ip is not None:
            packet.ip.src_ip = self.anonymize(packet.ip.src_ip)
            packet.ip.dst_ip = self.anonymize(packet.ip.dst_ip)
            packet.ip.checksum = None  # recomputed on serialization
        return packet


def anonymize_trace(
    packets: Iterable[Packet], key: bytes = b"scap-repro-default-key"
) -> List[Packet]:
    """Anonymize every packet (mutating); returns the list."""
    anonymizer = PrefixPreservingAnonymizer(key)
    return [anonymizer.anonymize_packet(packet) for packet in packets]
