"""The §7 analysis of Prioritized Packet Loss.

PPL reserves ``N`` packet slots above the base threshold per priority
band.  Section 7 models the band as an M/M/1/N queue (Poisson arrivals,
exponential service) and asks how large ``N`` must be for high-priority
packets to (almost) never drop.

* :func:`mm1n_loss_probability` — equation (1): the blocking
  probability of an M/M/1/N queue,  P = (1−ρ)ρᴺ / (1−ρᴺ⁺¹).
* :func:`two_class_loss_probabilities` — equations (2)–(3): the
  2N-state birth–death chain for low(medium)/high priority classes
  where the lower class is admitted only in the first N states.
* :func:`multi_class_loss_probabilities` — the natural generalization
  to ``n`` classes (N states per band), solved in closed form band by
  band; cross-validated against the exact numeric solver in
  :mod:`repro.analysis.markov`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "mm1n_loss_probability",
    "two_class_loss_probabilities",
    "multi_class_loss_probabilities",
]


def _geometric_sum(rho: float, terms: int) -> float:
    """sum_{k=0}^{terms-1} rho^k, stable at rho == 1."""
    if terms <= 0:
        return 0.0
    if abs(rho - 1.0) < 1e-12:
        return float(terms)
    return (1.0 - rho**terms) / (1.0 - rho)


def mm1n_loss_probability(rho: float, slots: int) -> float:
    """Equation (1): blocking probability of an M/M/1/N queue.

    ``rho`` is the offered load (λ/μ); ``slots`` is N, the number of
    packet slots.  By PASTA this is exactly the packet loss
    probability.
    """
    if rho < 0:
        raise ValueError("rho must be non-negative")
    if slots < 0:
        raise ValueError("slots must be non-negative")
    if rho == 0.0:
        return 0.0
    return rho**slots / _geometric_sum(rho, slots + 1)


def two_class_loss_probabilities(
    rho_low: float, rho_high: float, slots: int
) -> Tuple[float, float]:
    """Equations (2)–(3): loss for (medium, high) priority classes.

    The chain has 2N+1 states.  In states 0..N−1 both classes are
    admitted (up-rate λ₁+λ₂, i.e. ρ₁ = (λ₁+λ₂)/μ); in states N..2N−1
    only the high class is (up-rate λ₂, ρ₂ = λ₂/μ).

    Returns ``(loss_medium, loss_high)`` where the medium-class loss is
    the probability of finding the chain at or beyond state N, and the
    high-class loss is the probability of state 2N.
    """
    if slots < 1:
        raise ValueError("need at least one slot per band")
    rho1, rho2 = rho_low, rho_high
    # Stationary distribution: pi_k = rho1^k * p0 for k <= N;
    # pi_{N+j} = rho1^N * rho2^j * p0 for 1 <= j <= N.
    normalization = _geometric_sum(rho1, slots + 1)
    tail = rho1**slots * rho2 * _geometric_sum(rho2, slots)
    p0 = 1.0 / (normalization + tail)
    loss_high = rho1**slots * rho2**slots * p0
    # Medium packets are blocked in states >= N.
    blocked = rho1**slots * (1.0 + rho2 * _geometric_sum(rho2, slots)) * p0
    return blocked, loss_high


def multi_class_loss_probabilities(
    rhos: Sequence[float], slots: int
) -> List[float]:
    """Loss probability per class for ``n`` priority bands of N slots.

    ``rhos[i]`` is the *cumulative* offered load admitted in band ``i``
    — i.e. (Σ_{j>=i} λ_j)/μ, classes i and above — mirroring §7 where
    ρ₁ = (λ₁+λ₂)/μ covers both classes and ρ₂ = λ₂/μ only the high one.
    Class ``i`` is blocked once the chain reaches state (i+1)·N.

    Returns losses ordered lowest priority first.  For ``n = 1`` this
    reduces to :func:`mm1n_loss_probability`; for ``n = 2`` it matches
    :func:`two_class_loss_probabilities`.
    """
    if slots < 1:
        raise ValueError("need at least one slot per band")
    if not rhos:
        raise ValueError("need at least one class")
    bands = len(rhos)
    # Unnormalized stationary probabilities, band by band.
    weights: List[float] = [1.0]
    level = 1.0
    for band in range(bands):
        rho = rhos[band]
        for _ in range(slots):
            level *= rho
            weights.append(level)
    total = sum(weights)
    losses: List[float] = []
    for band in range(bands):
        blocked_from = (band + 1) * slots
        losses.append(sum(weights[blocked_from:]) / total)
    return losses
