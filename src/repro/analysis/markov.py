"""Exact birth–death Markov chain solver.

Cross-validates the closed forms in :mod:`repro.analysis.mm1n` and
supports arbitrary state-dependent rates (e.g. modelling PPL bands of
unequal width, or service rates that degrade under load).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["birth_death_stationary", "BirthDeathChain"]


def birth_death_stationary(
    birth_rates: Sequence[float], death_rates: Sequence[float]
) -> np.ndarray:
    """Stationary distribution of a finite birth–death chain.

    ``birth_rates[k]`` is the rate from state k to k+1 (length n−1 for
    an n-state chain); ``death_rates[k]`` the rate from k+1 to k.  Uses
    the detailed-balance product form, normalized, in log space for
    numerical stability with long chains.
    """
    if len(birth_rates) != len(death_rates):
        raise ValueError("birth and death rate vectors must have equal length")
    births = np.asarray(birth_rates, dtype=float)
    deaths = np.asarray(death_rates, dtype=float)
    if np.any(births < 0) or np.any(deaths <= 0):
        raise ValueError("rates must be non-negative (deaths strictly positive)")
    with np.errstate(divide="ignore"):
        log_ratios = np.log(births) - np.log(deaths)
    log_weights = np.concatenate([[0.0], np.cumsum(log_ratios)])
    log_weights -= log_weights.max()
    weights = np.exp(log_weights)
    return weights / weights.sum()


class BirthDeathChain:
    """A finite birth–death chain with convenience queries."""

    def __init__(self, birth_rates: Sequence[float], death_rates: Sequence[float]):
        self.birth_rates = list(birth_rates)
        self.death_rates = list(death_rates)
        self.stationary = birth_death_stationary(birth_rates, death_rates)

    @property
    def state_count(self) -> int:
        return len(self.stationary)

    def probability_at_or_above(self, state: int) -> float:
        """P[chain state >= state] under the stationary distribution."""
        if state <= 0:
            return 1.0
        if state >= self.state_count:
            return 0.0
        return float(self.stationary[state:].sum())

    def blocking_probability(self) -> float:
        """Probability of the last (full) state — the loss probability
        for arrivals admitted everywhere (PASTA)."""
        return float(self.stationary[-1])

    @classmethod
    def ppl_chain(
        cls, rhos: Sequence[float], slots: int, service_rate: float = 1.0
    ) -> "BirthDeathChain":
        """Build the §7 PPL chain: ``len(rhos)`` bands of ``slots`` states.

        ``rhos[i]`` is the cumulative load admitted in band ``i`` (see
        :func:`repro.analysis.mm1n.multi_class_loss_probabilities`).
        """
        birth: List[float] = []
        for rho in rhos:
            birth.extend([rho * service_rate] * slots)
        death = [service_rate] * len(birth)
        return cls(birth, death)
