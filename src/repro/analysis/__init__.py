"""Analytic models from §7: M/M/1/N and priority birth–death chains."""

from .markov import BirthDeathChain, birth_death_stationary
from .mm1n import (
    mm1n_loss_probability,
    multi_class_loss_probabilities,
    two_class_loss_probabilities,
)

__all__ = [
    "BirthDeathChain",
    "birth_death_stationary",
    "mm1n_loss_probability",
    "multi_class_loss_probabilities",
    "two_class_loss_probabilities",
]
