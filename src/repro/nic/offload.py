"""The generic hardware offload stage: per-batch drop/steer verdicts.

This generalizes the Flow Director table into the offload pipeline
stage of a programmable NIC (after Deri et al.'s hardware flow-offload
fast path): given a :class:`~repro.nic.batch.PacketBatch`, fill in the
batch's verdict and queue vectors — FCS drop, FDIR drop (subzero
copy), FDIR steer, or RSS — before a single packet is charged to host
cost-model accounting.

Verdict computation is side-effect free: no NIC counter moves and no
filter-match statistics are recorded here.  The runtime accounts each
verdict when (and only when) it consumes the packet, so a batch tail
re-classified after a mid-batch filter install or removal never
double-counts.  ``FlowDirectorTable.version`` is the coherence signal:
the runtime re-runs :meth:`OffloadEngine.classify` over the unconsumed
tail whenever the version moved, which makes verdicts identical to
classifying every packet immediately before its softirq — i.e. to the
per-packet path.
"""

from __future__ import annotations

from .batch import (
    PacketBatch,
    VERDICT_DROP_FCS,
    VERDICT_DROP_FDIR,
    VERDICT_HOST,
    VERDICT_STEERED,
)
from .fdir import FDIR_DROP, FlowDirectorTable
from .rss import RSSHasher

__all__ = ["OffloadEngine"]


class OffloadEngine:  # scapcheck: single-owner
    """Evaluates a batch's hardware verdicts against FDIR + RSS.

    Single-owner: one engine per simulated NIC, driven only by that
    NIC's runtime; there is no cross-core sharing to lock against.
    """

    def __init__(self, fdir: FlowDirectorTable, rss: RSSHasher, queue_count: int):
        self.fdir = fdir
        self.rss = rss
        self.queue_count = queue_count

    # ------------------------------------------------------------------
    def classify(self, batch: PacketBatch, start: int = 0) -> int:
        """Fill ``batch.verdicts``/``batch.queues`` from ``start`` on.

        Pure verdict computation — no counters move.  Returns the FDIR
        table version the verdicts are valid against; the runtime
        re-classifies the unconsumed tail when the version changes.
        """
        fdir = self.fdir
        packets = batch.packets
        five_tuples = batch.five_tuples
        queues = batch.queues
        verdicts = batch.verdicts
        queue_count = self.queue_count
        fdir_empty = len(fdir) == 0
        # Per-batch queue memo for the RSS fallback: valid because RSS
        # is a pure function of the five-tuple and the key/queue count
        # never change mid-run.
        rss_queue = self.rss.queue_for
        queue_cache: dict = {}
        for index in range(start, len(packets)):
            packet = packets[index]
            if packet.fcs_corrupt:
                verdicts[index] = VERDICT_DROP_FCS
                continue
            five_tuple = five_tuples[index]
            if not fdir_empty:
                matched = fdir.peek(packet, five_tuple)
                if matched is not None:
                    if matched.action_queue == FDIR_DROP:
                        verdicts[index] = VERDICT_DROP_FDIR
                    else:
                        verdicts[index] = VERDICT_STEERED
                        queues[index] = matched.action_queue % queue_count
                    continue
            verdicts[index] = VERDICT_HOST
            if five_tuple is None:
                queues[index] = 0  # non-IP frames land on queue 0
            else:
                queue = queue_cache.get(five_tuple)
                if queue is None:
                    queue = rss_queue(five_tuple)
                    queue_cache[five_tuple] = queue
                queues[index] = queue
        return fdir.version
