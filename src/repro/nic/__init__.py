"""Simulated NIC: RSS, Flow Director filters, offload stage, batching."""

from .batch import (
    VERDICT_DROP_FCS,
    VERDICT_DROP_FDIR,
    VERDICT_HOST,
    VERDICT_PENDING,
    VERDICT_STEERED,
    PacketBatch,
)
from .fdir import (
    FDIR_DROP,
    FLEX_OFFSET_TCP_FLAGS,
    FdirFilter,
    FlowDirectorTable,
    tcp_flags_word,
)
from .nic import NICStats, SimulatedNIC
from .offload import OffloadEngine
from .rss import MICROSOFT_RSS_KEY, SYMMETRIC_RSS_KEY, RSSHasher, toeplitz_hash

__all__ = [
    "FDIR_DROP",
    "FLEX_OFFSET_TCP_FLAGS",
    "FdirFilter",
    "FlowDirectorTable",
    "tcp_flags_word",
    "NICStats",
    "SimulatedNIC",
    "OffloadEngine",
    "PacketBatch",
    "VERDICT_PENDING",
    "VERDICT_HOST",
    "VERDICT_STEERED",
    "VERDICT_DROP_FDIR",
    "VERDICT_DROP_FCS",
    "MICROSOFT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "RSSHasher",
    "toeplitz_hash",
]
