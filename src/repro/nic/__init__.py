"""Simulated NIC: RSS, Flow Director filters, queue steering."""

from .fdir import (
    FDIR_DROP,
    FLEX_OFFSET_TCP_FLAGS,
    FdirFilter,
    FlowDirectorTable,
    tcp_flags_word,
)
from .nic import NICStats, SimulatedNIC
from .rss import MICROSOFT_RSS_KEY, SYMMETRIC_RSS_KEY, RSSHasher, toeplitz_hash

__all__ = [
    "FDIR_DROP",
    "FLEX_OFFSET_TCP_FLAGS",
    "FdirFilter",
    "FlowDirectorTable",
    "tcp_flags_word",
    "NICStats",
    "SimulatedNIC",
    "MICROSOFT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "RSSHasher",
    "toeplitz_hash",
]
