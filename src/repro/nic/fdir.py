"""Flow Director (FDIR) hardware filters, as on the Intel 82599.

An FDIR *perfect-match* filter matches a packet's five-tuple plus an
optional *flexible 2-byte tuple* — two bytes at a fixed offset within
the first 64 bytes of the packet.  Matching packets are steered to a
hardware queue; steering to an unused queue drops them before they ever
reach main memory (the paper's "subzero copy", §2.1/§5.5).

Scap installs, per cut-off stream, two DROP filters whose flex tuple
matches the TCP data-offset/flags word: one for plain ACK segments and
one for ACK|PSH — so data is dropped in hardware while SYN/FIN/RST
still reach the kernel for termination tracking.

Capacity management mirrors §5.5: each filter carries a timeout; when
the table is full, the filter with the smallest timeout is evicted
(it does not correspond to a long-lived stream); reinstalled filters
get a doubled timeout so long-lived flows are evicted only a
logarithmic number of times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netstack.flows import FiveTuple
from ..netstack.packet import Packet
from ..observability import HOOK_FDIR_EVICT, NULL_OBSERVABILITY, Observability

__all__ = [
    "FDIR_DROP",
    "FdirFilter",
    "FlowDirectorTable",
    "tcp_flags_word",
    "FLEX_OFFSET_TCP_FLAGS",
]

# Queue index used as the "drop" action: a queue no core ever reads.
FDIR_DROP = -1

# Byte offset (within the frame) of the TCP data-offset/flags 16-bit
# word: 14 (Ethernet) + 20 (IPv4) + 12.
FLEX_OFFSET_TCP_FLAGS = 46


def tcp_flags_word(packet: Packet) -> Optional[int]:
    """The 16-bit TCP offset/reserved/flags word, or None for non-TCP.

    For our option-less TCP headers the data offset is always 5, so the
    word is ``0x5000 | flags`` — the value the modified NIC driver
    extracts with the flexible 2-byte tuple at offset 46.
    """
    if packet.tcp is None:
        return None
    return (5 << 12) | packet.tcp.flags


@dataclass
class FdirFilter:
    """One perfect-match filter."""

    five_tuple: FiveTuple
    action_queue: int  # FDIR_DROP or an RX queue index
    flex_offset: Optional[int] = None
    flex_value: Optional[int] = None
    timeout_at: float = 0.0  # virtual time at which Scap removes it
    timeout_interval: float = 0.0  # current interval (doubles on re-install)


class FlowDirectorTable:  # scapcheck: single-owner
    """The NIC's filter table: add/remove/match with capacity + eviction.

    Matching is exact on the directional five-tuple; a filter with a
    flex tuple additionally requires the flex bytes to equal
    ``flex_value``.  Hardware matching costs the host nothing.

    Single-owner: only the simulated NIC (one per runtime) touches the
    table; there is no cross-core sharing to lock against.
    """

    def __init__(
        self,
        capacity: int = 8192,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
    ):
        if capacity < 1:
            raise ValueError("filter table capacity must be positive")
        self.capacity = capacity
        self._by_tuple: Dict[FiveTuple, List[FdirFilter]] = {}
        self._count = 0
        #: Coherence counter for batch classification: bumped on every
        #: table mutation (install, removal, eviction).  The runtime's
        #: batched path re-classifies the unconsumed tail of a batch
        #: whenever the version moved, so verdicts computed ahead of
        #: time stay identical to per-packet classification.
        self.version = 0
        self.installed_total = 0
        self.evicted_total = 0
        self.matched_total = 0
        self.dropped_at_nic = 0
        self._obs = observability or NULL_OBSERVABILITY
        self._san = sanitizers
        registry = self._obs.registry
        self._m_installs = registry.counter(
            "scap_fdir_installs_total", "FDIR filters installed"
        )
        self._m_evictions = registry.counter(
            "scap_fdir_evictions_total", "FDIR filters evicted (table full)"
        )
        self._m_active = registry.gauge(
            "scap_fdir_filters_active", "FDIR filters currently in the table"
        )
        self._m_matches = registry.counter(
            "scap_fdir_matches_total", "packets matched by an FDIR filter"
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

    def add(self, new_filter: FdirFilter, now: float = 0.0) -> bool:
        """Install a filter, evicting the smallest-timeout one if full.

        ``now`` (simulated time) is only used to timestamp trace events
        when observability is enabled.  Returns False only if the table
        is full of filters that all have *later* timeouts and eviction
        was impossible (never happens with Scap's policy, which always
        evicts; kept for API completeness).
        """
        if self._count >= self.capacity:
            self._evict_smallest_timeout(now)
        bucket = self._by_tuple.setdefault(new_filter.five_tuple, [])
        bucket.append(new_filter)
        self._count += 1
        self.version += 1
        self.installed_total += 1
        if self._obs.enabled:
            self._m_installs.inc()
            self._m_active.set(self._count)
        if self._san is not None:
            self._san.fdir.on_table(self)
        return True

    def _evict_smallest_timeout(self, now: float = 0.0) -> None:
        victim_tuple: Optional[FiveTuple] = None
        victim: Optional[FdirFilter] = None
        for five_tuple, bucket in self._by_tuple.items():
            for candidate in bucket:
                if victim is None or candidate.timeout_at < victim.timeout_at:
                    victim = candidate
                    victim_tuple = five_tuple
        if victim is None or victim_tuple is None:
            return
        if self._san is not None:
            self._san.fdir.on_evict(victim, self)
        self._by_tuple[victim_tuple].remove(victim)
        if not self._by_tuple[victim_tuple]:
            del self._by_tuple[victim_tuple]
        self._count -= 1
        self.version += 1
        self.evicted_total += 1
        if self._obs.enabled:
            self._m_evictions.inc()
            self._m_active.set(self._count)
            self._obs.trace.emit(
                now,
                HOOK_FDIR_EVICT,
                five_tuple=str(victim_tuple),
                timeout_at=victim.timeout_at,
            )

    def remove_for_tuple(self, five_tuple: FiveTuple) -> int:
        """Remove all filters for a directional five-tuple; return count."""
        bucket = self._by_tuple.pop(five_tuple, None)
        if bucket is None:
            return 0
        self._count -= len(bucket)
        self.version += 1
        if self._obs.enabled:
            self._m_active.set(self._count)
        if self._san is not None:
            self._san.fdir.on_table(self)
        return len(bucket)

    def remove_for_stream(self, five_tuple: FiveTuple) -> int:
        """Remove filters for both directions of a connection."""
        return self.remove_for_tuple(five_tuple) + self.remove_for_tuple(
            five_tuple.reversed()
        )

    def filters_for_stream(self, five_tuple: FiveTuple) -> List[FdirFilter]:
        """All filters installed for either direction of a connection."""
        return list(self._by_tuple.get(five_tuple, [])) + list(
            self._by_tuple.get(five_tuple.reversed(), [])
        )

    # ------------------------------------------------------------------
    def peek(
        self, packet: Packet, five_tuple: Optional[FiveTuple] = None
    ) -> Optional[FdirFilter]:
        """The first filter matching ``packet``, without accounting.

        Pure lookup for the batched offload stage, which may classify a
        packet more than once (the batch tail is re-classified after a
        mid-batch table mutation); match statistics are recorded via
        :meth:`count_match` when the verdict is actually consumed.
        ``five_tuple`` may be passed to reuse an already-computed tuple.
        """
        if five_tuple is None:
            five_tuple = packet.five_tuple
        if five_tuple is None:
            return None
        bucket = self._by_tuple.get(five_tuple)
        if not bucket:
            return None
        flags_word = tcp_flags_word(packet)
        for candidate in bucket:
            if candidate.flex_value is None:
                return candidate
            if (
                candidate.flex_offset == FLEX_OFFSET_TCP_FLAGS
                and flags_word is not None
                and flags_word == candidate.flex_value
            ):
                return candidate
        return None

    def count_match(self, count: int = 1) -> None:
        """Record ``count`` consumed filter matches (batched path)."""
        self.matched_total += count
        if self._obs.enabled:
            self._m_matches.inc(count)

    def match(self, packet: Packet) -> Optional[FdirFilter]:
        """The first filter matching ``packet``, or None."""
        matched = self.peek(packet)
        if matched is not None:
            self.matched_total += 1
            if self._obs.enabled:
                self._m_matches.inc()
        return matched

    def expired(self, now: float) -> List[FdirFilter]:
        """Filters whose timeout has passed (Scap removes these)."""
        return [
            candidate
            for bucket in self._by_tuple.values()
            for candidate in bucket
            if candidate.timeout_at <= now
        ]

    def remove_filter(self, target: FdirFilter) -> bool:
        """Remove one specific filter object."""
        bucket = self._by_tuple.get(target.five_tuple)
        if not bucket or target not in bucket:
            return False
        bucket.remove(target)
        if not bucket:
            del self._by_tuple[target.five_tuple]
        self._count -= 1
        self.version += 1
        if self._obs.enabled:
            self._m_active.set(self._count)
        if self._san is not None:
            self._san.fdir.on_table(self)
        return True
