"""Receive-Side Scaling: the Toeplitz hash and queue selection.

The NIC spreads incoming packets over hardware RX queues by hashing the
packet 5-tuple fields with the Toeplitz function.  With the standard
Microsoft key the two directions of one TCP connection usually hash to
*different* queues; Woo and Park showed that a key built from one
repeating 16-bit pattern makes the hash symmetric, so Scap configures
the NIC with such a key and both directions land on the same core
(§4.2 of the paper).
"""

from __future__ import annotations

import struct
from ..netstack.flows import FiveTuple
from ..netstack.ip import IPProtocol

__all__ = [
    "toeplitz_hash",
    "MICROSOFT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "RSSHasher",
]

# The de-facto standard verification key from the Microsoft RSS spec.
MICROSOFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)

# Repeating 0x6d5a pattern: hash(src,dst) == hash(dst,src) for the
# 4-tuple input layout, per Woo & Park (2012).
SYMMETRIC_RSS_KEY = bytes([0x6D, 0x5A] * 20)


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """The Toeplitz hash as specified for RSS.

    For each set bit of ``data`` (MSB first), XOR in the 32-bit window
    of ``key`` starting at that bit position.
    """
    if len(key) < len(data) + 4:
        raise ValueError("RSS key too short for input")
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    bit_index = 0
    for byte in data:
        for bit in range(7, -1, -1):
            if byte & (1 << bit):
                shift = key_bits - 32 - bit_index
                result ^= (key_int >> shift) & 0xFFFFFFFF
            bit_index += 1
    return result


class RSSHasher:
    """Maps packets to RX queues via the Toeplitz hash of the 4-tuple.

    TCP and UDP use the (src ip, dst ip, src port, dst port) input; other
    IP protocols hash only the address pair.  Results are memoised per
    five-tuple — real hardware computes the hash per packet, but it is a
    pure function, so caching is behaviour-preserving.
    """

    def __init__(self, queue_count: int, key: bytes = SYMMETRIC_RSS_KEY):
        if queue_count < 1:
            raise ValueError("need at least one RSS queue")
        self.queue_count = queue_count
        self.key = key
        self._cache: dict = {}

    def hash_value(self, five_tuple: FiveTuple) -> int:
        """The 32-bit Toeplitz hash for ``five_tuple`` (memoised)."""
        cached = self._cache.get(five_tuple)
        if cached is not None:
            return cached
        if five_tuple.protocol in (IPProtocol.TCP, IPProtocol.UDP):
            data = struct.pack(
                "!IIHH",
                five_tuple.src_ip,
                five_tuple.dst_ip,
                five_tuple.src_port,
                five_tuple.dst_port,
            )
        else:
            data = struct.pack("!II", five_tuple.src_ip, five_tuple.dst_ip)
        value = toeplitz_hash(self.key, data)
        self._cache[five_tuple] = value
        return value

    def queue_for(self, five_tuple: FiveTuple) -> int:
        """The RX queue index for ``five_tuple``."""
        return self.hash_value(five_tuple) % self.queue_count
