"""Packet batches: the unit of work on the batched hot path.

Moving one Python object per packet per pipeline hop is exactly the
per-packet overhead the paper removes from the kernel (§2, §4); the
batched fast path moves a :class:`PacketBatch` instead.  A batch is a
read-only view over a bounded run of consecutively arriving packets:

* ``packets``      — the packets, in arrival order;
* ``five_tuples``  — each packet's directional five-tuple, computed
  exactly once per packet (the per-packet path recomputes the property
  at every classification and lookup site);
* ``arena``        — one contiguous ``bytes`` buffer holding every
  payload back to back, built lazily on first use;
* ``payload_view(i)`` — a zero-copy ``memoryview`` slice of the arena
  for packet ``i``;
* ``queues`` / ``verdicts`` — the per-batch RSS/FDIR verdict vectors
  filled in by the NIC's offload stage before any packet is charged to
  host cost-model accounting.

The batch carries *hardware* decisions only; all kernel-visible side
effects (counters, trace hooks, sanitizer calls) happen per packet as
the runtime consumes the batch, which is what keeps the batched path
byte-identical to ``SCAP_BATCH=0``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..netstack.flows import FiveTuple
from ..netstack.packet import Packet

__all__ = [
    "PacketBatch",
    "VERDICT_PENDING",
    "VERDICT_HOST",
    "VERDICT_STEERED",
    "VERDICT_DROP_FDIR",
    "VERDICT_DROP_FCS",
]

#: Verdict vector states.  ``PENDING`` only ever appears before the
#: offload stage ran over the slot; the runtime never consumes it.
VERDICT_PENDING = -1
#: Deliver to the host on the RSS-selected queue.
VERDICT_HOST = 0
#: Deliver to the host on a queue chosen by an FDIR steering filter.
VERDICT_STEERED = 1
#: Dropped in hardware by an FDIR drop filter (subzero copy, §5.5).
VERDICT_DROP_FDIR = 2
#: Dropped by the MAC for a bad frame checksum.
VERDICT_DROP_FCS = 3


class PacketBatch:
    """A bounded run of packets moving through the pipeline together."""

    __slots__ = (
        "packets",
        "five_tuples",
        "queues",
        "verdicts",
        "_arena",
        "_bounds",
        "_views",
    )

    def __init__(self, packets: Sequence[Packet]):
        self.packets: List[Packet] = list(packets)
        # One property evaluation per packet for the whole pipeline.
        self.five_tuples: List[Optional[FiveTuple]] = [
            packet.five_tuple for packet in self.packets
        ]
        count = len(self.packets)
        self.queues: List[int] = [0] * count
        self.verdicts: List[int] = [VERDICT_PENDING] * count
        self._arena: Optional[bytes] = None
        self._bounds: Optional[List[int]] = None
        self._views: Optional[List[memoryview]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packets)

    @property
    def arena(self) -> bytes:
        """All payloads of the batch, back to back in one buffer."""
        if self._arena is None:
            self._build_arena()
        assert self._arena is not None
        return self._arena

    def _build_arena(self) -> None:
        bounds: List[int] = [0]
        offset = 0
        for packet in self.packets:
            offset += len(packet.payload)
            bounds.append(offset)
        self._arena = b"".join(packet.payload for packet in self.packets)
        self._bounds = bounds

    def payload_view(self, index: int) -> memoryview:
        """Packet ``index``'s payload as a zero-copy slice of the arena."""
        views = self._views
        if views is None:
            if self._arena is None:
                self._build_arena()
            assert self._arena is not None and self._bounds is not None
            arena = memoryview(self._arena)
            bounds = self._bounds
            views = [
                arena[bounds[i]:bounds[i + 1]] for i in range(len(self.packets))
            ]
            self._views = views
        return views[index]

    # ------------------------------------------------------------------
    def total_wire_bytes(self) -> int:
        """Sum of wire lengths across the batch."""
        return sum(packet.wire_len for packet in self.packets)
