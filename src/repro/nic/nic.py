"""The simulated 10GbE NIC front-end: FDIR first, then RSS.

Every arriving packet is classified in "hardware": if a Flow Director
filter matches, its action applies (steer to a queue, or drop before
DMA — the subzero-copy path); otherwise RSS picks the queue.  The
classification costs the host no cycles, exactly like the real card.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..netstack.packet import Packet
from ..observability import Observability
from .batch import PacketBatch
from .fdir import FDIR_DROP, FlowDirectorTable
from .offload import OffloadEngine
from .rss import SYMMETRIC_RSS_KEY, RSSHasher

__all__ = ["SimulatedNIC", "NICStats"]


@dataclass
class NICStats:
    """Aggregate NIC counters (the card offers no per-filter statistics,
    which is why Scap estimates flow sizes from FIN/RST sequence
    numbers — §5.5)."""

    received: int = 0
    dropped_at_nic: int = 0
    steered_by_fdir: int = 0
    fcs_errors: int = 0
    per_queue: List[int] = field(default_factory=list)


class SimulatedNIC:
    """RX-side model of an Intel 82599-class adapter."""

    def __init__(
        self,
        queue_count: int = 8,
        rss_key: bytes = SYMMETRIC_RSS_KEY,
        fdir_capacity: int = 8192,
        observability: Optional[Observability] = None,
        sanitizers: Optional[object] = None,
    ):
        self.queue_count = queue_count
        self.rss = RSSHasher(queue_count, key=rss_key)
        self.fdir = FlowDirectorTable(
            fdir_capacity, observability=observability, sanitizers=sanitizers
        )
        self.offload = OffloadEngine(self.fdir, self.rss, queue_count)
        self.stats = NICStats(per_queue=[0] * queue_count)

    def classify(self, packet: Packet) -> Optional[int]:
        """Return the RX queue for ``packet``, or None if dropped in hardware.

        FDIR perfect-match filters take precedence over RSS, as on the
        82599.
        """
        self.stats.received += 1
        if packet.fcs_corrupt:
            # Bad checksum: the MAC drops the frame before FDIR/RSS
            # ever see it; only the error counter records it existed.
            self.stats.fcs_errors += 1
            return None
        matched = self.fdir.match(packet)
        if matched is not None:
            if matched.action_queue == FDIR_DROP:
                self.stats.dropped_at_nic += 1
                self.fdir.dropped_at_nic += 1
                return None
            self.stats.steered_by_fdir += 1
            queue = matched.action_queue % self.queue_count
            self.stats.per_queue[queue] += 1
            return queue
        five_tuple = packet.five_tuple
        if five_tuple is None:
            queue = 0  # non-IP frames land on queue 0
        else:
            queue = self.rss.queue_for(five_tuple)
        self.stats.per_queue[queue] += 1
        return queue

    def classify_batch(self, batch: PacketBatch, start: int = 0) -> int:
        """Fill the batch's verdict/queue vectors via the offload stage.

        Side-effect free (see :class:`~repro.nic.offload.OffloadEngine`);
        returns the FDIR table version the verdicts are valid against.
        The runtime accounts each verdict at consumption time through
        :meth:`apply_batch_stats`, keeping :class:`NICStats` identical
        to per-packet :meth:`classify`.
        """
        return self.offload.classify(batch, start)

    def apply_batch_stats(
        self,
        received: int,
        fcs_errors: int,
        fdir_drops: int,
        steered: int,
        matched: int,
        per_queue: List[int],
    ) -> None:
        """Fold one consumed batch's hardware accounting into the stats."""
        stats = self.stats
        stats.received += received
        stats.fcs_errors += fcs_errors
        stats.dropped_at_nic += fdir_drops
        self.fdir.dropped_at_nic += fdir_drops
        stats.steered_by_fdir += steered
        if matched:
            self.fdir.count_match(matched)
        stats_per_queue = stats.per_queue
        for queue, count in enumerate(per_queue):
            if count:
                stats_per_queue[queue] += count

    def reset_stats(self) -> None:
        """Zero the NIC counters (filters and RSS state are kept)."""
        self.stats = NICStats(per_queue=[0] * self.queue_count)
