"""Tests for anonymization and trace inspection utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netstack import make_tcp_packet
from repro.traffic import Trace, campus_mix
from repro.traffic.anonymize import PrefixPreservingAnonymizer, anonymize_trace
from repro.traffic.inspect import filter_trace, slice_time, summarize


def _common_prefix_len(a: int, b: int) -> int:
    for position in range(32):
        shift = 31 - position
        if (a >> shift) & 1 != (b >> shift) & 1:
            return position
    return 32


class TestAnonymizer:
    def test_deterministic_per_key(self):
        first = PrefixPreservingAnonymizer(b"k1")
        second = PrefixPreservingAnonymizer(b"k1")
        assert first.anonymize(0x0A010203) == second.anonymize(0x0A010203)

    def test_different_keys_differ(self):
        a = PrefixPreservingAnonymizer(b"k1").anonymize(0x0A010203)
        b = PrefixPreservingAnonymizer(b"k2").anonymize(0x0A010203)
        assert a != b

    def test_injective_on_sample(self):
        anonymizer = PrefixPreservingAnonymizer()
        inputs = [0x0A000000 + i for i in range(500)]
        outputs = {anonymizer.anonymize(address) for address in inputs}
        assert len(outputs) == len(inputs)

    def test_addresses_change(self):
        anonymizer = PrefixPreservingAnonymizer(b"key")
        changed = sum(
            1 for i in range(64) if anonymizer.anonymize(i * 7919) != i * 7919
        )
        assert changed > 60

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(0, 2**32 - 1),
        b=st.integers(0, 2**32 - 1),
    )
    def test_prefix_preservation_property(self, a, b):
        """The defining property: shared prefix length is preserved
        exactly (Crypto-PAn semantics)."""
        anonymizer = PrefixPreservingAnonymizer(b"prop")
        shared_in = _common_prefix_len(a, b)
        shared_out = _common_prefix_len(
            anonymizer.anonymize(a), anonymizer.anonymize(b)
        )
        assert shared_in == shared_out

    def test_packet_anonymization_reversible_structure(self):
        packet = make_tcp_packet(0x0A000001, 1234, 0xC0A80001, 80, payload=b"x")
        original_ports = (packet.src_port, packet.dst_port)
        anonymize_trace([packet], key=b"zz")
        assert packet.ip.src_ip != 0x0A000001
        assert (packet.src_port, packet.dst_port) == original_ports
        # The packet still serializes with a valid checksum.
        from repro.netstack import Packet

        assert Packet.parse(packet.to_bytes()).ip.verify_checksum()

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(b"")


class TestInspect:
    @pytest.fixture(scope="class")
    def trace(self):
        return campus_mix(flow_count=50, seed=61)

    def test_summary_totals(self, trace):
        summary = summarize(trace)
        assert summary.packets == len(trace)
        assert summary.wire_bytes == trace.total_wire_bytes
        assert summary.flows == len({f.five_tuple.canonical() for f in trace.flows})
        assert summary.duration == pytest.approx(trace.duration)
        assert summary.average_rate_bps == pytest.approx(trace.native_rate_bps, rel=1e-6)

    def test_summary_protocol_mix(self, trace):
        summary = summarize(trace)
        assert summary.protocol_packets["tcp"] > summary.protocol_packets.get("udp", 0)
        assert sum(summary.size_histogram.values()) == summary.packets

    def test_format_renders(self, trace):
        text = summarize(trace).format()
        assert "packets:" in text and "top ports" in text

    def test_slice_time(self, trace):
        middle = trace.duration / 2
        first_half = slice_time(trace, 0.0, middle)
        second_half = slice_time(trace, middle, trace.duration + 1)
        assert len(first_half) + len(second_half) == len(trace)
        assert all(p.timestamp < middle for p in first_half)
        with pytest.raises(ValueError):
            slice_time(trace, 5.0, 1.0)

    def test_filter_trace(self, trace):
        web = filter_trace(trace, "tcp port 80")
        assert 0 < len(web) < len(trace)
        assert all(80 in (p.src_port, p.dst_port) for p in web)
        assert "tcp port 80" in web.name

    def test_empty_summary(self):
        summary = summarize(Trace([]))
        assert summary.packets == 0 and summary.average_rate_bps == 0.0
