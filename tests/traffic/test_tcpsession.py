"""Tests for TCP session synthesis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netstack import (
    CLIENT_TO_SERVER,
    SERVER_TO_CLIENT,
    FiveTuple,
    IPProtocol,
    TCPFlags,
    seq_add,
)
from repro.traffic import Impairments, SessionMessage, TCPSessionBuilder, build_udp_flow


def _five_tuple():
    return FiveTuple(0x0A000001, 40000, 0xC0000001, 80, IPProtocol.TCP)


def _reassemble_direction(packets, five_tuple, direction):
    """Oracle reassembly: collect payloads by seq, latest write wins."""
    from repro.core.constants import SCAP_TCP_STRICT
    from repro.core.reassembly import TCPDirectionReassembler

    reassembler = TCPDirectionReassembler(SCAP_TCP_STRICT)
    out = []
    expected_tuple = five_tuple if direction == CLIENT_TO_SERVER else five_tuple.reversed()
    for packet in packets:
        if packet.five_tuple != expected_tuple or packet.tcp is None:
            continue
        if packet.tcp.syn:
            reassembler.set_isn(packet.tcp.seq)
        elif packet.payload:
            for piece in reassembler.on_segment(packet.tcp.seq, packet.payload):
                out.append(piece.data)
    return b"".join(out)


class TestHandshakeAndTeardown:
    def test_handshake_structure(self):
        builder = TCPSessionBuilder(_five_tuple())
        syn, syn_ack, ack = builder.handshake()
        assert syn.tcp.syn and not syn.tcp.ack_flag
        assert syn_ack.tcp.syn and syn_ack.tcp.ack_flag
        assert ack.tcp.flags == TCPFlags.ACK
        assert syn_ack.tcp.ack == seq_add(syn.tcp.seq, 1)
        assert ack.tcp.ack == seq_add(syn_ack.tcp.seq, 1)
        # Direction check: SYN goes client -> server.
        assert syn.five_tuple == _five_tuple()
        assert syn_ack.five_tuple == _five_tuple().reversed()

    def test_fin_teardown(self):
        builder = TCPSessionBuilder(_five_tuple())
        packets = builder.build([SessionMessage(CLIENT_TO_SERVER, b"x")])
        fins = [p for p in packets if p.tcp.fin]
        assert len(fins) == 2
        assert packets[-1].tcp.flags == TCPFlags.ACK

    def test_rst_teardown(self):
        builder = TCPSessionBuilder(_five_tuple(), reset_instead_of_fin=True)
        packets = builder.build([])
        assert packets[-1].tcp.rst
        assert not any(p.tcp.fin for p in packets)

    def test_timestamps_monotonic(self):
        builder = TCPSessionBuilder(_five_tuple(), start_time=5.0, packet_gap=1e-3)
        packets = builder.build([SessionMessage(CLIENT_TO_SERVER, b"y" * 5000)])
        times = [p.timestamp for p in packets]
        assert times == sorted(times)
        assert times[0] == 5.0
        assert builder.end_time > times[-1]


class TestDataSegments:
    def test_mss_segmentation(self):
        builder = TCPSessionBuilder(_five_tuple(), mss=100)
        builder.handshake()
        packets = builder.data_segments(SERVER_TO_CLIENT, b"z" * 250)
        data = [p for p in packets if p.payload]
        assert [len(p.payload) for p in data] == [100, 100, 50]
        assert data[-1].tcp.psh  # last segment pushed

    def test_sequence_numbers_contiguous(self):
        builder = TCPSessionBuilder(_five_tuple(), mss=100)
        builder.handshake()
        packets = builder.data_segments(CLIENT_TO_SERVER, b"w" * 300)
        data = [p for p in packets if p.payload]
        for first, second in zip(data, data[1:]):
            assert second.tcp.seq == seq_add(first.tcp.seq, len(first.payload))

    def test_acks_emitted(self):
        builder = TCPSessionBuilder(_five_tuple(), mss=100, ack_every=2)
        builder.handshake()
        packets = builder.data_segments(SERVER_TO_CLIENT, b"v" * 1000)
        acks = [p for p in packets if not p.payload]
        assert len(acks) == 5
        # ACKs flow in the opposite direction.
        assert all(p.five_tuple == _five_tuple() for p in acks)

    def test_payload_reassembles_exactly(self):
        payload = bytes(range(256)) * 40
        builder = TCPSessionBuilder(_five_tuple(), mss=333)
        packets = builder.build([SessionMessage(SERVER_TO_CLIENT, payload)])
        assert _reassemble_direction(packets, _five_tuple(), SERVER_TO_CLIENT) == payload


class TestImpairments:
    def test_retransmissions_duplicate_segments(self):
        imp = Impairments(retransmit_rate=1.0, seed=1)
        builder = TCPSessionBuilder(_five_tuple(), mss=100, impairments=imp)
        builder.handshake()
        packets = builder.data_segments(CLIENT_TO_SERVER, b"r" * 300)
        data = [p for p in packets if p.payload]
        seqs = [p.tcp.seq for p in data]
        assert len(seqs) == 2 * len(set(seqs))  # every segment sent twice

    def test_drop_rate_removes_segments(self):
        imp = Impairments(drop_rate=1.0, seed=2)
        builder = TCPSessionBuilder(_five_tuple(), mss=100, impairments=imp)
        builder.handshake()
        packets = builder.data_segments(CLIENT_TO_SERVER, b"d" * 500)
        assert not any(p.payload for p in packets)

    def test_fragmentation_applied(self):
        imp = Impairments(fragment_rate=1.0, fragment_size=64, seed=3)
        builder = TCPSessionBuilder(_five_tuple(), mss=400, impairments=imp)
        builder.handshake()
        packets = builder.data_segments(CLIENT_TO_SERVER, b"f" * 400)
        assert any(p.ip.is_fragment for p in packets)

    def test_overlap_emits_extra_copy(self):
        imp = Impairments(overlap_rate=1.0, seed=4)
        builder = TCPSessionBuilder(_five_tuple(), mss=100, impairments=imp)
        builder.handshake()
        packets = builder.data_segments(CLIENT_TO_SERVER, b"o" * 100)
        data = [p for p in packets if p.payload]
        assert len(data) == 2
        assert data[1].tcp.seq == seq_add(data[0].tcp.seq, 50)

    def test_conflicting_overlap_differs(self):
        imp = Impairments(overlap_rate=1.0, overlap_conflict=True, seed=5)
        builder = TCPSessionBuilder(_five_tuple(), mss=100, impairments=imp)
        builder.handshake()
        packets = builder.data_segments(CLIENT_TO_SERVER, b"c" * 100)
        data = [p for p in packets if p.payload]
        assert data[1].payload != data[0].payload[50:]

    @settings(max_examples=20, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=4000),
        retransmit=st.floats(0, 0.5),
        reorder=st.floats(0, 0.5),
        overlap=st.floats(0, 0.5),
        seed=st.integers(0, 1000),
    )
    def test_impaired_stream_still_reassembles(
        self, payload, retransmit, reorder, overlap, seed
    ):
        """Whatever the impairments (no loss/conflict), strict
        reassembly recovers the exact original bytes."""
        imp = Impairments(
            retransmit_rate=retransmit, reorder_rate=reorder,
            overlap_rate=overlap, seed=seed,
        )
        builder = TCPSessionBuilder(_five_tuple(), mss=137, impairments=imp)
        packets = builder.build([SessionMessage(CLIENT_TO_SERVER, payload)])
        assert _reassemble_direction(packets, _five_tuple(), CLIENT_TO_SERVER) == payload


class TestUDPFlow:
    def test_directions_and_payloads(self):
        ft = FiveTuple(1, 100, 2, 53, IPProtocol.UDP)
        packets = build_udp_flow(
            ft, [(CLIENT_TO_SERVER, b"q"), (SERVER_TO_CLIENT, b"resp")], start_time=2.0
        )
        assert packets[0].five_tuple == ft
        assert packets[1].five_tuple == ft.reversed()
        assert packets[0].payload == b"q" and packets[1].payload == b"resp"
        assert packets[0].timestamp == 2.0
        assert packets[1].timestamp > 2.0


def test_syn_advertises_mss():
    """SYN and SYN/ACK carry the MSS option, like real stacks."""
    builder = TCPSessionBuilder(_five_tuple(), mss=1200)
    syn, syn_ack, ack = builder.handshake()
    assert syn.tcp.mss == 1200
    assert syn_ack.tcp.mss == 1200
    assert ack.tcp.mss is None
    # The option survives the wire round trip.
    from repro.netstack import Packet

    assert Packet.parse(syn.to_bytes()).tcp.mss == 1200
