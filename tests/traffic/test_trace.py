"""Tests for the Trace container and rate replay."""

import pytest

from repro.netstack import make_tcp_packet
from repro.traffic import FlowSpec, Trace
from repro.traffic.trace import PlantedMatch


def _packets(count=10, gap=0.01, size=1000):
    return [
        make_tcp_packet(1, 2, 3, 4, payload=b"x" * size, timestamp=i * gap)
        for i in range(count)
    ]


def test_sorts_packets_by_time():
    packets = _packets(5)[::-1]
    trace = Trace(packets)
    times = [p.timestamp for p in trace]
    assert times == sorted(times)


def test_totals():
    trace = Trace(_packets(4, size=100))
    assert len(trace) == 4
    assert trace.total_wire_bytes == 4 * (54 + 100)


def test_native_rate():
    trace = Trace(_packets(11, gap=0.1, size=946))  # 1000B wire each
    # 11 kB over 1.0 s = 88 kbit/s
    assert abs(trace.native_rate_bps - 11 * 1000 * 8 / 1.0) < 1e-6


def test_replay_rescales_uniformly():
    trace = Trace(_packets(11, gap=0.1, size=946))
    native = trace.native_rate_bps
    replayed = list(trace.replay(native * 2))
    assert replayed[0].timestamp == 0.0
    assert abs(replayed[-1].timestamp - 0.5) < 1e-9
    # Relative spacing preserved.
    gaps = [b.timestamp - a.timestamp for a, b in zip(replayed, replayed[1:])]
    assert max(gaps) - min(gaps) < 1e-9


def test_replay_rejects_bad_rate():
    trace = Trace(_packets(2))
    with pytest.raises(ValueError):
        list(trace.replay(0))


def test_replayed_duration():
    trace = Trace(_packets(10, size=946))
    assert abs(trace.replayed_duration(1e6) - 10 * 1000 * 8 / 1e6) < 1e-9


def test_merge_reindexes_flows():
    flow_a = FlowSpec(0, _packets(1)[0].five_tuple, 6, 10, 20, 0.0,
                      planted=[PlantedMatch(0, 1, 5, b"P")])
    flow_b = FlowSpec(0, _packets(1)[0].five_tuple, 6, 1, 2, 0.0)
    a = Trace(_packets(3), [flow_a], name="a")
    b = Trace(_packets(3), [flow_b], name="b")
    merged = a.merged_with(b)
    assert len(merged.flows) == 2
    assert merged.flows[1].index == 1
    assert merged.planted_matches[0].flow_index == 0
    assert "a+b" == merged.name


def test_summary_mentions_name_and_counts():
    trace = Trace(_packets(3), name="demo")
    text = trace.summary()
    assert "demo" in text and "3 packets" in text


def test_empty_trace():
    trace = Trace([])
    assert trace.duration == 0.0
    assert list(trace.replay(1e9)) == []
